//! Thread-safe metrics registry: counters, gauges, fixed-bucket histograms
//! and per-phase timing accumulators, exportable as a JSON snapshot.
//!
//! This generalizes the registry that used to live in
//! `crates/online/src/metrics.rs`: everything is name-addressed and lazily
//! created so call sites stay one-liners (`metrics.inc("online.views_admitted")`),
//! but the state now sits behind a `Mutex`, so parallel executor chunks and
//! multi-threaded harnesses can record into one registry through `&self`.
//!
//! Naming convention: `subsystem.noun_verb` (e.g. `engine.cache_hit`,
//! `cost.epoch_loss`, `select.episode_reward`). See DESIGN.md §Observability.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Inclusive bucket upper bounds `2^k` for `k` in `lo..=hi`, ascending.
/// log2 spacing bounds the relative error of any bucket-interpolated
/// statistic by 2×, uniformly across the whole range — unlike the old
/// power-of-ten bounds, whose per-bucket error was 10×.
pub fn log2_bounds(lo: i32, hi: i32) -> Vec<f64> {
    assert!(lo <= hi, "log2_bounds: lo ({lo}) must be <= hi ({hi})");
    (lo..=hi).map(|k| (k as f64).exp2()).collect()
}

/// The default bounds: `2^-20 ..= 2^30`. One shared set spans everything
/// the system observes — dollar costs (µ$ and up), byte sizes, and µs
/// latencies up to ~18 minutes when observed in µs. Values above the last
/// bound land in a `+Inf` overflow bucket.
pub fn default_bucket_bounds() -> &'static [f64] {
    default_bounds_arc().as_ref()
}

fn default_bounds_arc() -> &'static Arc<[f64]> {
    static BOUNDS: OnceLock<Arc<[f64]>> = OnceLock::new();
    BOUNDS.get_or_init(|| log2_bounds(-20, 30).into())
}

/// Counter bumped whenever a NaN observation is rejected, so silent data
/// problems still leave a visible trail in the snapshot.
pub const NAN_REJECTED: &str = "trace.nan_rejected";

/// A fixed-bucket histogram with count/sum/min/max summary statistics.
/// Bounds are log2-spaced by default ([`default_bucket_bounds`]) and
/// configurable per histogram ([`Histogram::with_bounds`]); registries
/// take pre-configured instances via [`Metrics::register_histogram`].
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Ascending inclusive upper bounds; shared, never mutated.
    bounds: Arc<[f64]>,
    /// One slot per bound plus the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds_arc(default_bounds_arc().clone())
    }
}

impl Histogram {
    /// A histogram over custom inclusive upper bounds (must be non-empty,
    /// finite, and strictly ascending). [`log2_bounds`] builds log2-spaced
    /// sets for other ranges or finer resolution.
    pub fn with_bounds(bounds: Vec<f64>) -> Histogram {
        Histogram::with_bounds_arc(bounds.into())
    }

    fn with_bounds_arc(bounds: Arc<[f64]>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket bounds this histogram was configured with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one observation. NaN is rejected (returns `false`) instead of
    /// being counted into the overflow bucket and corrupting `sum`.
    pub fn observe(&mut self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        // First bound >= value; everything above the last bound overflows.
        let bucket = self.bounds.partition_point(|&b| b < value);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        true
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from the bucket counts,
    /// assuming observations are uniform within each bucket. The estimate is
    /// clamped to the observed `[min, max]`, so `quantile(0.0)` is exactly
    /// the minimum and `quantile(1.0)` exactly the maximum. Returns `None`
    /// for an empty histogram or `q` outside `[0, 1]` — including NaN,
    /// which is spelled out rather than left to range-containment semantics
    /// so a refactor of the bounds check can't silently start treating NaN
    /// as a valid rank.
    ///
    /// Accuracy is bounded by bucket width — good enough for tail summaries
    /// (p95/p99 dashboards); harnesses that need exact percentiles (e.g.
    /// `serve_bench`) keep raw samples instead.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || q.is_nan() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if next as f64 >= rank {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds.get(i).copied().unwrap_or(self.max);
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                let est = lower + frac * (upper - lower);
                return Some(est.clamp(self.min, self.max));
            }
            cum = next;
        }
        Some(self.max)
    }

    /// Count recorded in the bucket whose inclusive upper bound is `upper`
    /// (must be one of this histogram's [`Histogram::bounds`]);
    /// `f64::INFINITY` addresses the overflow bucket.
    pub fn bucket_count(&self, upper: f64) -> u64 {
        if upper.is_infinite() {
            return self.counts[self.bounds.len()];
        }
        self.bounds
            .iter()
            .position(|&b| b == upper)
            .map(|i| self.counts[i])
            .unwrap_or(0)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            mean: self.mean(),
            // Only non-empty buckets are exported; `upper` is the bucket's
            // inclusive upper bound. The overflow bucket exports `f64::MAX`
            // (JSON has no +Inf literal).
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| BucketSnapshot {
                    upper: self.bounds.get(i).copied().unwrap_or(f64::MAX),
                    count: c,
                })
                .collect(),
        }
    }
}

/// Accumulated wall-clock time of one named phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timing {
    pub count: u64,
    pub total_seconds: f64,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    timings: BTreeMap<String, Timing>,
}

/// The registry. Interior-mutable and thread-safe: share one per run via
/// `&Metrics` (or clone the owning [`crate::Tracer`]) across threads.
#[derive(Debug, Default)]
pub struct Metrics {
    state: Mutex<State>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn with<T>(&self, f: impl FnOnce(&mut State) -> T) -> T {
        let mut state = self.state.lock().expect("metrics registry poisoned");
        f(&mut state)
    }

    /// Increment a counter by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a counter by `by`.
    pub fn add(&self, name: &str, by: u64) {
        // get_mut-first keeps the steady state allocation-free: the name is
        // only cloned when a key is seen for the first time.
        self.with(|s| match s.counters.get_mut(name) {
            Some(v) => *v += by,
            None => {
                s.counters.insert(name.to_string(), by);
            }
        });
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|s| s.counters.get(name).copied().unwrap_or(0))
    }

    /// Set a gauge to the latest value (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.with(|s| {
            s.gauges.insert(name.to_string(), value);
        });
    }

    /// Latest gauge value (None if never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.with(|s| s.gauges.get(name).copied())
    }

    /// Record one observation into a histogram. NaN observations are
    /// rejected and tallied under the [`NAN_REJECTED`] counter.
    pub fn observe(&self, name: &str, value: f64) {
        let ok = self.with(|s| match s.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                let ok = h.observe(value);
                s.histograms.insert(name.to_string(), h);
                ok
            }
        });
        if !ok {
            self.add(NAN_REJECTED, 1);
        }
    }

    /// Pre-register a histogram (typically one built with
    /// [`Histogram::with_bounds`]) so later [`Metrics::observe`] calls on
    /// `name` record into its configured buckets. A histogram already
    /// registered under `name` is kept — bounds never change under a live
    /// series.
    pub fn register_histogram(&self, name: &str, hist: Histogram) {
        self.with(|s| {
            s.histograms.entry(name.to_string()).or_insert(hist);
        });
    }

    /// Clone of a histogram (None if nothing was observed under that name).
    /// Returns an owned copy because the live one sits behind the lock.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.with(|s| s.histograms.get(name).cloned())
    }

    /// Record an externally measured duration under a phase name. Durations
    /// come from a [`crate::Clock`] (or `Tracer::time`), never from a direct
    /// wall-clock read in library code.
    pub fn record_seconds(&self, name: &str, seconds: f64) {
        self.with(|s| {
            let t = match s.timings.get_mut(name) {
                Some(t) => t,
                None => {
                    s.timings.insert(name.to_string(), Timing::default());
                    s.timings.get_mut(name).expect("just inserted")
                }
            };
            t.count += 1;
            t.total_seconds += seconds;
        });
    }

    /// Accumulated timing for a phase (None if never recorded).
    pub fn timing(&self, name: &str) -> Option<Timing> {
        self.with(|s| s.timings.get(name).copied())
    }

    /// Immutable snapshot of everything, for export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with(|s| MetricsSnapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            timings: s
                .timings
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        TimingSnapshot {
                            count: v.count,
                            total_seconds: v.total_seconds,
                            mean_seconds: if v.count == 0 {
                                0.0
                            } else {
                                v.total_seconds / v.count as f64
                            },
                        },
                    )
                })
                .collect(),
        })
    }

    /// Pretty-printed JSON snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot serializes")
    }
}

/// Serializable form of the registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub timings: BTreeMap<String, TimingSnapshot>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub buckets: Vec<BucketSnapshot>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketSnapshot {
    pub upper: f64,
    pub count: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingSnapshot {
    pub count: u64,
    pub total_seconds: f64,
    pub mean_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.inc("a");
        m.add("a", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = Metrics::new();
        assert_eq!(m.gauge("eps"), None);
        m.set_gauge("eps", 0.9);
        m.set_gauge("eps", 0.1);
        assert_eq!(m.gauge("eps"), Some(0.1));
    }

    #[test]
    fn histogram_summary_is_correct() {
        let m = Metrics::new();
        for v in [0.5, 1.5, 2.0] {
            m.observe("cost", v);
        }
        let h = m.histogram("cost").expect("exists");
        assert_eq!(h.count(), 3);
        assert!((h.mean() - (4.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn nan_observations_are_rejected() {
        let m = Metrics::new();
        m.observe("cost", 1.0);
        m.observe("cost", f64::NAN);
        m.observe("cost", 3.0);
        let h = m.histogram("cost").expect("exists");
        assert_eq!(h.count(), 2, "NaN must not be counted");
        assert!((h.sum() - 4.0).abs() < 1e-12, "NaN must not corrupt sum");
        assert!(h.mean().is_finite());
        assert_eq!(m.counter(NAN_REJECTED), 1);
    }

    #[test]
    fn histogram_values_exactly_on_bucket_bounds() {
        // A value exactly equal to a bound lands in THAT bucket (bounds are
        // inclusive upper limits), not the next one up.
        let m = Metrics::new();
        let bounds = default_bucket_bounds();
        for &b in bounds {
            m.observe("edges", b);
        }
        let h = m.histogram("edges").expect("exists");
        assert_eq!(h.count(), bounds.len() as u64);
        for &b in bounds {
            assert_eq!(h.bucket_count(b), 1, "value {b} must land in its own bucket");
        }
        assert_eq!(h.bucket_count(f64::INFINITY), 0);
        // Just above the last bound overflows.
        m.observe("edges", bounds[bounds.len() - 1] * 1.0001);
        let h = m.histogram("edges").expect("exists");
        assert_eq!(h.bucket_count(f64::INFINITY), 1);
    }

    #[test]
    fn default_bounds_are_log2_and_pin_edge_values() {
        let bounds = default_bucket_bounds();
        assert_eq!(bounds.first().copied(), Some((-20f64).exp2()));
        assert_eq!(bounds.last().copied(), Some(30f64.exp2()));
        for w in bounds.windows(2) {
            assert_eq!(w[1] / w[0], 2.0, "adjacent bounds differ by exactly 2x");
        }
        // Exact powers of two land in their own bucket; one ulp above a
        // bound rolls over into the next bucket.
        let mut h = Histogram::default();
        h.observe(1024.0);
        assert_eq!(h.bucket_count(1024.0), 1);
        assert_eq!(h.bucket_count(2048.0), 0);
        h.observe(1024.0 + 1e-9);
        assert_eq!(h.bucket_count(2048.0), 1);
        // µs latencies: sub-µs values land in the fractional buckets, not a
        // catch-all first bucket.
        let mut lat = Histogram::default();
        lat.observe(0.25);
        assert_eq!(lat.bucket_count(0.25), 1);
        assert_eq!(lat.bucket_count(bounds[0]), 0);
    }

    #[test]
    fn custom_log2_bounds_are_configurable_per_histogram() {
        // A µs-latency histogram with 1µs..~16s bounds registered up front:
        // later observes on the same name use the configured buckets.
        let m = Metrics::new();
        m.register_histogram("lat_us", Histogram::with_bounds(log2_bounds(0, 24)));
        m.observe("lat_us", 3.0);
        m.observe("lat_us", 700.0);
        let h = m.histogram("lat_us").expect("exists");
        assert_eq!(h.bounds().len(), 25);
        assert_eq!(h.bucket_count(4.0), 1, "3µs lands in (2, 4]");
        assert_eq!(h.bucket_count(1024.0), 1, "700µs lands in (512, 1024]");
        // Registering again must not reset the live series or its bounds.
        m.register_histogram("lat_us", Histogram::with_bounds(log2_bounds(0, 4)));
        let h = m.histogram("lat_us").expect("exists");
        assert_eq!(h.count(), 2);
        assert_eq!(h.bounds().len(), 25);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::with_bounds(vec![4.0, 2.0]);
    }

    #[test]
    fn quantile_estimates_respect_bounds_and_order() {
        let m = Metrics::new();
        // 100 observations spread across two decades: 90 in (1e-3, 1e-2],
        // 10 in (1e-2, 1e-1].
        for i in 0..90 {
            m.observe("lat", 2e-3 + i as f64 * 1e-5);
        }
        for i in 0..10 {
            m.observe("lat", 2e-2 + i as f64 * 1e-4);
        }
        let h = m.histogram("lat").expect("exists");
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.5), None);
        let p0 = h.quantile(0.0).expect("some");
        let p50 = h.quantile(0.5).expect("some");
        let p95 = h.quantile(0.95).expect("some");
        let p100 = h.quantile(1.0).expect("some");
        assert_eq!(p0, 2e-3, "q=0 is the observed min");
        assert!((p100 - (2e-2 + 9.0 * 1e-4)).abs() < 1e-12, "q=1 is the max");
        assert!(p0 <= p50 && p50 <= p95 && p95 <= p100, "monotone in q");
        // p50 falls inside the dense bucket, p95 inside the sparse one.
        assert!(p50 > 1e-3 && p50 <= 1e-2, "p50={p50}");
        assert!(p95 > 1e-2 && p95 <= 1e-1, "p95={p95}");
        assert_eq!(Histogram::default().quantile(0.5), None, "empty is None");
    }

    #[test]
    fn quantile_rejects_nan_rank() {
        let m = Metrics::new();
        m.observe("lat", 1.0);
        let h = m.histogram("lat").expect("exists");
        assert_eq!(h.quantile(f64::NAN), None, "NaN q must not pick a bucket");
        assert_eq!(h.quantile(0.5), Some(1.0), "valid q still works");
    }

    #[test]
    fn quantile_single_bucket_stays_within_observed_range() {
        // All mass in one bucket: every quantile must land in [min, max],
        // with the endpoints exact, regardless of where uniform-in-bucket
        // interpolation would otherwise put them.
        let m = Metrics::new();
        for v in [3e-3, 4e-3, 5e-3] {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").expect("exists");
        assert_eq!(h.quantile(0.0), Some(3e-3));
        assert_eq!(h.quantile(1.0), Some(5e-3));
        for q in [0.25, 0.5, 0.75, 0.95] {
            let est = h.quantile(q).expect("some");
            assert!((3e-3..=5e-3).contains(&est), "q={q} escaped: {est}");
        }
    }

    #[test]
    fn quantile_all_mass_in_overflow_bucket() {
        // Observations above the last bound have no upper bucket edge; the
        // estimator substitutes the observed max and must stay finite and
        // within [min, max].
        let m = Metrics::new();
        for v in [5e9, 6e9, 7e9] {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").expect("exists");
        assert_eq!(h.bucket_count(f64::INFINITY), 3);
        assert_eq!(h.quantile(0.0), Some(5e9));
        assert_eq!(h.quantile(1.0), Some(7e9));
        for q in [0.5, 0.99] {
            let est = h.quantile(q).expect("some");
            assert!(est.is_finite());
            assert!((5e9..=7e9).contains(&est), "q={q} escaped: {est}");
        }
    }

    #[test]
    fn timings_record_phases() {
        let m = Metrics::new();
        m.record_seconds("phase", 0.25);
        m.record_seconds("phase", 0.75);
        let t = m.timing("phase").expect("exists");
        assert_eq!(t.count, 2);
        assert!((t.total_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn registry_is_thread_safe() {
        let m = std::sync::Arc::new(Metrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.inc("shared");
                        m.observe("dist", 0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread");
        }
        assert_eq!(m.counter("shared"), 4000);
        assert_eq!(m.histogram("dist").expect("exists").count(), 4000);
    }

    #[test]
    fn json_snapshot_parses_and_has_fields() {
        let m = Metrics::new();
        m.inc("online.views_admitted");
        m.observe("online.query_cost", 0.002);
        m.record_seconds("online.route", 0.001);
        let text = m.to_json();
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let obj = doc.as_obj().expect("object");
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["counters", "gauges", "histograms", "timings"]);
    }
}
