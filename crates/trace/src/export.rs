//! Exporters for a [`TraceSnapshot`]: chrome://tracing JSON and a
//! plain-text per-phase profile tree. (The third format — the raw JSON
//! snapshot — is `TraceSnapshot::to_json` itself.)

use crate::span::{SpanRecord, TraceSnapshot};
use serde::{write_json, Json};
use std::collections::BTreeMap;

/// Render the snapshot as a chrome://tracing / Perfetto-compatible
/// `traceEvents` document: one complete (`"ph": "X"`) event per span, with
/// timestamps and durations in microseconds and span attributes under
/// `args`. Open spans (never closed before the snapshot) export with zero
/// duration. Load the output via chrome://tracing → "Load" or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace(snapshot: &TraceSnapshot) -> String {
    let events: Vec<Json> = snapshot.spans.iter().map(span_event).collect();
    let doc = Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ]);
    write_json(&doc, Some(2))
}

fn span_event(span: &SpanRecord) -> Json {
    let mut args: Vec<(String, Json)> = Vec::new();
    args.push(("span_id".to_string(), Json::Num(span.id as f64)));
    if let Some(p) = span.parent {
        args.push(("parent_id".to_string(), Json::Num(p as f64)));
    }
    for (k, v) in &span.num_attrs {
        args.push((k.clone(), Json::Num(*v)));
    }
    for (k, v) in &span.str_attrs {
        args.push((k.clone(), Json::Str(v.clone())));
    }
    Json::Obj(vec![
        ("name".to_string(), Json::Str(span.name.clone())),
        ("cat".to_string(), Json::Str("span".to_string())),
        ("ph".to_string(), Json::Str("X".to_string())),
        ("ts".to_string(), Json::Num(span.start_nanos as f64 / 1e3)),
        (
            "dur".to_string(),
            Json::Num(span.duration_nanos() as f64 / 1e3),
        ),
        ("pid".to_string(), Json::Num(1.0)),
        ("tid".to_string(), Json::Num(1.0)),
        ("args".to_string(), Json::Obj(args)),
    ])
}

/// Aggregated node of the profile tree: spans grouped by their name-path
/// from the root.
#[derive(Debug, Default, Clone, Copy)]
struct ProfileNode {
    count: u64,
    total_nanos: u64,
}

/// Render the snapshot as an indented plain-text profile: spans aggregated
/// by name at each tree level, children sorted by total time (descending),
/// with each line showing call count, total time and share of the parent.
pub fn profile_tree(snapshot: &TraceSnapshot) -> String {
    // Group spans by (parent group path, name). Paths are name sequences,
    // so N spans of the same name under the same parent path fold into one
    // line with count N.
    let mut groups: BTreeMap<Vec<String>, ProfileNode> = BTreeMap::new();
    for span in &snapshot.spans {
        let path = name_path(snapshot, span);
        let node = groups.entry(path).or_default();
        node.count += 1;
        node.total_nanos += span.duration_nanos();
    }

    let mut out = String::from("profile (by span path, total time desc)\n");
    let roots: Vec<Vec<String>> = sorted_children(&groups, &[]);
    let total_root_nanos: u64 = roots
        .iter()
        .filter_map(|p| groups.get(p))
        .map(|n| n.total_nanos)
        .sum();
    for path in &roots {
        render_path(&groups, path, total_root_nanos, 0, &mut out);
    }
    out
}

fn name_path(snapshot: &TraceSnapshot, span: &SpanRecord) -> Vec<String> {
    let mut path = vec![span.name.clone()];
    let mut cur = span.parent;
    while let Some(pid) = cur {
        let parent = &snapshot.spans[pid as usize];
        path.push(parent.name.clone());
        cur = parent.parent;
    }
    path.reverse();
    path
}

/// Direct children of `prefix` among the grouped paths, sorted by total
/// time descending (name as tie-break, for determinism).
fn sorted_children(
    groups: &BTreeMap<Vec<String>, ProfileNode>,
    prefix: &[String],
) -> Vec<Vec<String>> {
    let mut kids: Vec<Vec<String>> = groups
        .keys()
        .filter(|p| p.len() == prefix.len() + 1 && p.starts_with(prefix))
        .cloned()
        .collect();
    kids.sort_by(|a, b| {
        let ta = groups[a].total_nanos;
        let tb = groups[b].total_nanos;
        tb.cmp(&ta).then_with(|| a.cmp(b))
    });
    kids
}

fn render_path(
    groups: &BTreeMap<Vec<String>, ProfileNode>,
    path: &[String],
    parent_total: u64,
    depth: usize,
    out: &mut String,
) {
    let node = groups[path];
    let name = path.last().map(String::as_str).unwrap_or("?");
    let ms = node.total_nanos as f64 / 1e6;
    let share = if parent_total == 0 {
        100.0
    } else {
        100.0 * node.total_nanos as f64 / parent_total as f64
    };
    out.push_str(&format!(
        "{:indent$}{name}  {count}x  {ms:.3}ms  {share:.1}%\n",
        "",
        indent = depth * 2,
        count = node.count,
    ));
    for child in sorted_children(groups, path) {
        render_path(groups, &child, node.total_nanos, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use crate::span::Tracer;

    fn sample() -> TraceSnapshot {
        let clock = TestClock::new();
        let t = Tracer::with_clock(Box::new(clock.clone()));
        {
            let phase = t.span("pipeline.truth");
            phase.record_num("queries", 2.0);
            for _ in 0..2 {
                let op = t.span("exec.scan");
                op.record_num("rows", 100.0);
                clock.advance(1_000);
            }
            clock.advance(500);
        }
        t.metrics().inc("engine.cache_miss");
        t.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_event_per_span() {
        let snap = sample();
        let text = chrome_trace(&snap);
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let obj = doc.as_obj().expect("object");
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_arr())
            .expect("traceEvents array");
        assert_eq!(events.len(), snap.spans.len());
        let first = events[0].as_obj().expect("event object");
        let field = |name: &str| {
            first
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .expect("field present")
        };
        assert_eq!(field("ph").as_str(), Some("X"));
        assert_eq!(field("name").as_str(), Some("pipeline.truth"));
        assert_eq!(field("ts").as_f64(), Some(0.0));
        assert_eq!(field("dur").as_f64(), Some(2.5)); // 2500ns = 2.5µs
    }

    #[test]
    fn profile_tree_aggregates_same_named_children() {
        let snap = sample();
        let text = profile_tree(&snap);
        assert!(text.contains("pipeline.truth  1x"), "root line: {text}");
        assert!(text.contains("  exec.scan  2x"), "aggregated child: {text}");
        // Two 1µs scans inside a 2.5µs phase = 80% of the parent.
        assert!(text.contains("80.0%"), "child share of parent: {text}");
    }
}
