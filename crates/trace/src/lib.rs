//! # av-trace — structured observability for the AutoView pipeline
//!
//! Zero-dependency-beyond-serde spans, metrics and profiling shared by
//! every layer of the system:
//!
//! - **Spans** ([`Tracer`], [`SpanGuard`]): hierarchical enter/exit guards
//!   with per-span wall time via an injectable [`Clock`], so library code
//!   never reads the wall clock directly and `av-analyze`'s determinism
//!   lint stays clean.
//! - **Metrics** ([`Metrics`]): a thread-safe, name-addressed registry of
//!   counters, gauges, fixed-bucket histograms and phase timings — the
//!   generalization of what used to be `av_online::metrics`.
//! - **Exporters**: [`TraceSnapshot::to_json`] (raw snapshot),
//!   [`chrome_trace`] (chrome://tracing `traceEvents`), and
//!   [`profile_tree`] (plain-text per-phase profile).
//!
//! Metric names follow `subsystem.noun_verb` (e.g. `engine.cache_hit`,
//! `online.views_admitted`); span names follow `subsystem.phase`
//! (`pipeline.train`, `exec.join`). See DESIGN.md §Observability.

// `deny` rather than `forbid`: `clock.rs` opts one audited module back in
// for the invariant-TSC fast path (`_rdtsc`/`__cpuid` intrinsics only).
#![deny(unsafe_code)]

pub mod clock;
pub mod export;
pub mod metrics;
pub mod span;

pub use clock::{Clock, MonotonicClock, TestClock};
pub use export::{chrome_trace, profile_tree};
pub use metrics::{
    default_bucket_bounds, log2_bounds, BucketSnapshot, Histogram, HistogramSnapshot, Metrics,
    MetricsSnapshot, Timing, TimingSnapshot, NAN_REJECTED,
};
pub use span::{BufGuard, SpanBuffer, SpanGuard, SpanRecord, TraceSnapshot, Tracer};
