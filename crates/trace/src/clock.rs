//! Injectable time source for the tracer.
//!
//! Library code must never read the wall clock directly — `av-analyze`'s
//! determinism lint rejects `Instant::now` / `SystemTime::now` in `crates/*`
//! library sources. All time flows through the [`Clock`] trait instead:
//! production code installs a [`MonotonicClock`] (this module is the single
//! lint-exempt call site), tests install a [`TestClock`] and advance it by
//! hand, so span durations are exactly reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone, non-decreasing nanosecond counter with an arbitrary
/// per-clock origin. Implementations must be cheap: the tracer reads the
/// clock twice per span.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's origin.
    fn now_nanos(&self) -> u64;
}

/// Real wall-clock time, anchored at construction so readings start near
/// zero. This is the **only** place in the workspace libraries that is
/// allowed to call `Instant::now` (the determinism lint exempts exactly
/// this file).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: std::time::Instant,
}

impl MonotonicClock {
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: std::time::Instant::now(), // det-lint: allow — the Clock trait's sanctioned wall-clock read
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // u64 nanoseconds covers ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic clock for tests: time only moves when the test says so.
/// Cloning shares the underlying counter, so the test can keep a handle
/// while the tracer owns another.
#[derive(Debug, Clone, Default)]
pub struct TestClock {
    nanos: Arc<AtomicU64>,
}

impl TestClock {
    pub fn new() -> TestClock {
        TestClock::default()
    }

    /// Move time forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Jump to an absolute reading. Panics if that would move time backwards
    /// (the Clock contract is monotone).
    pub fn set(&self, nanos: u64) {
        let prev = self.nanos.swap(nanos, Ordering::SeqCst);
        assert!(prev <= nanos, "TestClock must not move backwards");
    }
}

impl Clock for TestClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_is_manual() {
        let c = TestClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_nanos(), 12);
        c.set(100);
        assert_eq!(c.now_nanos(), 100);
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
