//! Injectable time source for the tracer.
//!
//! Library code must never read the wall clock directly — `av-analyze`'s
//! determinism lint rejects `Instant::now` / `SystemTime::now` in `crates/*`
//! library sources. All time flows through the [`Clock`] trait instead:
//! production code installs a [`MonotonicClock`] (this module is the single
//! lint-exempt call site), tests install a [`TestClock`] and advance it by
//! hand, so span durations are exactly reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone, non-decreasing nanosecond counter with an arbitrary
/// per-clock origin. Implementations must be cheap: the tracer reads the
/// clock twice per span.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's origin.
    fn now_nanos(&self) -> u64;
}

/// Real wall-clock time, anchored at construction so readings start near
/// zero. This is the **only** place in the workspace libraries that is
/// allowed to call `Instant::now` (the determinism lint exempts exactly
/// this file).
///
/// On x86_64 hosts with an invariant TSC the clock reads the timestamp
/// counter directly (~8ns) instead of `clock_gettime` (~25ns). The tracer
/// reads the clock twice per span, and on the traced replay path those two
/// reads are the single largest per-span cost — the TSC path is what keeps
/// the traced executor inside its <5% overhead budget. Hosts without an
/// invariant TSC (or non-x86_64) fall back to `Instant` transparently.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: std::time::Instant,
    #[cfg(target_arch = "x86_64")]
    tsc: Option<TscOrigin>,
}

/// Per-clock TSC anchor: the tick count at construction plus the process
/// calibration (ticks → nanoseconds).
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
struct TscOrigin {
    origin_ticks: u64,
    ns_per_tick: f64,
}

impl MonotonicClock {
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: std::time::Instant::now(), // det-lint: allow — the Clock trait's sanctioned wall-clock read
            #[cfg(target_arch = "x86_64")]
            tsc: tsc::ns_per_tick().map(|ns_per_tick| TscOrigin {
                origin_ticks: tsc::read(),
                ns_per_tick,
            }),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if let Some(t) = &self.tsc {
            // `saturating_sub` clamps the (hardware-rare) case of a reading
            // from a core whose TSC sits a few ticks behind the origin
            // read; consumers' duration math saturates as well, so a tiny
            // backward wiggle costs one zero-length measurement, never a
            // wrap to ~584 years.
            let ticks = tsc::read().saturating_sub(t.origin_ticks);
            return (ticks as f64 * t.ns_per_tick) as u64;
        }
        // u64 nanoseconds covers ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// The TSC fast path. The one `allow(unsafe_code)` scope in `av-trace`:
/// `_rdtsc`/`__cpuid` are intrinsics with no memory effects, exposed by
/// `core::arch` as `unsafe fn` only because they are target-specific.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod tsc {
    use std::sync::OnceLock;

    /// Current timestamp-counter reading.
    pub(super) fn read() -> u64 {
        // SAFETY: `_rdtsc` is available on every x86_64 CPU and has no
        // preconditions or memory effects.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// Does the CPU advertise an invariant TSC (constant rate, never stops
    /// in deep sleep states)? CPUID.80000007H:EDX[8]. Querying an
    /// unsupported leaf returns the highest basic leaf's values, which the
    /// max-leaf check rules out.
    fn invariant_tsc() -> bool {
        if core::arch::x86_64::__cpuid(0x8000_0000).eax < 0x8000_0007 {
            return false;
        }
        core::arch::x86_64::__cpuid(0x8000_0007).edx & (1 << 8) != 0
    }

    /// Once-per-process calibration: nanoseconds per TSC tick, or `None`
    /// when the TSC is not invariant (fall back to `Instant`). The first
    /// caller pays a ~200µs timed spin against the OS clock; every later
    /// clock construction reuses the cached rate.
    pub(super) fn ns_per_tick() -> Option<f64> {
        static SCALE: OnceLock<Option<f64>> = OnceLock::new();
        *SCALE.get_or_init(|| {
            if !invariant_tsc() {
                return None;
            }
            let spin = std::time::Duration::from_micros(200);
            let t0 = std::time::Instant::now(); // det-lint: allow — TSC calibration against the sanctioned clock
            let c0 = read();
            while t0.elapsed() < spin {
                std::hint::spin_loop();
            }
            let c1 = read();
            let nanos = t0.elapsed().as_nanos() as f64;
            let ticks = c1.saturating_sub(c0);
            if ticks == 0 {
                return None; // paused VM or non-monotone counter: fall back
            }
            Some(nanos / ticks as f64)
        })
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn calibration_yields_a_plausible_rate() {
            // On hosts with an invariant TSC the rate must correspond to a
            // clock between 100 MHz and 10 GHz; on others, None is correct.
            if let Some(ns) = super::ns_per_tick() {
                assert!((0.1..=10.0).contains(&ns), "ns/tick {ns}");
            }
        }

        #[test]
        fn tsc_readings_are_non_decreasing_enough_to_time_with() {
            let a = super::read();
            let b = super::read();
            assert!(b >= a, "invariant TSC readings went backwards on one core");
        }
    }
}

/// A deterministic clock for tests: time only moves when the test says so.
/// Cloning shares the underlying counter, so the test can keep a handle
/// while the tracer owns another.
#[derive(Debug, Clone, Default)]
pub struct TestClock {
    nanos: Arc<AtomicU64>,
}

impl TestClock {
    pub fn new() -> TestClock {
        TestClock::default()
    }

    /// Move time forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Jump to an absolute reading. Panics if that would move time backwards
    /// (the Clock contract is monotone).
    pub fn set(&self, nanos: u64) {
        let prev = self.nanos.swap(nanos, Ordering::SeqCst);
        assert!(prev <= nanos, "TestClock must not move backwards");
    }
}

impl Clock for TestClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_is_manual() {
        let c = TestClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_nanos(), 12);
        c.set(100);
        assert_eq!(c.now_nanos(), 100);
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
