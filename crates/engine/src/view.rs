//! Materialized views: creation, overhead accounting, storage.

use crate::catalog::{Catalog, Table};
use crate::error::EngineError;
use crate::exec::Executor;
use crate::meter::Pricing;
use av_plan::{Fingerprint, PlanRef};
use serde::{Deserialize, Serialize};

/// Identifier of a materialized view within a [`ViewStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ViewId(pub usize);

/// A materialized view: the defining subquery, its stored table name, and
/// its overhead components (Definitions 2–3).
#[derive(Debug, Clone)]
pub struct MaterializedView {
    pub id: ViewId,
    /// Defining subquery plan `s`.
    pub plan: PlanRef,
    /// Structural fingerprint of `plan`.
    pub fingerprint: Fingerprint,
    /// Name of the stored result table in the catalog.
    pub table_name: String,
    /// `A_α(v)` — storage fee of the materialized bytes.
    pub space_overhead: f64,
    /// `A_{β,γ}(s)` — one-off computation cost of the defining subquery.
    pub compute_overhead: f64,
    /// Bytes of the materialized result.
    pub byte_size: usize,
    /// Rows of the materialized result.
    pub row_count: usize,
}

impl MaterializedView {
    /// Total overhead `O_v = A_α(v) + A_{β,γ}(s)` (Definition 3).
    pub fn total_overhead(&self) -> f64 {
        self.space_overhead + self.compute_overhead
    }
}

/// Creates and tracks materialized views. Stored results are registered in
/// the catalog as tables named `__view_<n>` with an empty scan alias
/// convention (see `av-plan`), so rewritten plans can scan them directly.
#[derive(Debug, Default)]
pub struct ViewStore {
    views: Vec<MaterializedView>,
}

impl ViewStore {
    /// Empty store.
    pub fn new() -> ViewStore {
        ViewStore::default()
    }

    /// Materialize `plan` into `catalog`: executes the subquery, stores the
    /// result and records overheads.
    pub fn materialize(
        &mut self,
        catalog: &mut Catalog,
        plan: PlanRef,
        pricing: Pricing,
    ) -> Result<ViewId, EngineError> {
        let result = Executor::new(catalog, pricing).run(&plan)?;
        let id = ViewId(self.views.len());
        let table_name = format!("__view_{}", id.0);
        let table = Table::from_batch(table_name.clone(), result.batch);
        let byte_size = table.byte_size();
        let row_count = table.row_count();
        catalog.add_table(table)?;
        self.views.push(MaterializedView {
            id,
            fingerprint: Fingerprint::of(&plan),
            plan,
            table_name,
            space_overhead: pricing.storage_dollars(byte_size),
            compute_overhead: result.report.cost_dollars,
            byte_size,
            row_count,
        });
        Ok(id)
    }

    /// Look up a view.
    pub fn view(&self, id: ViewId) -> Option<&MaterializedView> {
        self.views.get(id.0)
    }

    /// All views in creation order.
    pub fn views(&self) -> &[MaterializedView] {
        &self.views
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True iff no views are materialized.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Sum of all view overheads `Σ O_v`.
    pub fn total_overhead(&self) -> f64 {
        self.views.iter().map(|v| v.total_overhead()).sum()
    }

    /// Drop a view's stored table from the catalog (the view record remains
    /// for bookkeeping but is marked by its table having been removed).
    pub fn drop_view(&self, catalog: &mut Catalog, id: ViewId) -> Option<std::sync::Arc<Table>> {
        self.views
            .get(id.0)
            .and_then(|v| catalog.drop_table(&v.table_name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;
    use av_plan::{Expr, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "t",
                vec![
                    ("k", Column::Int((0..50).map(|i| i % 5).collect())),
                    ("v", Column::Int((0..50).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c
    }

    #[test]
    fn materialize_stores_result_table() {
        let mut cat = catalog();
        let mut store = ViewStore::new();
        let plan = PlanBuilder::scan("t", "a")
            .filter(Expr::col("a.k").eq(Expr::int(2)))
            .project(&[("a.v", "a.v")])
            .build();
        let id = store
            .materialize(&mut cat, plan, Pricing::paper_defaults())
            .expect("materializes");
        let view = store.view(id).expect("exists");
        assert_eq!(view.row_count, 10);
        let stored = cat.table(&view.table_name).expect("table registered");
        assert_eq!(stored.column_names, vec!["a.v"]);
        assert_eq!(stored.row_count(), 10);
    }

    #[test]
    fn overhead_combines_space_and_compute() {
        let mut cat = catalog();
        let mut store = ViewStore::new();
        let plan = PlanBuilder::scan("t", "a").project(&[("a.v", "a.v")]).build();
        let id = store
            .materialize(&mut cat, plan, Pricing::paper_defaults())
            .expect("materializes");
        let v = store.view(id).expect("exists");
        assert!(v.space_overhead > 0.0);
        assert!(v.compute_overhead > 0.0);
        assert!((v.total_overhead() - (v.space_overhead + v.compute_overhead)).abs() < 1e-15);
        assert!((store.total_overhead() - v.total_overhead()).abs() < 1e-15);
    }

    #[test]
    fn drop_view_removes_stored_table() {
        let mut cat = catalog();
        let mut store = ViewStore::new();
        let plan = PlanBuilder::scan("t", "a").project(&[("a.v", "a.v")]).build();
        let id = store
            .materialize(&mut cat, plan, Pricing::paper_defaults())
            .expect("materializes");
        let name = store.view(id).expect("exists").table_name.clone();
        assert!(store.drop_view(&mut cat, id).is_some());
        assert!(cat.table(&name).is_none());
    }

    #[test]
    fn view_ids_are_sequential() {
        let mut cat = catalog();
        let mut store = ViewStore::new();
        for i in 0..3 {
            let plan = PlanBuilder::scan("t", "a")
                .filter(Expr::col("a.k").eq(Expr::int(i)))
                .project(&[("a.v", "a.v")])
                .build();
            let id = store
                .materialize(&mut cat, plan, Pricing::paper_defaults())
                .expect("materializes");
            assert_eq!(id, ViewId(i as usize));
        }
        assert_eq!(store.len(), 3);
    }
}
