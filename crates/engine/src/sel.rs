//! Selection-vector filters: compiled typed predicate kernels.
//!
//! A filter no longer materializes its output batch. It produces a sorted
//! vector of surviving row indices (`u32`) over the untouched input batch,
//! carried in a [`SelBatch`]. Downstream operators either consume the
//! selection directly (stacked filters refine it, aggregates iterate it) or
//! gather once at a materialization point (joins, projections, the plan
//! root). A `Filter → Aggregate` pipeline therefore copies no row data at
//! all between the scan and the aggregate's output.
//!
//! Predicates are compiled once per operator: each top-level conjunct of
//! the common `column <op> literal` shape becomes a [`Kernel`] that loops
//! over the raw `i64`/`f64`/`String` column slice with the comparison
//! operator hoisted *out* of the loop (see [`cmp_fill!`]/[`cmp_retain!`]),
//! so the inner loop carries no per-row enum dispatch and builds no
//! [`av_plan::Value`]. Every other expression shape falls back to the
//! interpreted [`BoundExpr::eval_bool`] over exactly the same rows, so a
//! compiled filter keeps row-for-row the rows the reference mask filter
//! keeps — the equivalence the executor's property tests pin down.

use crate::batch::{Column, RecordBatch};
use crate::exec::BoundExpr;
use av_plan::{CmpOp, Value};
use std::cmp::Ordering;
use std::ops::Range;

/// A record batch plus an optional selection: the unit of data flow between
/// operators inside the executor. `sel: None` means "all rows" (a dense
/// batch); `sel: Some(v)` means only the rows listed in `v` (ascending
/// original row indices) are live — the column data is untouched input.
#[derive(Debug, Clone)]
pub(crate) struct SelBatch {
    pub batch: RecordBatch,
    pub sel: Option<Vec<u32>>,
}

impl SelBatch {
    /// A batch with every row live.
    pub fn dense(batch: RecordBatch) -> SelBatch {
        SelBatch { batch, sel: None }
    }

    /// Live (logical) row count.
    pub fn num_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.batch.num_rows(),
        }
    }

    /// Byte size the live rows *would* occupy if materialized — the number
    /// the cost meter charges, identical to what the materializing
    /// reference path charges for the same rows.
    pub fn byte_size(&self) -> usize {
        match &self.sel {
            Some(s) => self.batch.columns.iter().map(|c| c.byte_size_sel(s)).sum(),
            None => self.batch.byte_size(),
        }
    }

    /// Gather the live rows into a dense batch (a no-op when already dense).
    pub fn materialize(self) -> RecordBatch {
        match self.sel {
            None => self.batch,
            Some(sel) => RecordBatch {
                names: self.batch.names,
                columns: self
                    .batch
                    .columns
                    .iter()
                    .map(|c| c.take_sel(&sel))
                    .collect(),
            },
        }
    }
}

/// `Eq`/`Ne` under SQL equality, ordering ops from a total-order verdict —
/// the split [`av_plan::CmpOp::apply`] makes. SQL equality and the total
/// order disagree on floats (`-0.0 == 0.0` but `total_cmp` says less), so
/// both verdicts are carried.
pub(crate) fn apply_ord(op: CmpOp, ord: Ordering, sql_equal: bool) -> bool {
    match op {
        CmpOp::Eq => sql_equal,
        CmpOp::Ne => !sql_equal,
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

/// Append the rows of `range` that satisfy `keep`.
#[inline]
fn fill_where(out: &mut Vec<u32>, range: Range<usize>, keep: impl Fn(usize) -> bool) {
    for i in range {
        if keep(i) {
            out.push(i as u32);
        }
    }
}

/// Drop the candidates that fail `keep`, preserving order.
#[inline]
fn retain_where(cands: &mut Vec<u32>, keep: impl Fn(usize) -> bool) {
    cands.retain(|&i| keep(i as usize));
}

/// Expand a comparison into one specialized `fill_where` loop per operator:
/// the `CmpOp` match runs once, outside the loop, and each arm monomorphizes
/// a branch-free-on-`op` row test from the `$ord`/`$eq` closures.
macro_rules! cmp_fill {
    ($out:expr, $range:expr, $op:expr, $ord:expr, $eq:expr) => {{
        let ord = $ord;
        let eq = $eq;
        match $op {
            CmpOp::Eq => fill_where($out, $range, |r| eq(r)),
            CmpOp::Ne => fill_where($out, $range, |r| !eq(r)),
            CmpOp::Lt => fill_where($out, $range, |r| ord(r) == Ordering::Less),
            CmpOp::Le => fill_where($out, $range, |r| ord(r) != Ordering::Greater),
            CmpOp::Gt => fill_where($out, $range, |r| ord(r) == Ordering::Greater),
            CmpOp::Ge => fill_where($out, $range, |r| ord(r) != Ordering::Less),
        }
    }};
}

/// [`cmp_fill!`]'s refinement twin over an existing candidate vector.
macro_rules! cmp_retain {
    ($cands:expr, $op:expr, $ord:expr, $eq:expr) => {{
        let ord = $ord;
        let eq = $eq;
        match $op {
            CmpOp::Eq => retain_where($cands, |r| eq(r)),
            CmpOp::Ne => retain_where($cands, |r| !eq(r)),
            CmpOp::Lt => retain_where($cands, |r| ord(r) == Ordering::Less),
            CmpOp::Le => retain_where($cands, |r| ord(r) != Ordering::Greater),
            CmpOp::Gt => retain_where($cands, |r| ord(r) == Ordering::Greater),
            CmpOp::Ge => retain_where($cands, |r| ord(r) != Ordering::Less),
        }
    }};
}

/// One conjunct of a compiled predicate. Typed variants replicate
/// `cmp_col_lit`'s semantics exactly (int/float promotion, `total_cmp`
/// ordering with SQL equality); `Const` covers comparisons decided at
/// compile time (NULL literals, string-vs-number type mismatches).
#[derive(Debug)]
enum Kernel {
    Const(bool),
    /// `Int column <op> Int literal`.
    IntInt { col: usize, op: CmpOp, lit: i64 },
    /// `Int column <op> Float literal`: the cell promotes to `f64`.
    IntFloat { col: usize, op: CmpOp, lit: f64 },
    /// `Float column <op> numeric literal` (int literals pre-promoted).
    Float { col: usize, op: CmpOp, lit: f64 },
    /// `Str column <op> Str literal`.
    Str { col: usize, op: CmpOp, lit: String },
    /// Anything else: interpreted per row, same verdicts as the reference.
    General(BoundExpr),
}

impl Kernel {
    fn compile(e: BoundExpr) -> Kernel {
        if let BoundExpr::Cmp { op, left, right } = &e {
            match (left.as_ref(), right.as_ref()) {
                (BoundExpr::Col(i), BoundExpr::Lit(v)) => return Kernel::typed(*op, *i, v),
                (BoundExpr::Lit(v), BoundExpr::Col(i)) => {
                    return Kernel::typed(op.flipped(), *i, v)
                }
                _ => {}
            }
        }
        Kernel::General(e)
    }

    /// `column[col] <op> lit` with the literal's type known up front. The
    /// column's type is resolved lazily at evaluation (the kernel is always
    /// evaluated against the batch it was bound to).
    fn typed(op: CmpOp, col: usize, lit: &Value) -> Kernel {
        match lit {
            Value::Null => Kernel::Const(false),
            Value::Int(b) => Kernel::IntInt { col, op, lit: *b },
            Value::Float(b) => Kernel::IntFloat { col, op, lit: *b },
            Value::Str(s) => Kernel::Str {
                col,
                op,
                lit: s.clone(),
            },
        }
    }

    /// Resolve the column type the first time the kernel meets its batch:
    /// numeric promotions and string/number mismatches depend on it.
    fn bind(self, batch: &RecordBatch) -> Kernel {
        match self {
            Kernel::IntInt { col, op, lit } => match &batch.columns[col] {
                Column::Int(_) => Kernel::IntInt { col, op, lit },
                Column::Float(_) => Kernel::Float {
                    col,
                    op,
                    lit: lit as f64,
                },
                // String column vs number: never SQL-equal; strings sort
                // after numbers (the reference's `cmp_col_lit` fallback).
                Column::Str(_) => Kernel::Const(apply_ord(op, Ordering::Greater, false)),
            },
            Kernel::IntFloat { col, op, lit } => match &batch.columns[col] {
                Column::Int(_) => Kernel::IntFloat { col, op, lit },
                Column::Float(_) => Kernel::Float { col, op, lit },
                Column::Str(_) => Kernel::Const(apply_ord(op, Ordering::Greater, false)),
            },
            Kernel::Str { col, op, lit } => match &batch.columns[col] {
                Column::Str(_) => Kernel::Str { col, op, lit },
                // Number column vs string literal: numbers sort before.
                _ => Kernel::Const(apply_ord(op, Ordering::Less, false)),
            },
            k => k,
        }
    }

    /// Append the rows of `range` this conjunct keeps.
    fn fill(&self, batch: &RecordBatch, range: Range<usize>, out: &mut Vec<u32>) {
        match self {
            Kernel::Const(true) => out.extend(range.map(|i| i as u32)),
            Kernel::Const(false) => {}
            Kernel::IntInt { col, op, lit } => {
                let Column::Int(d) = &batch.columns[*col] else {
                    unreachable!("kernel bound to this batch")
                };
                let lit = *lit;
                cmp_fill!(out, range, *op, |r: usize| d[r].cmp(&lit), |r: usize| d[r]
                    == lit);
            }
            Kernel::IntFloat { col, op, lit } => {
                let Column::Int(d) = &batch.columns[*col] else {
                    unreachable!("kernel bound to this batch")
                };
                let lit = *lit;
                cmp_fill!(
                    out,
                    range,
                    *op,
                    |r: usize| (d[r] as f64).total_cmp(&lit),
                    |r: usize| d[r] as f64 == lit
                );
            }
            Kernel::Float { col, op, lit } => {
                let Column::Float(d) = &batch.columns[*col] else {
                    unreachable!("kernel bound to this batch")
                };
                let lit = *lit;
                cmp_fill!(
                    out,
                    range,
                    *op,
                    |r: usize| d[r].total_cmp(&lit),
                    |r: usize| d[r] == lit
                );
            }
            Kernel::Str { col, op, lit } => {
                let Column::Str(d) = &batch.columns[*col] else {
                    unreachable!("kernel bound to this batch")
                };
                let lit = lit.as_str();
                cmp_fill!(
                    out,
                    range,
                    *op,
                    |r: usize| d[r].as_str().cmp(lit),
                    |r: usize| d[r] == lit
                );
            }
            Kernel::General(e) => fill_where(out, range, |r| e.eval_bool(batch, r)),
        }
    }

    /// Drop the candidates this conjunct rejects.
    fn refine(&self, batch: &RecordBatch, cands: &mut Vec<u32>) {
        match self {
            Kernel::Const(true) => {}
            Kernel::Const(false) => cands.clear(),
            Kernel::IntInt { col, op, lit } => {
                let Column::Int(d) = &batch.columns[*col] else {
                    unreachable!("kernel bound to this batch")
                };
                let lit = *lit;
                cmp_retain!(cands, *op, |r: usize| d[r].cmp(&lit), |r: usize| d[r]
                    == lit);
            }
            Kernel::IntFloat { col, op, lit } => {
                let Column::Int(d) = &batch.columns[*col] else {
                    unreachable!("kernel bound to this batch")
                };
                let lit = *lit;
                cmp_retain!(
                    cands,
                    *op,
                    |r: usize| (d[r] as f64).total_cmp(&lit),
                    |r: usize| d[r] as f64 == lit
                );
            }
            Kernel::Float { col, op, lit } => {
                let Column::Float(d) = &batch.columns[*col] else {
                    unreachable!("kernel bound to this batch")
                };
                let lit = *lit;
                cmp_retain!(
                    cands,
                    *op,
                    |r: usize| d[r].total_cmp(&lit),
                    |r: usize| d[r] == lit
                );
            }
            Kernel::Str { col, op, lit } => {
                let Column::Str(d) = &batch.columns[*col] else {
                    unreachable!("kernel bound to this batch")
                };
                let lit = lit.as_str();
                cmp_retain!(
                    cands,
                    *op,
                    |r: usize| d[r].as_str().cmp(lit),
                    |r: usize| d[r] == lit
                );
            }
            Kernel::General(e) => retain_where(cands, |r| e.eval_bool(batch, r)),
        }
    }
}

/// A predicate compiled to a conjunction of [`Kernel`]s. The first conjunct
/// fills a fresh selection; the rest refine it, so later conjuncts only
/// touch rows the earlier ones kept — the columnar analogue of the
/// reference path's per-row short-circuit, producing the identical row set.
#[derive(Debug)]
pub(crate) struct CompiledPred {
    kernels: Vec<Kernel>,
}

impl CompiledPred {
    /// Compile a bound predicate against the batch shape it was bound to.
    /// Top-level conjunctions are flattened; each conjunct becomes a typed
    /// kernel when it is a `column <op> literal`, an interpreted fallback
    /// otherwise.
    pub fn compile(bound: BoundExpr, batch: &RecordBatch) -> CompiledPred {
        fn flatten(e: BoundExpr, batch: &RecordBatch, out: &mut Vec<Kernel>) {
            match e {
                BoundExpr::And(v) => {
                    for c in v {
                        flatten(c, batch, out);
                    }
                }
                other => out.push(Kernel::compile(other).bind(batch)),
            }
        }
        let mut kernels = Vec::new();
        flatten(bound, batch, &mut kernels);
        CompiledPred { kernels }
    }

    /// Rows of `range` kept by every conjunct, ascending.
    pub fn eval_dense(&self, batch: &RecordBatch, range: Range<usize>) -> Vec<u32> {
        let mut out = Vec::new();
        let Some((first, rest)) = self.kernels.split_first() else {
            // Empty conjunction (`And([])`) keeps everything, like the
            // reference's vacuous `all()`.
            out.extend(range.map(|i| i as u32));
            return out;
        };
        first.fill(batch, range, &mut out);
        for k in rest {
            if out.is_empty() {
                break;
            }
            k.refine(batch, &mut out);
        }
        out
    }

    /// Candidates of `cands` kept by every conjunct, in order.
    pub fn eval_sel(&self, batch: &RecordBatch, cands: &[u32]) -> Vec<u32> {
        let mut out = cands.to_vec();
        for k in &self.kernels {
            if out.is_empty() {
                break;
            }
            k.refine(batch, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_plan::Expr;

    fn batch() -> RecordBatch {
        RecordBatch {
            names: vec!["t.i".into(), "t.f".into(), "t.s".into()],
            columns: vec![
                Column::Int(vec![-2, -1, 0, 1, 2, 3]),
                Column::Float(vec![-0.0, 0.0, 1.5, f64::NAN, 2.5, -3.0]),
                Column::str(
                    ["a", "bb", "c", "", "bb", "z"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                ),
            ],
        }
    }

    /// Compiled verdicts must match the interpreted reference row for row.
    fn assert_matches_reference(expr: &Expr) {
        let b = batch();
        let bound = BoundExpr::bind(expr, &b).expect("binds");
        let reference: Vec<u32> = (0..b.num_rows())
            .filter(|&r| bound.eval_bool(&b, r))
            .map(|r| r as u32)
            .collect();
        let bound = BoundExpr::bind(expr, &b).expect("binds");
        let pred = CompiledPred::compile(bound, &b);
        assert_eq!(
            pred.eval_dense(&b, 0..b.num_rows()),
            reference,
            "dense eval of {expr:?}"
        );
        // Refinement over a partial candidate list keeps the same subset.
        let cands: Vec<u32> = (0..b.num_rows() as u32).step_by(2).collect();
        let expect: Vec<u32> = cands
            .iter()
            .copied()
            .filter(|c| reference.contains(c))
            .collect();
        assert_eq!(pred.eval_sel(&b, &cands), expect, "sel eval of {expr:?}");
    }

    #[test]
    fn typed_kernels_match_interpreted_eval() {
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        for op in ops {
            assert_matches_reference(&Expr::col("t.i").cmp(op, Expr::int(1)));
            assert_matches_reference(&Expr::col("t.i").cmp(op, Expr::Literal(Value::Float(0.5))));
            assert_matches_reference(&Expr::col("t.f").cmp(op, Expr::int(0)));
            assert_matches_reference(&Expr::col("t.f").cmp(op, Expr::Literal(Value::Float(0.0))));
            assert_matches_reference(&Expr::col("t.s").cmp(op, Expr::str("bb")));
            // Flipped literal-column order.
            assert_matches_reference(&Expr::int(1).cmp(op, Expr::col("t.i")));
            // Type mismatches decided at compile time.
            assert_matches_reference(&Expr::col("t.s").cmp(op, Expr::int(1)));
            assert_matches_reference(&Expr::col("t.i").cmp(op, Expr::str("1")));
            assert_matches_reference(&Expr::col("t.f").cmp(op, Expr::Literal(Value::Null)));
        }
    }

    #[test]
    fn conjunctions_and_fallbacks_match_interpreted_eval() {
        let p = Expr::col("t.i").cmp(CmpOp::Gt, Expr::int(-1));
        let q = Expr::col("t.f").cmp(CmpOp::Le, Expr::Literal(Value::Float(2.0)));
        let r = Expr::col("t.s").cmp(CmpOp::Ne, Expr::str("c"));
        assert_matches_reference(&p.clone().and(q.clone()));
        assert_matches_reference(&p.clone().and(q.clone()).and(r.clone()));
        // Or / Not fall back to the interpreted kernel.
        assert_matches_reference(&Expr::Or(vec![p.clone(), q.clone()]));
        assert_matches_reference(&Expr::Not(Box::new(p.clone())).and(r));
        // Column-vs-column comparison is a general kernel too.
        assert_matches_reference(&Expr::col("t.i").cmp(CmpOp::Lt, Expr::col("t.f")));
    }

    #[test]
    fn float_total_order_and_sql_equality_both_respected() {
        // -0.0: SQL-equal to 0.0, but total_cmp orders it below.
        assert_matches_reference(&Expr::col("t.f").eq(Expr::Literal(Value::Float(0.0))));
        assert_matches_reference(&Expr::col("t.f").cmp(CmpOp::Lt, Expr::Literal(Value::Float(0.0))));
        // NaN cells: never SQL-equal, ordered above everything by total_cmp.
        assert_matches_reference(&Expr::col("t.f").cmp(CmpOp::Gt, Expr::Literal(Value::Float(1e300))));
    }
}
