//! Deterministic chunked data-parallelism over row ranges.
//!
//! Work is split into fixed-size chunks of [`CHUNK_ROWS`] rows. Chunk
//! boundaries depend only on the row count — never on the thread count — and
//! per-chunk results are combined in ascending chunk order, so any thread
//! count (including 1) produces bit-identical output. Operators that meter
//! cost per chunk accumulate plain integer counters per chunk and sum them
//! in chunk order, which keeps [`crate::meter::ExecutionReport`]s identical
//! between serial and parallel runs.
//!
//! Threads come from `std::thread::scope` — no external thread-pool
//! dependency — and are only spawned when there is more than one chunk.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Rows per chunk. Fixed so that chunk boundaries (and therefore f64
/// accumulation order inside partial aggregates) are independent of the
/// thread count.
pub const CHUNK_ROWS: usize = 1024;

/// Below this many rows the parallel path runs serially even when threads
/// are available: `BENCH_exec.json` showed every micro op at 12–16k rows
/// losing to serial (speedup 0.80–0.94×) because scoped-spawn plus result
/// collection costs more than the work saved. Chunk boundaries are
/// unchanged, so the cutover cannot affect results — only who computes
/// them.
pub const PAR_MIN_ROWS: usize = 32_768;

/// Default executor thread count: one worker per available core, capped to
/// keep scoped-spawn overhead bounded on very wide machines.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Number of chunks needed to cover `rows`.
pub fn chunk_count(rows: usize) -> usize {
    rows.div_ceil(CHUNK_ROWS)
}

fn chunk_range(idx: usize, rows: usize) -> Range<usize> {
    let start = idx * CHUNK_ROWS;
    start..rows.min(start + CHUNK_ROWS)
}

/// Apply `f` to every chunk of `0..rows` and return the per-chunk results in
/// ascending chunk order.
///
/// With `threads <= 1`, a single chunk, or fewer than [`PAR_MIN_ROWS`] rows
/// the chunks run sequentially on the calling thread; otherwise a scoped
/// worker pool pulls chunk indices from an atomic counter. Either way the
/// returned `Vec` is ordered by chunk index, so callers can concatenate or
/// fold the results deterministically.
pub fn map_chunks<T, F>(rows: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let chunks = chunk_count(rows);
    if threads <= 1 || chunks <= 1 || rows < PAR_MIN_ROWS {
        return (0..chunks).map(|i| f(i, chunk_range(i, rows))).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(chunks));
    let workers = threads.min(chunks);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks {
                        break;
                    }
                    local.push((i, f(i, chunk_range(i, rows))));
                }
                if !local.is_empty() {
                    collected.lock().expect("worker panicked").extend(local);
                }
            });
        }
    });

    let mut out = collected.into_inner().expect("worker panicked");
    out.sort_unstable_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rows_yield_no_chunks() {
        let r: Vec<usize> = map_chunks(0, 4, |_, range| range.len());
        assert!(r.is_empty());
    }

    #[test]
    fn chunks_cover_rows_exactly_once() {
        let rows = 3 * CHUNK_ROWS + 17;
        for threads in [1, 2, 5] {
            let ranges = map_chunks(rows, threads, |i, range| (i, range));
            assert_eq!(ranges.len(), chunk_count(rows));
            let mut expect_start = 0;
            for (k, (i, range)) in ranges.iter().enumerate() {
                assert_eq!(*i, k, "results must be in chunk order");
                assert_eq!(range.start, expect_start);
                expect_start = range.end;
            }
            assert_eq!(expect_start, rows);
        }
    }

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let rows = 2 * CHUNK_ROWS + 100;
        let serial: Vec<u64> = map_chunks(rows, 1, |_, r| r.map(|x| x as u64).sum());
        for threads in [2, 3, 8] {
            let par: Vec<u64> = map_chunks(rows, threads, |_, r| r.map(|x| x as u64).sum());
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn small_batches_stay_on_the_calling_thread() {
        // Below the cutover no worker threads spawn, so every chunk runs on
        // the caller — observable via thread ids.
        let caller = std::thread::current().id();
        let rows = PAR_MIN_ROWS - 1;
        let ids: Vec<std::thread::ThreadId> =
            map_chunks(rows, 8, |_, _| std::thread::current().id());
        assert_eq!(ids.len(), chunk_count(rows));
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn cutover_changes_no_results() {
        // Rows straddling the cutover produce identical chunking either side.
        for rows in [PAR_MIN_ROWS - 1, PAR_MIN_ROWS, PAR_MIN_ROWS + 1] {
            let serial: Vec<u64> = map_chunks(rows, 1, |_, r| r.map(|x| x as u64).sum());
            let par: Vec<u64> = map_chunks(rows, 4, |_, r| r.map(|x| x as u64).sum());
            assert_eq!(serial, par);
        }
    }
}
