//! Deterministic chunked data-parallelism over row ranges.
//!
//! Work is split into fixed-size chunks of [`CHUNK_ROWS`] rows. Chunk
//! boundaries depend only on the row count — never on the thread count — and
//! per-chunk results are combined in ascending chunk order, so any thread
//! count (including 1) produces bit-identical output. Operators that meter
//! cost per chunk accumulate plain integer counters per chunk and sum them
//! in chunk order, which keeps [`crate::meter::ExecutionReport`]s identical
//! between serial and parallel runs.
//!
//! Threads come from `std::thread::scope` — no external thread-pool
//! dependency — and are only spawned when there is more than one chunk.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Rows per chunk. Fixed so that chunk boundaries (and therefore f64
/// accumulation order inside partial aggregates) are independent of the
/// thread count.
pub const CHUNK_ROWS: usize = 1024;

/// Below this many rows the parallel path runs serially even when threads
/// are available: `BENCH_exec.json` showed every micro op at 12–16k rows
/// losing to serial (speedup 0.80–0.94×) because scoped-spawn plus result
/// collection costs more than the work saved. Chunk boundaries are
/// unchanged, so the cutover cannot affect results — only who computes
/// them.
pub const PAR_MIN_ROWS: usize = 32_768;

/// The serial→parallel cutover used when none is configured explicitly:
/// `AV_PAR_MIN_ROWS` from the environment, else [`PAR_MIN_ROWS`].
///
/// The environment is read once per process and cached in a `OnceLock`:
/// every executor constructed afterwards sees the same cutover, so a
/// mid-run env change can never flip the serial/parallel decision between
/// chunks of one query (results would still be identical — chunk
/// boundaries don't move — but the policy should not be mutable either).
/// Benchmarks that sweep the cutover use
/// [`crate::Executor::with_par_min_rows`] instead of mutating the
/// environment.
pub fn par_min_rows_default() -> usize {
    static CUTOVER: OnceLock<usize> = OnceLock::new();
    *CUTOVER.get_or_init(|| {
        std::env::var("AV_PAR_MIN_ROWS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(PAR_MIN_ROWS)
    })
}

/// Parallelism policy for one executor: worker count plus the row cutover
/// below which chunks run on the calling thread. Chunk boundaries depend
/// only on the row count, so every policy produces bit-identical results.
#[derive(Debug, Clone, Copy)]
pub struct Par {
    /// Worker threads (1 = fully serial).
    pub threads: usize,
    /// Minimum rows before worker threads are spawned.
    pub min_rows: usize,
}

impl Par {
    /// One worker per core (capped), cutover from `AV_PAR_MIN_ROWS` /
    /// [`PAR_MIN_ROWS`].
    pub fn auto() -> Par {
        Par {
            threads: default_threads(),
            min_rows: par_min_rows_default(),
        }
    }

    /// Fully serial policy (the cutover is irrelevant at one thread).
    pub fn serial() -> Par {
        Par {
            threads: 1,
            min_rows: PAR_MIN_ROWS,
        }
    }
}

impl Default for Par {
    fn default() -> Par {
        Par::auto()
    }
}

/// Default executor thread count: one worker per available core, capped to
/// keep scoped-spawn overhead bounded on very wide machines.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Number of chunks needed to cover `rows`.
pub fn chunk_count(rows: usize) -> usize {
    rows.div_ceil(CHUNK_ROWS)
}

fn chunk_range(idx: usize, rows: usize) -> Range<usize> {
    let start = idx * CHUNK_ROWS;
    start..rows.min(start + CHUNK_ROWS)
}

/// Apply `f` to every chunk of `0..rows` and return the per-chunk results in
/// ascending chunk order.
///
/// With `par.threads <= 1`, a single chunk, or fewer than `par.min_rows`
/// rows the chunks run sequentially on the calling thread; otherwise a
/// scoped worker pool pulls chunk indices from an atomic counter. Either way
/// the returned `Vec` is ordered by chunk index, so callers can concatenate
/// or fold the results deterministically.
pub fn map_chunks<T, F>(rows: usize, par: Par, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let chunks = chunk_count(rows);
    if par.threads <= 1 || chunks <= 1 || rows < par.min_rows {
        return (0..chunks).map(|i| f(i, chunk_range(i, rows))).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(chunks));
    let workers = par.threads.min(chunks);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks {
                        break;
                    }
                    local.push((i, f(i, chunk_range(i, rows))));
                }
                if !local.is_empty() {
                    collected.lock().expect("worker panicked").extend(local);
                }
            });
        }
    });

    let mut out = collected.into_inner().expect("worker panicked");
    out.sort_unstable_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Policy with `threads` workers and no serial cutover, so small test
    /// row counts still exercise the worker pool.
    fn eager(threads: usize) -> Par {
        Par { threads, min_rows: 0 }
    }

    #[test]
    fn zero_rows_yield_no_chunks() {
        let r: Vec<usize> = map_chunks(0, eager(4), |_, range| range.len());
        assert!(r.is_empty());
    }

    #[test]
    fn chunks_cover_rows_exactly_once() {
        let rows = 3 * CHUNK_ROWS + 17;
        for threads in [1, 2, 5] {
            let ranges = map_chunks(rows, eager(threads), |i, range| (i, range));
            assert_eq!(ranges.len(), chunk_count(rows));
            let mut expect_start = 0;
            for (k, (i, range)) in ranges.iter().enumerate() {
                assert_eq!(*i, k, "results must be in chunk order");
                assert_eq!(range.start, expect_start);
                expect_start = range.end;
            }
            assert_eq!(expect_start, rows);
        }
    }

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let rows = 2 * CHUNK_ROWS + 100;
        let serial: Vec<u64> = map_chunks(rows, Par::serial(), |_, r| r.map(|x| x as u64).sum());
        for threads in [2, 3, 8] {
            let par: Vec<u64> =
                map_chunks(rows, eager(threads), |_, r| r.map(|x| x as u64).sum());
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn small_batches_stay_on_the_calling_thread() {
        // Below the cutover no worker threads spawn, so every chunk runs on
        // the caller — observable via thread ids.
        let caller = std::thread::current().id();
        let rows = PAR_MIN_ROWS - 1;
        let par = Par {
            threads: 8,
            min_rows: PAR_MIN_ROWS,
        };
        let ids: Vec<std::thread::ThreadId> =
            map_chunks(rows, par, |_, _| std::thread::current().id());
        assert_eq!(ids.len(), chunk_count(rows));
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn cutover_changes_no_results() {
        // Rows straddling the cutover produce identical chunking either side.
        for min_rows in [0, PAR_MIN_ROWS] {
            for rows in [PAR_MIN_ROWS - 1, PAR_MIN_ROWS, PAR_MIN_ROWS + 1] {
                let serial: Vec<u64> =
                    map_chunks(rows, Par::serial(), |_, r| r.map(|x| x as u64).sum());
                let par: Vec<u64> = map_chunks(rows, Par { threads: 4, min_rows }, |_, r| {
                    r.map(|x| x as u64).sum()
                });
                assert_eq!(serial, par);
            }
        }
    }

    #[test]
    fn env_override_sets_the_default_cutover() {
        // `Par::auto()` uses the process-wide cached cutover; the constant
        // stays the fallback.
        assert_eq!(Par::auto().min_rows, par_min_rows_default());
        assert!(Par::serial().threads == 1);
    }

    #[test]
    fn cutover_env_is_read_once_and_cached() {
        // The first call pins the cutover for the life of the process;
        // later env mutations must not leak into new executors.
        let first = par_min_rows_default();
        std::env::set_var("AV_PAR_MIN_ROWS", "1");
        assert_eq!(par_min_rows_default(), first, "cutover must be cached");
        std::env::remove_var("AV_PAR_MIN_ROWS");
        assert_eq!(par_min_rows_default(), first);
    }
}
