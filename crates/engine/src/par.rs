//! Deterministic chunked data-parallelism over row ranges.
//!
//! Work is split into fixed-size chunks of [`CHUNK_ROWS`] rows. Chunk
//! boundaries depend only on the row count — never on the thread count — and
//! per-chunk results are combined in ascending chunk order, so any thread
//! count (including 1) produces bit-identical output. Operators that meter
//! cost per chunk accumulate plain integer counters per chunk and sum them
//! in chunk order, which keeps [`crate::meter::ExecutionReport`]s identical
//! between serial and parallel runs.
//!
//! Threads come from the shared [`av_sched`] morsel pool: persistent
//! workers with per-worker deques and an injector, so a parallel query
//! costs a ticket push and a condvar wake instead of a spawn/join cycle.
//! `Par.threads` is the per-query degree of parallelism (the submitting
//! thread plus up to `threads - 1` pool workers); the serving layer derives
//! it from admission-controller inflight counts so concurrent queries
//! don't oversubscribe the machine. The legacy per-query
//! `std::thread::scope` fan-out survives only as
//! [`ParBackend::ScopedSpawn`], the baseline half of the pool-vs-scoped
//! benchmark comparison.

use std::ops::Range;
use std::sync::{Mutex, OnceLock};

/// Rows per chunk. Fixed so that chunk boundaries (and therefore f64
/// accumulation order inside partial aggregates) are independent of the
/// thread count.
pub const CHUNK_ROWS: usize = 1024;

/// Below this many rows the parallel path runs serially even when threads
/// are available. With per-query scoped spawning this sat at 32k rows —
/// `BENCH_exec.json` showed every micro op at 12–16k rows losing to serial
/// because spawn plus result collection cost more than the work saved. The
/// shared pool replaces the spawn/join cycle with a ticket push onto
/// already-running workers, which moves the break-even down to ~16k rows
/// (re-measured by `exec_bench`'s spawn-overhead micro, which gates this
/// constant). Chunk boundaries are unchanged, so the cutover cannot affect
/// results — only who computes them.
pub const PAR_MIN_ROWS: usize = 16_384;

/// Parse an `AV_PAR_MIN_ROWS`-style override, falling back to
/// [`PAR_MIN_ROWS`] when absent or malformed. Split out from
/// [`par_min_rows_default`] so the policy is testable without touching the
/// (process-global, unsound-to-mutate-in-tests) environment.
fn parse_cutover(raw: Option<String>) -> usize {
    raw.and_then(|v| v.parse().ok()).unwrap_or(PAR_MIN_ROWS)
}

/// The serial→parallel cutover used when none is configured explicitly:
/// `AV_PAR_MIN_ROWS` from the environment, else [`PAR_MIN_ROWS`].
///
/// The environment is read once per process and cached in a `OnceLock`:
/// every executor constructed afterwards sees the same cutover, so a
/// mid-run env change can never flip the serial/parallel decision between
/// chunks of one query (results would still be identical — chunk
/// boundaries don't move — but the policy should not be mutable either).
/// Benchmarks that sweep the cutover use
/// [`crate::Executor::with_par_min_rows`] instead of mutating the
/// environment.
pub fn par_min_rows_default() -> usize {
    static CUTOVER: OnceLock<usize> = OnceLock::new();
    *CUTOVER.get_or_init(|| parse_cutover(std::env::var("AV_PAR_MIN_ROWS").ok()))
}

/// Which thread source runs chunks above the cutover. Both backends claim
/// chunk indices from one atomic counter and fold results in ascending
/// chunk order, so they are bitwise interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParBackend {
    /// The shared persistent morsel pool (`av-sched`). Default.
    Pool,
    /// A fresh `std::thread::scope` worker set per call — the pre-pool
    /// behavior, kept as the benchmark baseline for paired comparisons.
    ScopedSpawn,
}

/// Parallelism policy for one executor: worker count plus the row cutover
/// below which chunks run on the calling thread. Chunk boundaries depend
/// only on the row count, so every policy produces bit-identical results.
#[derive(Debug, Clone, Copy)]
pub struct Par {
    /// Degree of parallelism: caller plus up to `threads - 1` pool workers
    /// (1 = fully serial).
    pub threads: usize,
    /// Minimum rows before pool workers are enlisted.
    pub min_rows: usize,
    /// Thread source for the parallel path.
    pub backend: ParBackend,
}

impl Par {
    /// One worker per core (capped), cutover from `AV_PAR_MIN_ROWS` /
    /// [`PAR_MIN_ROWS`].
    pub fn auto() -> Par {
        Par {
            threads: default_threads(),
            min_rows: par_min_rows_default(),
            backend: ParBackend::Pool,
        }
    }

    /// Fully serial policy (the cutover is irrelevant at one thread).
    pub fn serial() -> Par {
        Par {
            threads: 1,
            min_rows: PAR_MIN_ROWS,
            backend: ParBackend::Pool,
        }
    }
}

impl Default for Par {
    fn default() -> Par {
        Par::auto()
    }
}

/// Default executor thread count: the shared pool's worker census (one per
/// available core, capped).
pub fn default_threads() -> usize {
    av_sched::default_workers()
}

/// Number of chunks needed to cover `rows`.
pub fn chunk_count(rows: usize) -> usize {
    rows.div_ceil(CHUNK_ROWS)
}

fn chunk_range(idx: usize, rows: usize) -> Range<usize> {
    let start = idx * CHUNK_ROWS;
    start..rows.min(start + CHUNK_ROWS)
}

/// Apply `f` to every chunk of `0..rows` and return the per-chunk results in
/// ascending chunk order.
///
/// With `par.threads <= 1`, a single chunk, or fewer than `par.min_rows`
/// rows the chunks run sequentially on the calling thread; otherwise chunk
/// indices are claimed from an atomic counter by the caller plus pool
/// workers (or scoped threads under [`ParBackend::ScopedSpawn`]). Results
/// land in per-chunk slots and are folded by ascending index, so the
/// returned `Vec` is ordered identically no matter who computed what.
pub fn map_chunks<T, F>(rows: usize, par: Par, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let chunks = chunk_count(rows);
    if par.threads <= 1 || chunks <= 1 || rows < par.min_rows {
        return (0..chunks).map(|i| f(i, chunk_range(i, rows))).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let body = |i: usize| {
        let value = f(i, chunk_range(i, rows));
        *slots[i].lock().expect("chunk slot poisoned") = Some(value);
    };
    match par.backend {
        ParBackend::Pool => av_sched::global().run(chunks, par.threads, body),
        ParBackend::ScopedSpawn => av_sched::Pool::run_scoped(chunks, par.threads, body),
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("chunk slot poisoned")
                .expect("every chunk index is claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Policy with `threads` workers and no serial cutover, so small test
    /// row counts still exercise the pool.
    fn eager(threads: usize) -> Par {
        Par {
            threads,
            min_rows: 0,
            backend: ParBackend::Pool,
        }
    }

    #[test]
    fn zero_rows_yield_no_chunks() {
        let r: Vec<usize> = map_chunks(0, eager(4), |_, range| range.len());
        assert!(r.is_empty());
    }

    #[test]
    fn chunks_cover_rows_exactly_once() {
        let rows = 3 * CHUNK_ROWS + 17;
        for threads in [1, 2, 5] {
            let ranges = map_chunks(rows, eager(threads), |i, range| (i, range));
            assert_eq!(ranges.len(), chunk_count(rows));
            let mut expect_start = 0;
            for (k, (i, range)) in ranges.iter().enumerate() {
                assert_eq!(*i, k, "results must be in chunk order");
                assert_eq!(range.start, expect_start);
                expect_start = range.end;
            }
            assert_eq!(expect_start, rows);
        }
    }

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let rows = 2 * CHUNK_ROWS + 100;
        let serial: Vec<u64> = map_chunks(rows, Par::serial(), |_, r| r.map(|x| x as u64).sum());
        for threads in [2, 3, 8] {
            let par: Vec<u64> =
                map_chunks(rows, eager(threads), |_, r| r.map(|x| x as u64).sum());
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn scoped_backend_matches_pool_backend() {
        let rows = 5 * CHUNK_ROWS + 3;
        let pool: Vec<u64> = map_chunks(rows, eager(4), |_, r| r.map(|x| x as u64).sum());
        let scoped: Vec<u64> = map_chunks(
            rows,
            Par {
                threads: 4,
                min_rows: 0,
                backend: ParBackend::ScopedSpawn,
            },
            |_, r| r.map(|x| x as u64).sum(),
        );
        assert_eq!(pool, scoped);
    }

    #[test]
    fn small_batches_stay_on_the_calling_thread() {
        // Below the cutover no pool workers are enlisted, so every chunk
        // runs on the caller — observable via thread ids.
        let caller = std::thread::current().id();
        let rows = PAR_MIN_ROWS - 1;
        let par = Par {
            threads: 8,
            min_rows: PAR_MIN_ROWS,
            backend: ParBackend::Pool,
        };
        let ids: Vec<std::thread::ThreadId> =
            map_chunks(rows, par, |_, _| std::thread::current().id());
        assert_eq!(ids.len(), chunk_count(rows));
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn cutover_changes_no_results() {
        // Rows straddling the cutover produce identical chunking either side.
        for min_rows in [0, PAR_MIN_ROWS] {
            for rows in [PAR_MIN_ROWS - 1, PAR_MIN_ROWS, PAR_MIN_ROWS + 1] {
                let serial: Vec<u64> =
                    map_chunks(rows, Par::serial(), |_, r| r.map(|x| x as u64).sum());
                let par: Vec<u64> = map_chunks(
                    rows,
                    Par {
                        threads: 4,
                        min_rows,
                        backend: ParBackend::Pool,
                    },
                    |_, r| r.map(|x| x as u64).sum(),
                );
                assert_eq!(serial, par);
            }
        }
    }

    #[test]
    fn env_override_sets_the_default_cutover() {
        // `Par::auto()` uses the process-wide cached cutover; the constant
        // stays the fallback.
        assert_eq!(Par::auto().min_rows, par_min_rows_default());
        assert!(Par::serial().threads == 1);
    }

    #[test]
    fn cutover_parsing_handles_absent_and_malformed_values() {
        assert_eq!(parse_cutover(None), PAR_MIN_ROWS);
        assert_eq!(parse_cutover(Some("1".into())), 1);
        assert_eq!(parse_cutover(Some("65536".into())), 65_536);
        assert_eq!(parse_cutover(Some("not-a-number".into())), PAR_MIN_ROWS);
        assert_eq!(parse_cutover(Some("".into())), PAR_MIN_ROWS);
    }

    #[test]
    fn cutover_env_is_read_once_and_cached() {
        // Exercise the OnceLock caching shape with an *injected* source
        // instead of `std::env::set_var` (mutating the process environment
        // from a threaded test harness is unsound). The init closure must
        // run exactly once: a later "env change" is never observed.
        let cache: OnceLock<usize> = OnceLock::new();
        let reads = AtomicUsize::new(0);
        let read_source = |raw: Option<&str>| {
            reads.fetch_add(1, Ordering::SeqCst);
            parse_cutover(raw.map(String::from))
        };
        let first = *cache.get_or_init(|| read_source(None));
        assert_eq!(first, PAR_MIN_ROWS);
        let second = *cache.get_or_init(|| read_source(Some("1")));
        assert_eq!(second, first, "cutover must be cached");
        assert_eq!(reads.load(Ordering::SeqCst), 1, "source read exactly once");
        // The real process-wide default is likewise stable across calls.
        assert_eq!(par_min_rows_default(), par_min_rows_default());
    }
}
