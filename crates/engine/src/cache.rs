//! Fingerprint-keyed execution-result cache.
//!
//! The learning loops re-execute the same plans constantly: `av-core`'s
//! ground-truth measurement runs every (query, view) pair, and `av-online`'s
//! re-optimization dry-runs each candidate selection against the window.
//! Execution is deterministic, so a plan's result only changes when the
//! catalog changes — and every catalog mutation (table added, view
//! materialized or dropped) bumps [`Catalog::epoch`]. Caching on
//! `(plan fingerprint, catalog epoch)` is therefore sound: a stale entry can
//! never be returned, it simply stops being reachable after the epoch bump.
//!
//! The cache is interior-mutable (`&self` everywhere) and thread-safe, so
//! one instance can serve a whole preprocessing pipeline.

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::{ExecResult, Executor};
use crate::meter::Pricing;
use av_plan::{Fingerprint, PlanNode};
use av_trace::Tracer;
use std::collections::HashMap;
use std::sync::Mutex;

/// Hit/miss counters, readable at any time via [`ExecCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<(Fingerprint, u64), ExecResult>,
    stats: CacheStats,
}

/// A caching wrapper around [`Executor`]: same results, same reports, but a
/// repeated `(plan, catalog epoch)` pair returns a clone of the first run.
#[derive(Debug)]
pub struct ExecCache {
    pricing: Pricing,
    threads: Option<usize>,
    max_entries: usize,
    tracer: Tracer,
    state: Mutex<CacheState>,
}

impl ExecCache {
    /// New cache with a default entry cap.
    pub fn new(pricing: Pricing) -> ExecCache {
        ExecCache {
            pricing,
            threads: None,
            max_entries: 4096,
            tracer: Tracer::disabled(),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Attach an observability tracer: lookups bump `engine.cache_hit` /
    /// `engine.cache_miss` counters, and the executors spawned for misses
    /// record per-operator spans into the same tracer.
    pub fn with_tracer(mut self, tracer: Tracer) -> ExecCache {
        self.tracer = tracer;
        self
    }

    /// Override the entry cap (minimum 1).
    pub fn with_capacity(mut self, max_entries: usize) -> ExecCache {
        self.max_entries = max_entries.max(1);
        self
    }

    /// Pin the executor thread count (results are identical either way; see
    /// [`Executor::with_threads`]).
    pub fn with_threads(mut self, threads: usize) -> ExecCache {
        self.threads = Some(threads.max(1));
        self
    }

    /// The pricing model every cached execution is metered under.
    pub fn pricing(&self) -> Pricing {
        self.pricing
    }

    /// Execute `plan` against `catalog`, reusing a cached result when this
    /// exact plan already ran at the catalog's current epoch.
    pub fn run(&self, catalog: &Catalog, plan: &PlanNode) -> Result<ExecResult, EngineError> {
        let key = (Fingerprint::of(plan), catalog.epoch());
        {
            let mut state = self.state.lock().expect("cache lock");
            if let Some(hit) = state.map.get(&key) {
                let hit = hit.clone();
                state.stats.hits += 1;
                drop(state);
                self.tracer.metrics().inc("engine.cache_hit");
                return Ok(hit);
            }
            state.stats.misses += 1;
        }
        self.tracer.metrics().inc("engine.cache_miss");

        // Execute outside the lock; concurrent misses on the same key just
        // compute the identical result twice.
        let mut exec = Executor::new(catalog, self.pricing).with_tracer(self.tracer.clone());
        if let Some(t) = self.threads {
            exec = exec.with_threads(t);
        }
        let result = exec.run(plan)?;

        let mut state = self.state.lock().expect("cache lock");
        if state.map.len() >= self.max_entries && !state.map.contains_key(&key) {
            // Entries from earlier epochs are unreachable — shed them first;
            // if the current epoch alone fills the cap, start over.
            let epoch = catalog.epoch();
            state.map.retain(|(_, e), _| *e == epoch);
            if state.map.len() >= self.max_entries {
                state.map.clear();
            }
        }
        state.map.insert(key, result.clone());
        Ok(result)
    }

    /// Execute and return only the cost in dollars (`A_{β,γ}`), cached.
    pub fn cost(&self, catalog: &Catalog, plan: &PlanNode) -> Result<f64, EngineError> {
        Ok(self.run(catalog, plan)?.report.cost_dollars)
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().expect("cache lock").stats
    }

    /// Number of cached results (across all epochs still held).
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock").map.len()
    }

    /// True iff no results are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached results; counters are kept.
    pub fn clear(&self) {
        self.state.lock().expect("cache lock").map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;
    use crate::catalog::Table;
    use av_plan::{Expr, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "t",
                vec![
                    ("id", Column::Int((0..50).collect())),
                    ("v", Column::Int((0..50).map(|i| i % 5).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c
    }

    fn plan() -> av_plan::PlanRef {
        PlanBuilder::scan("t", "a")
            .filter(Expr::col("a.v").eq(Expr::int(3)))
            .count_star(&[], "n")
            .build()
    }

    #[test]
    fn hit_returns_identical_batch_and_report() {
        let c = catalog();
        let cache = ExecCache::new(Pricing::paper_defaults());
        let cold = cache.run(&c, &plan()).expect("cold run");
        let warm = cache.run(&c, &plan()).expect("warm run");
        assert_eq!(cold.batch, warm.batch);
        assert_eq!(cold.report, warm.report);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn epoch_bump_invalidates() {
        let mut c = catalog();
        let cache = ExecCache::new(Pricing::paper_defaults());
        cache.run(&c, &plan()).expect("cold");
        c.add_table(Table::new("u", vec![("x", Column::Int(vec![1]))]).expect("ok"))
            .expect("ok");
        cache.run(&c, &plan()).expect("after mutation");
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 0, misses: 2 },
            "catalog mutation must force a re-run"
        );
    }

    #[test]
    fn capacity_evicts_stale_epochs_first() {
        let mut c = catalog();
        let cache = ExecCache::new(Pricing::paper_defaults()).with_capacity(2);
        let p1 = plan();
        let p2 = PlanBuilder::scan("t", "a").count_star(&[], "n").build();
        cache.run(&c, &p1).expect("ok");
        cache.run(&c, &p2).expect("ok");
        assert_eq!(cache.len(), 2);
        // Bump the epoch, then insert at the new epoch: the two old-epoch
        // entries are shed rather than current ones.
        c.add_table(Table::new("u", vec![("x", Column::Int(vec![1]))]).expect("ok"))
            .expect("ok");
        cache.run(&c, &p1).expect("ok");
        assert_eq!(cache.len(), 1);
        cache.run(&c, &p1).expect("ok");
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cost_matches_uncached_executor() {
        let c = catalog();
        let cache = ExecCache::new(Pricing::paper_defaults());
        let direct = Executor::new(&c, Pricing::paper_defaults())
            .cost(&plan())
            .expect("direct");
        let cached = cache.cost(&c, &plan()).expect("cached");
        assert_eq!(direct, cached);
    }
}
