//! Fingerprint-keyed execution-result cache.
//!
//! The learning loops re-execute the same plans constantly: `av-core`'s
//! ground-truth measurement runs every (query, view) pair, and `av-online`'s
//! re-optimization dry-runs each candidate selection against the window.
//! Execution is deterministic, so a plan's result only changes when the
//! catalog changes — and every catalog mutation (table added, view
//! materialized or dropped) bumps [`Catalog::epoch`]. Caching on
//! `(plan fingerprint, catalog epoch)` is therefore sound: a stale entry can
//! never be returned, it simply stops being reachable after the epoch bump.
//!
//! The cache is interior-mutable (`&self` everywhere) and thread-safe, so
//! one instance can serve a whole preprocessing pipeline.

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::{ExecResult, Executor};
use crate::meter::Pricing;
use av_plan::{Fingerprint, PlanNode};
use av_trace::Tracer;
use std::collections::HashMap;
use std::sync::Mutex;

/// Hit/miss/evict counters, readable at any time via [`ExecCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries shed by the capacity policy (stale-epoch retain or clear).
    pub evictions: u64,
    /// Result payload bytes those shed entries were holding — the memory
    /// actually reclaimed, which `evictions` alone can't show when entry
    /// sizes are skewed.
    pub evicted_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum (used to aggregate shard stats).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            evicted_bytes: self.evicted_bytes + other.evicted_bytes,
        }
    }
}

/// Metric names a cache bumps on lookups/evictions. The default instance
/// reports under the global `engine.cache_*` counters; sharded caches give
/// each shard its own prefix (`engine.cache.shard3.hit`, …) so per-shard
/// balance is visible in any metrics snapshot.
#[derive(Debug, Clone)]
struct MetricNames {
    hit: String,
    miss: String,
    evict: String,
    evict_bytes: String,
}

impl Default for MetricNames {
    fn default() -> MetricNames {
        MetricNames {
            hit: "engine.cache_hit".to_string(),
            miss: "engine.cache_miss".to_string(),
            evict: "engine.cache_evict".to_string(),
            evict_bytes: "engine.cache_evict_bytes".to_string(),
        }
    }
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<(Fingerprint, u64), ExecResult>,
    stats: CacheStats,
}

/// A caching wrapper around [`Executor`]: same results, same reports, but a
/// repeated `(plan, catalog epoch)` pair returns a clone of the first run.
#[derive(Debug)]
pub struct ExecCache {
    pricing: Pricing,
    threads: Option<usize>,
    par_min_rows: Option<usize>,
    backend: Option<crate::par::ParBackend>,
    max_entries: usize,
    tracer: Tracer,
    metric_names: MetricNames,
    state: Mutex<CacheState>,
}

impl ExecCache {
    /// New cache with a default entry cap.
    pub fn new(pricing: Pricing) -> ExecCache {
        ExecCache {
            pricing,
            threads: None,
            par_min_rows: None,
            backend: None,
            max_entries: 4096,
            tracer: Tracer::disabled(),
            metric_names: MetricNames::default(),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Attach an observability tracer: lookups bump `engine.cache_hit` /
    /// `engine.cache_miss` counters, and the executors spawned for misses
    /// record per-operator spans into the same tracer.
    pub fn with_tracer(mut self, tracer: Tracer) -> ExecCache {
        self.tracer = tracer;
        self
    }

    /// Override the entry cap (minimum 1).
    pub fn with_capacity(mut self, max_entries: usize) -> ExecCache {
        self.max_entries = max_entries.max(1);
        self
    }

    /// Pin the executor thread count (results are identical either way; see
    /// [`Executor::with_threads`]).
    pub fn with_threads(mut self, threads: usize) -> ExecCache {
        self.threads = Some(threads.max(1));
        self
    }

    /// Pin the executors' serial→parallel row cutover (see
    /// [`Executor::with_par_min_rows`]).
    pub fn with_par_min_rows(mut self, min_rows: usize) -> ExecCache {
        self.par_min_rows = Some(min_rows);
        self
    }

    /// Pin the executors' parallel thread source (see
    /// [`Executor::with_par_backend`]); results are identical either way.
    pub fn with_par_backend(mut self, backend: crate::par::ParBackend) -> ExecCache {
        self.backend = Some(backend);
        self
    }

    /// Report lookups under `<prefix>.hit` / `<prefix>.miss` /
    /// `<prefix>.evict` instead of the global `engine.cache_*` counters
    /// (used by [`ShardedExecCache`] to name each shard).
    pub fn with_metric_prefix(mut self, prefix: &str) -> ExecCache {
        self.metric_names = MetricNames {
            hit: format!("{prefix}.hit"),
            miss: format!("{prefix}.miss"),
            evict: format!("{prefix}.evict"),
            evict_bytes: format!("{prefix}.evict_bytes"),
        };
        self
    }

    /// The pricing model every cached execution is metered under.
    pub fn pricing(&self) -> Pricing {
        self.pricing
    }

    /// Execute `plan` against `catalog`, reusing a cached result when this
    /// exact plan already ran at the catalog's current epoch.
    pub fn run(&self, catalog: &Catalog, plan: &PlanNode) -> Result<ExecResult, EngineError> {
        self.run_keyed(Fingerprint::of(plan), catalog, plan)
    }

    /// [`ExecCache::run`] with the plan's fingerprint already computed —
    /// callers that hash the plan anyway (shard selection, request routing)
    /// avoid a second tree walk.
    pub fn run_keyed(
        &self,
        fingerprint: Fingerprint,
        catalog: &Catalog,
        plan: &PlanNode,
    ) -> Result<ExecResult, EngineError> {
        self.run_keyed_hit(fingerprint, catalog, plan).map(|(r, _)| r)
    }

    /// [`ExecCache::run_keyed`] that also reports whether the result came
    /// from the cache, so serving-layer telemetry can attribute hit/miss
    /// per request without diffing counter snapshots.
    pub fn run_keyed_hit(
        &self,
        fingerprint: Fingerprint,
        catalog: &Catalog,
        plan: &PlanNode,
    ) -> Result<(ExecResult, bool), EngineError> {
        self.run_keyed_hit_dop(fingerprint, catalog, plan, None)
    }

    /// [`ExecCache::run_keyed_hit`] with a per-call degree-of-parallelism
    /// hint for the miss path. `Some(d)` caps the executor at `d`
    /// participating threads for *this* execution only — the serving layer
    /// derives it from admission-controller inflight counts, so a lone
    /// query fans out while a saturated server runs each query near-serial.
    /// Results and reports are identical for every hint (chunk boundaries
    /// never move), so hits and misses stay interchangeable.
    pub fn run_keyed_hit_dop(
        &self,
        fingerprint: Fingerprint,
        catalog: &Catalog,
        plan: &PlanNode,
        dop: Option<usize>,
    ) -> Result<(ExecResult, bool), EngineError> {
        let key = (fingerprint, catalog.epoch());
        {
            let mut state = self.state.lock().expect("cache lock");
            if let Some(hit) = state.map.get(&key) {
                let hit = hit.clone();
                state.stats.hits += 1;
                drop(state);
                self.tracer.metrics().inc(&self.metric_names.hit);
                return Ok((hit, true));
            }
            state.stats.misses += 1;
        }
        self.tracer.metrics().inc(&self.metric_names.miss);

        // Execute outside the lock; concurrent misses on the same key just
        // compute the identical result twice.
        let mut exec = Executor::new(catalog, self.pricing).with_tracer(self.tracer.clone());
        if let Some(t) = self.threads {
            exec = exec.with_threads(t);
        }
        // The elastic hint caps (never raises) the configured thread count:
        // the cache's pinned setting stays the fan-out ceiling.
        if let Some(d) = dop {
            let ceiling = self.threads.unwrap_or_else(crate::par::default_threads);
            exec = exec.with_threads(d.clamp(1, ceiling.max(1)));
        }
        if let Some(m) = self.par_min_rows {
            exec = exec.with_par_min_rows(m);
        }
        if let Some(b) = self.backend {
            exec = exec.with_par_backend(b);
        }
        let result = exec.run(plan)?;

        let mut state = self.state.lock().expect("cache lock");
        if state.map.len() >= self.max_entries && !state.map.contains_key(&key) {
            // Entries from earlier epochs are unreachable — shed them first;
            // if the current epoch alone fills the cap, start over.
            let before = state.map.len();
            let epoch = catalog.epoch();
            let mut shed_bytes = 0u64;
            state.map.retain(|(_, e), v| {
                let keep = *e == epoch;
                if !keep {
                    shed_bytes += v.report.output_bytes as u64;
                }
                keep
            });
            if state.map.len() >= self.max_entries {
                shed_bytes += state
                    .map
                    .values()
                    .map(|v| v.report.output_bytes as u64)
                    .sum::<u64>();
                state.map.clear();
            }
            let shed = (before - state.map.len()) as u64;
            if shed > 0 {
                state.stats.evictions += shed;
                state.stats.evicted_bytes += shed_bytes;
                drop(state);
                self.tracer.metrics().add(&self.metric_names.evict, shed);
                self.tracer
                    .metrics()
                    .add(&self.metric_names.evict_bytes, shed_bytes);
                state = self.state.lock().expect("cache lock");
            }
        }
        state.map.insert(key, result.clone());
        Ok((result, false))
    }

    /// Execute and return only the cost in dollars (`A_{β,γ}`), cached.
    pub fn cost(&self, catalog: &Catalog, plan: &PlanNode) -> Result<f64, EngineError> {
        Ok(self.run(catalog, plan)?.report.cost_dollars)
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().expect("cache lock").stats
    }

    /// Number of cached results (across all epochs still held).
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock").map.len()
    }

    /// True iff no results are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached results; counters are kept.
    pub fn clear(&self) {
        self.state.lock().expect("cache lock").map.clear();
    }
}

/// A fingerprint-sharded [`ExecCache`]: `N` independent locks, so
/// concurrent serving sessions stop serializing on one cache mutex.
///
/// The shard of a plan is a pure function of its fingerprint, so repeat
/// executions always land on the same shard and the per-shard hit/miss
/// semantics are identical to one big cache. Each shard reports its own
/// `engine.cache.shard<i>.{hit,miss,evict}` counters into the attached
/// tracer's metrics registry (per-shard balance is a serving health
/// signal); aggregated numbers come from [`ShardedExecCache::stats`].
#[derive(Debug)]
pub struct ShardedExecCache {
    shards: Vec<ExecCache>,
}

impl ShardedExecCache {
    /// Default shard count: enough locks that 64 concurrent clients rarely
    /// collide, small enough that per-shard capacity stays useful.
    pub const DEFAULT_SHARDS: usize = 16;

    /// New sharded cache with `shards` independent locks (minimum 1).
    pub fn new(pricing: Pricing, shards: usize) -> ShardedExecCache {
        let n = shards.max(1);
        ShardedExecCache {
            shards: (0..n)
                .map(|i| {
                    ExecCache::new(pricing).with_metric_prefix(&format!("engine.cache.shard{i}"))
                })
                .collect(),
        }
    }

    /// Attach an observability tracer to every shard.
    pub fn with_tracer(mut self, tracer: Tracer) -> ShardedExecCache {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_tracer(tracer.clone()))
            .collect();
        self
    }

    /// Cap the *total* entry count; each shard gets an equal slice.
    pub fn with_capacity(mut self, max_entries: usize) -> ShardedExecCache {
        let per_shard = (max_entries / self.shards.len()).max(1);
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_capacity(per_shard))
            .collect();
        self
    }

    /// Pin the executor thread count used on misses.
    pub fn with_threads(mut self, threads: usize) -> ShardedExecCache {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_threads(threads))
            .collect();
        self
    }

    /// Pin the executors' serial→parallel row cutover.
    pub fn with_par_min_rows(mut self, min_rows: usize) -> ShardedExecCache {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_par_min_rows(min_rows))
            .collect();
        self
    }

    /// Pin the executors' parallel thread source on every shard.
    pub fn with_par_backend(mut self, backend: crate::par::ParBackend) -> ShardedExecCache {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_par_backend(backend))
            .collect();
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a fingerprint maps to.
    pub fn shard_of(&self, fingerprint: Fingerprint) -> usize {
        (fingerprint.0 % self.shards.len() as u64) as usize
    }

    /// Execute `plan` against `catalog` through the owning shard.
    pub fn run(&self, catalog: &Catalog, plan: &PlanNode) -> Result<ExecResult, EngineError> {
        let fp = Fingerprint::of(plan);
        self.shards[self.shard_of(fp)].run_keyed(fp, catalog, plan)
    }

    /// [`ShardedExecCache::run`] with the fingerprint already computed.
    pub fn run_keyed(
        &self,
        fingerprint: Fingerprint,
        catalog: &Catalog,
        plan: &PlanNode,
    ) -> Result<ExecResult, EngineError> {
        self.shards[self.shard_of(fingerprint)].run_keyed(fingerprint, catalog, plan)
    }

    /// [`ShardedExecCache::run_keyed`] that also reports whether the owning
    /// shard served the result from cache.
    pub fn run_keyed_hit(
        &self,
        fingerprint: Fingerprint,
        catalog: &Catalog,
        plan: &PlanNode,
    ) -> Result<(ExecResult, bool), EngineError> {
        self.shards[self.shard_of(fingerprint)].run_keyed_hit(fingerprint, catalog, plan)
    }

    /// [`ShardedExecCache::run_keyed_hit`] with a per-call
    /// degree-of-parallelism hint for the miss path (see
    /// [`ExecCache::run_keyed_hit_dop`]).
    pub fn run_keyed_hit_dop(
        &self,
        fingerprint: Fingerprint,
        catalog: &Catalog,
        plan: &PlanNode,
        dop: Option<usize>,
    ) -> Result<(ExecResult, bool), EngineError> {
        self.shards[self.shard_of(fingerprint)].run_keyed_hit_dop(fingerprint, catalog, plan, dop)
    }

    /// Execute and return only the cost in dollars, cached.
    pub fn cost(&self, catalog: &Catalog, plan: &PlanNode) -> Result<f64, EngineError> {
        Ok(self.run(catalog, plan)?.report.cost_dollars)
    }

    /// Aggregated hit/miss/evict counters across all shards.
    pub fn stats(&self) -> CacheStats {
        self.shards
            .iter()
            .map(|s| s.stats())
            .fold(CacheStats::default(), CacheStats::merged)
    }

    /// Per-shard counters, shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Total cached results across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True iff no results are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached results; counters are kept.
    pub fn clear(&self) {
        for s in &self.shards {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;
    use crate::catalog::Table;
    use av_plan::{Expr, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "t",
                vec![
                    ("id", Column::Int((0..50).collect())),
                    ("v", Column::Int((0..50).map(|i| i % 5).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c
    }

    fn plan() -> av_plan::PlanRef {
        PlanBuilder::scan("t", "a")
            .filter(Expr::col("a.v").eq(Expr::int(3)))
            .count_star(&[], "n")
            .build()
    }

    #[test]
    fn hit_returns_identical_batch_and_report() {
        let c = catalog();
        let cache = ExecCache::new(Pricing::paper_defaults());
        let cold = cache.run(&c, &plan()).expect("cold run");
        let warm = cache.run(&c, &plan()).expect("warm run");
        assert_eq!(cold.batch, warm.batch);
        assert_eq!(cold.report, warm.report);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                evicted_bytes: 0
            }
        );
    }

    #[test]
    fn run_keyed_hit_reports_cache_attribution() {
        let c = catalog();
        let cache = ExecCache::new(Pricing::paper_defaults());
        let p = plan();
        let fp = Fingerprint::of(&p);
        let (_, hit) = cache.run_keyed_hit(fp, &c, &p).expect("cold");
        assert!(!hit, "first run is a miss");
        let (_, hit) = cache.run_keyed_hit(fp, &c, &p).expect("warm");
        assert!(hit, "second run is a hit");

        let sharded = ShardedExecCache::new(Pricing::paper_defaults(), 4);
        let (_, hit) = sharded.run_keyed_hit(fp, &c, &p).expect("cold");
        assert!(!hit);
        let (_, hit) = sharded.run_keyed_hit(fp, &c, &p).expect("warm");
        assert!(hit);
    }

    #[test]
    fn dop_hint_changes_no_results_and_respects_the_ceiling() {
        let c = catalog();
        let p = plan();
        let fp = Fingerprint::of(&p);
        let serial = ExecCache::new(Pricing::paper_defaults())
            .with_threads(1)
            .run_keyed_hit_dop(fp, &c, &p, Some(1))
            .expect("serial")
            .0;
        // A hint far above the pinned ceiling is clamped, and every hint
        // yields the identical batch and report.
        for hint in [None, Some(1), Some(2), Some(64)] {
            let cache = ExecCache::new(Pricing::paper_defaults())
                .with_threads(2)
                .with_par_min_rows(0);
            let (r, hit) = cache.run_keyed_hit_dop(fp, &c, &p, hint).expect("runs");
            assert!(!hit);
            assert_eq!(r.batch, serial.batch);
            assert_eq!(r.report, serial.report);
        }
    }

    #[test]
    fn epoch_bump_invalidates() {
        let mut c = catalog();
        let cache = ExecCache::new(Pricing::paper_defaults());
        cache.run(&c, &plan()).expect("cold");
        c.add_table(Table::new("u", vec![("x", Column::Int(vec![1]))]).expect("ok"))
            .expect("ok");
        cache.run(&c, &plan()).expect("after mutation");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                evictions: 0,
                evicted_bytes: 0
            },
            "catalog mutation must force a re-run"
        );
    }

    #[test]
    fn capacity_evicts_stale_epochs_first() {
        let mut c = catalog();
        let cache = ExecCache::new(Pricing::paper_defaults()).with_capacity(2);
        let p1 = plan();
        let p2 = PlanBuilder::scan("t", "a").count_star(&[], "n").build();
        cache.run(&c, &p1).expect("ok");
        cache.run(&c, &p2).expect("ok");
        assert_eq!(cache.len(), 2);
        // Bump the epoch, then insert at the new epoch: the two old-epoch
        // entries are shed rather than current ones.
        c.add_table(Table::new("u", vec![("x", Column::Int(vec![1]))]).expect("ok"))
            .expect("ok");
        cache.run(&c, &p1).expect("ok");
        assert_eq!(cache.len(), 1);
        cache.run(&c, &p1).expect("ok");
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cost_matches_uncached_executor() {
        let c = catalog();
        let cache = ExecCache::new(Pricing::paper_defaults());
        let direct = Executor::new(&c, Pricing::paper_defaults())
            .cost(&plan())
            .expect("direct");
        let cached = cache.cost(&c, &plan()).expect("cached");
        assert_eq!(direct, cached);
    }

    /// `n` structurally distinct plans (different filter literals).
    fn distinct_plans(n: i64) -> Vec<av_plan::PlanRef> {
        (0..n)
            .map(|i| {
                PlanBuilder::scan("t", "a")
                    .filter(Expr::col("a.v").eq(Expr::int(i)))
                    .count_star(&[], "n")
                    .build()
            })
            .collect()
    }

    #[test]
    fn eviction_counter_tracks_capacity_sheds() {
        let mut c = catalog();
        let tracer = Tracer::new();
        let cache = ExecCache::new(Pricing::paper_defaults())
            .with_capacity(2)
            .with_tracer(tracer.clone());
        for p in distinct_plans(2) {
            cache.run(&c, &p).expect("fills");
        }
        // Epoch bump leaves two stale entries; the next insert sheds both.
        c.add_table(Table::new("u", vec![("x", Column::Int(vec![1]))]).expect("ok"))
            .expect("ok");
        cache.run(&c, &distinct_plans(1)[0]).expect("sheds stale");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(tracer.metrics().counter("engine.cache_evict"), 2);
        // Each shed count-star result holds one 8-byte value, so the byte
        // counter reconciles exactly with the eviction count.
        assert_eq!(stats.evicted_bytes, 16);
        assert_eq!(tracer.metrics().counter("engine.cache_evict_bytes"), 16);
    }

    #[test]
    fn sharded_cache_matches_unsharded_and_reports_per_shard_metrics() {
        let c = catalog();
        let tracer = Tracer::new();
        let flat = ExecCache::new(Pricing::paper_defaults());
        let sharded =
            ShardedExecCache::new(Pricing::paper_defaults(), 4).with_tracer(tracer.clone());
        let plans = distinct_plans(8);
        for p in &plans {
            let a = flat.run(&c, p).expect("flat");
            let b = sharded.run(&c, p).expect("sharded");
            assert_eq!(a.batch, b.batch);
            assert_eq!(a.report, b.report);
        }
        for p in &plans {
            sharded.run(&c, p).expect("warm");
        }
        let agg = sharded.stats();
        assert_eq!(agg.hits, 8);
        assert_eq!(agg.misses, 8);

        // Per-shard counters land in the metrics registry under the shard's
        // own prefix, and they reconcile with the aggregate exactly.
        let per_shard = sharded.shard_stats();
        assert_eq!(per_shard.len(), 4);
        let m = tracer.metrics();
        let mut metric_hits = 0;
        let mut metric_misses = 0;
        for (i, s) in per_shard.iter().enumerate() {
            assert_eq!(m.counter(&format!("engine.cache.shard{i}.hit")), s.hits);
            assert_eq!(m.counter(&format!("engine.cache.shard{i}.miss")), s.misses);
            metric_hits += m.counter(&format!("engine.cache.shard{i}.hit"));
            metric_misses += m.counter(&format!("engine.cache.shard{i}.miss"));
        }
        assert_eq!(metric_hits, agg.hits);
        assert_eq!(metric_misses, agg.misses);
        // 8 distinct fingerprints over 4 shards: sharding actually spread
        // the keys (at least two shards saw traffic).
        assert!(per_shard.iter().filter(|s| s.misses > 0).count() >= 2);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let sharded = ShardedExecCache::new(Pricing::paper_defaults(), 7);
        for p in distinct_plans(32) {
            let fp = Fingerprint::of(&p);
            let s = sharded.shard_of(fp);
            assert!(s < 7);
            assert_eq!(s, sharded.shard_of(fp), "shard choice is pure");
        }
    }
}
