//! Query rewriting: replace subtrees with materialized-view scans.
//!
//! Given a query plan and a materialized view whose defining subquery is
//! structurally identical to some subtree of the query, splice a scan of the
//! view's stored table over that subtree. The rewritten plan computes the
//! same result (the stored table *is* the subtree's output, column names
//! included) but skips re-executing the subquery — the source of the
//! paper's benefit `B_{q,v} = A_{β,γ}(q) − A_{β,γ}(q|v)`.

use crate::view::MaterializedView;
use av_plan::{Fingerprint, PlanNode, PlanRef};

/// Rewrite `plan` using one view. Returns the rewritten plan and how many
/// subtrees were replaced (0 means the view did not apply).
pub fn rewrite_with_view(plan: &PlanRef, view: &MaterializedView) -> (PlanRef, usize) {
    let mut count = 0;
    let out = rewrite_rec(plan, view.fingerprint, &view.table_name, &mut count);
    (out, count)
}

/// Rewrite `plan` with a set of views, applying each at most once per
/// occurrence, outermost-first (an outer replacement swallows inner
/// candidates, matching the paper's non-overlapping usage constraint).
/// Returns the rewritten plan and the ids (indices into `views`) actually
/// applied at least once.
pub fn rewrite_with_views(plan: &PlanRef, views: &[&MaterializedView]) -> (PlanRef, Vec<usize>) {
    let mut applied = Vec::new();
    let mut current = plan.clone();
    // Outermost-first: a view matching a larger subtree is preferred, so
    // sort candidates by descending node count of their defining plan.
    let mut order: Vec<usize> = (0..views.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(views[i].plan.node_count()));
    for i in order {
        let (next, n) = rewrite_with_view(&current, views[i]);
        if n > 0 {
            applied.push(i);
            current = next;
        }
    }
    applied.sort_unstable();
    (current, applied)
}

/// Rewrite the subtree of `plan` whose fingerprint is `target_fp` (the
/// *query's own* matching subquery, which may use different aliases than the
/// view's defining plan) with a scan of `view`'s stored table, renamed
/// positionally to the subtree's output columns.
///
/// Equivalent plans produce same-arity outputs in corresponding positions,
/// so the positional rename preserves semantics. `subtree_columns` must be
/// the matched subtree's output column names (derivable via
/// `PlanNode::output_columns` with the catalog).
///
/// Returns the rewritten plan and the number of subtrees replaced.
pub fn rewrite_subtree_with_view(
    plan: &PlanRef,
    target_fp: Fingerprint,
    view: &MaterializedView,
    subtree_columns: &[String],
    view_columns: &[String],
) -> (PlanRef, usize) {
    assert_eq!(
        subtree_columns.len(),
        view_columns.len(),
        "equivalent plans must have same output arity"
    );
    let mut count = 0;
    let scan = PlanNode::TableScan {
        table: view.table_name.clone(),
        alias: String::new(),
    }
    .into_ref();
    // Rename only when the names differ; a bare scan keeps plans minimal.
    let replacement = if subtree_columns == view_columns {
        scan
    } else {
        PlanNode::Project {
            input: scan,
            exprs: view_columns
                .iter()
                .zip(subtree_columns)
                .map(|(from, to)| av_plan::ProjExpr::column(from.clone(), to.clone()))
                .collect(),
        }
        .into_ref()
    };
    let out = splice(plan, target_fp, &replacement, &mut count);
    (out, count)
}

fn splice(
    plan: &PlanRef,
    target: Fingerprint,
    replacement: &PlanRef,
    count: &mut usize,
) -> PlanRef {
    if Fingerprint::of(plan) == target {
        *count += 1;
        return replacement.clone();
    }
    match plan.as_ref() {
        PlanNode::TableScan { .. } => plan.clone(),
        PlanNode::Filter { input, predicate } => {
            let new_input = splice(input, target, replacement, count);
            if std::sync::Arc::ptr_eq(&new_input, input) {
                plan.clone()
            } else {
                PlanNode::Filter {
                    input: new_input,
                    predicate: predicate.clone(),
                }
                .into_ref()
            }
        }
        PlanNode::Project { input, exprs } => {
            let new_input = splice(input, target, replacement, count);
            if std::sync::Arc::ptr_eq(&new_input, input) {
                plan.clone()
            } else {
                PlanNode::Project {
                    input: new_input,
                    exprs: exprs.clone(),
                }
                .into_ref()
            }
        }
        PlanNode::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let new_left = splice(left, target, replacement, count);
            let new_right = splice(right, target, replacement, count);
            if std::sync::Arc::ptr_eq(&new_left, left) && std::sync::Arc::ptr_eq(&new_right, right)
            {
                plan.clone()
            } else {
                PlanNode::Join {
                    left: new_left,
                    right: new_right,
                    on: on.clone(),
                    join_type: *join_type,
                }
                .into_ref()
            }
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let new_input = splice(input, target, replacement, count);
            if std::sync::Arc::ptr_eq(&new_input, input) {
                plan.clone()
            } else {
                PlanNode::Aggregate {
                    input: new_input,
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                }
                .into_ref()
            }
        }
    }
}

fn rewrite_rec(
    plan: &PlanRef,
    target: Fingerprint,
    table_name: &str,
    count: &mut usize,
) -> PlanRef {
    if Fingerprint::of(plan) == target {
        *count += 1;
        // Empty alias = view scan: stored column names pass through as-is.
        return PlanNode::TableScan {
            table: table_name.to_string(),
            alias: String::new(),
        }
        .into_ref();
    }
    match plan.as_ref() {
        PlanNode::TableScan { .. } => plan.clone(),
        PlanNode::Filter { input, predicate } => {
            let new_input = rewrite_rec(input, target, table_name, count);
            if std::sync::Arc::ptr_eq(&new_input, input) {
                plan.clone()
            } else {
                PlanNode::Filter {
                    input: new_input,
                    predicate: predicate.clone(),
                }
                .into_ref()
            }
        }
        PlanNode::Project { input, exprs } => {
            let new_input = rewrite_rec(input, target, table_name, count);
            if std::sync::Arc::ptr_eq(&new_input, input) {
                plan.clone()
            } else {
                PlanNode::Project {
                    input: new_input,
                    exprs: exprs.clone(),
                }
                .into_ref()
            }
        }
        PlanNode::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let new_left = rewrite_rec(left, target, table_name, count);
            let new_right = rewrite_rec(right, target, table_name, count);
            if std::sync::Arc::ptr_eq(&new_left, left) && std::sync::Arc::ptr_eq(&new_right, right)
            {
                plan.clone()
            } else {
                PlanNode::Join {
                    left: new_left,
                    right: new_right,
                    on: on.clone(),
                    join_type: *join_type,
                }
                .into_ref()
            }
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let new_input = rewrite_rec(input, target, table_name, count);
            if std::sync::Arc::ptr_eq(&new_input, input) {
                plan.clone()
            } else {
                PlanNode::Aggregate {
                    input: new_input,
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                }
                .into_ref()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;
    use crate::catalog::{Catalog, Table};
    use crate::exec::Executor;
    use crate::meter::Pricing;
    use crate::view::ViewStore;
    use av_plan::{Expr, PlanBuilder};

    fn setup() -> (Catalog, ViewStore, PlanRef, PlanRef) {
        let mut cat = Catalog::new();
        cat.add_table(
            Table::new(
                "events",
                vec![
                    ("uid", Column::Int((0..200).map(|i| i % 20).collect())),
                    ("kind", Column::Int((0..200).map(|i| i % 4).collect())),
                    ("val", Column::Int((0..200).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");

        // Subquery s: filtered projection.
        let sub = PlanBuilder::scan("events", "e")
            .filter(Expr::col("e.kind").eq(Expr::int(1)))
            .project(&[("e.uid", "e.uid"), ("e.val", "e.val")])
            .build();
        // Query q: aggregate over s.
        let query = PlanBuilder::from_plan(sub.clone())
            .count_star(&["e.uid"], "n")
            .build();

        let mut store = ViewStore::new();
        store
            .materialize(&mut cat, sub.clone(), Pricing::paper_defaults())
            .expect("materializes");
        (cat, store, query, sub)
    }

    #[test]
    fn rewrite_replaces_matching_subtree() {
        let (_cat, store, query, _sub) = setup();
        let (rewritten, n) = rewrite_with_view(&query, &store.views()[0]);
        assert_eq!(n, 1);
        let s = rewritten.display_indent();
        assert!(s.contains("__view_0"));
        assert!(!s.contains("Filter"), "subtree replaced:\n{s}");
    }

    #[test]
    fn rewritten_query_produces_identical_results() {
        let (cat, store, query, _sub) = setup();
        let (rewritten, _) = rewrite_with_view(&query, &store.views()[0]);
        let exec = Executor::new(&cat, Pricing::paper_defaults());
        let orig = exec.run(&query).expect("original runs");
        let rew = exec.run(&rewritten).expect("rewritten runs");
        assert_eq!(orig.batch, rew.batch);
    }

    #[test]
    fn rewritten_query_is_cheaper() {
        let (cat, store, query, _sub) = setup();
        let (rewritten, _) = rewrite_with_view(&query, &store.views()[0]);
        let exec = Executor::new(&cat, Pricing::paper_defaults());
        let orig = exec.run(&query).expect("runs");
        let rew = exec.run(&rewritten).expect("runs");
        assert!(
            rew.report.cost_dollars < orig.report.cost_dollars,
            "rewritten {} should cost less than original {}",
            rew.report.cost_dollars,
            orig.report.cost_dollars
        );
    }

    #[test]
    fn non_matching_view_leaves_plan_untouched() {
        let (mut cat, mut store, query, _sub) = setup();
        let other = PlanBuilder::scan("events", "e")
            .filter(Expr::col("e.kind").eq(Expr::int(3)))
            .project(&[("e.uid", "e.uid")])
            .build();
        store
            .materialize(&mut cat, other, Pricing::paper_defaults())
            .expect("materializes");
        let (rewritten, n) = rewrite_with_view(&query, &store.views()[1]);
        assert_eq!(n, 0);
        assert_eq!(rewritten.display_indent(), query.display_indent());
    }

    #[test]
    fn cross_alias_rewrite_with_rename_preserves_results() {
        // View defined with alias `e`; an equivalent query subtree uses `z`.
        let (mut cat, mut store, _query, _sub) = setup();
        let view_plan = PlanBuilder::scan("events", "e")
            .filter(Expr::col("e.kind").eq(Expr::int(2)))
            .project(&[("e.uid", "e.uid"), ("e.val", "e.val")])
            .build();
        let id = store
            .materialize(&mut cat, view_plan, Pricing::paper_defaults())
            .expect("materializes");
        let view = store.view(id).expect("exists");

        let sub_z = PlanBuilder::scan("events", "z")
            .filter(Expr::col("z.kind").eq(Expr::int(2)))
            .project(&[("z.uid", "z.uid"), ("z.val", "z.val")])
            .build();
        let query_z = PlanBuilder::from_plan(sub_z.clone())
            .count_star(&["z.uid"], "n")
            .build();

        let cat_cols = |t: &str| cat.table_columns(t);
        let subtree_cols = sub_z.output_columns(&cat_cols);
        let view_cols = cat
            .table(&view.table_name)
            .expect("stored")
            .column_names
            .clone();
        let (rewritten, n) = rewrite_subtree_with_view(
            &query_z,
            av_plan::Fingerprint::of(&sub_z),
            view,
            &subtree_cols,
            &view_cols,
        );
        assert_eq!(n, 1);
        let exec = Executor::new(&cat, Pricing::paper_defaults());
        let orig = exec.run(&query_z).expect("original runs");
        let rew = exec.run(&rewritten).expect("rewritten runs");
        assert_eq!(orig.batch, rew.batch);
        assert!(rew.report.cost_dollars < orig.report.cost_dollars);
    }

    #[test]
    fn multi_view_rewrite_prefers_larger_subtree() {
        let (mut cat, mut store, query, sub) = setup();
        // Materialize the whole query as well; it covers the smaller view.
        store
            .materialize(&mut cat, query.clone(), Pricing::paper_defaults())
            .expect("materializes");
        let views: Vec<&MaterializedView> = store.views().iter().collect();
        let (rewritten, applied) = rewrite_with_views(&query, &views);
        // Only the outer (bigger) view applies; inner candidate swallowed.
        assert_eq!(applied, vec![1]);
        assert!(rewritten.display_indent().contains("__view_1"));
        let _ = sub;
    }
}
