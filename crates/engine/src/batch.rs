//! Columnar record batches.

use av_plan::Value;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A typed column of values. Columns never store NULLs; NULL only arises
/// transiently during expression evaluation (e.g. division by zero).
///
/// String payloads sit behind an `Arc`: scans and the plan-result cache
/// clone whole columns constantly, and sharing makes that O(1) instead of a
/// per-string heap copy. Mutation goes through [`Arc::make_mut`], so an
/// unshared column (the only kind builders ever hold) mutates in place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Arc<Vec<String>>),
}

impl Column {
    /// String column from owned values (wraps them in the shared `Arc`).
    pub fn str(values: Vec<String>) -> Column {
        Column::Str(Arc::new(values))
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True iff the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at row `i`.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// An empty column of the same type.
    pub fn empty_like(&self) -> Column {
        match self {
            Column::Int(_) => Column::Int(Vec::new()),
            Column::Float(_) => Column::Float(Vec::new()),
            Column::Str(_) => Column::Str(Arc::new(Vec::new())),
        }
    }

    /// Append the value at `row` of `src` (a column of the same type).
    ///
    /// # Panics
    /// Panics if the column types differ.
    pub fn push_from(&mut self, src: &Column, row: usize) {
        match (self, src) {
            (Column::Int(d), Column::Int(s)) => d.push(s[row]),
            (Column::Float(d), Column::Float(s)) => d.push(s[row]),
            (Column::Str(d), Column::Str(s)) => Arc::make_mut(d).push(s[row].clone()),
            _ => panic!("push_from across mismatched column types"),
        }
    }

    /// Append a scalar [`Value`], coercing Int/Float as needed.
    ///
    /// # Panics
    /// Panics on NULL or on string/number mismatch.
    pub fn push_value(&mut self, v: &Value) {
        match (self, v) {
            (Column::Int(d), Value::Int(i)) => d.push(*i),
            (Column::Int(d), Value::Float(f)) => d.push(*f as i64),
            (Column::Float(d), Value::Float(f)) => d.push(*f),
            (Column::Float(d), Value::Int(i)) => d.push(*i as f64),
            (Column::Str(d), Value::Str(s)) => Arc::make_mut(d).push(s.clone()),
            (col, v) => panic!("cannot push {v:?} into {col:?}"),
        }
    }

    /// Approximate in-memory byte size of the column data.
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
        }
    }

    /// Keep only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Column {
        match self {
            Column::Int(v) => Column::Int(
                v.iter()
                    .zip(mask)
                    .filter_map(|(x, &m)| m.then_some(*x))
                    .collect(),
            ),
            Column::Float(v) => Column::Float(
                v.iter()
                    .zip(mask)
                    .filter_map(|(x, &m)| m.then_some(*x))
                    .collect(),
            ),
            Column::Str(v) => Column::Str(Arc::new(
                v.iter()
                    .zip(mask)
                    .filter(|&(_, &m)| m)
                    .map(|(x, _)| x.clone())
                    .collect(),
            )),
        }
    }

    /// Approximate in-memory byte size the column *would* have after
    /// gathering `sel` — what [`Column::take_sel`] will allocate — computed
    /// without materializing anything. Lets the cost meter charge a
    /// selection-vector filter exactly what the materializing mask filter
    /// used to charge.
    pub fn byte_size_sel(&self, sel: &[u32]) -> usize {
        match self {
            Column::Int(_) | Column::Float(_) => sel.len() * 8,
            Column::Str(v) => sel.iter().map(|&i| v[i as usize].len() + 24).sum(),
        }
    }

    /// Gather rows by a selection vector of `u32` row indices (ascending by
    /// convention, though nothing here requires it). The narrow index type
    /// is the one filters produce: engine batches stay far below `u32::MAX`
    /// rows, and half-width indices halve the selection vector's footprint.
    pub fn take_sel(&self, sel: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Float(v) => Column::Float(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Str(v) => Column::Str(Arc::new(
                sel.iter().map(|&i| v[i as usize].clone()).collect(),
            )),
        }
    }

    /// Gather rows by index.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(Arc::new(indices.iter().map(|&i| v[i].clone()).collect())),
        }
    }

    /// Gather rows by index, emitting the type's default value (`0`, `0.0`,
    /// `""`) wherever the index is `usize::MAX`. Used to pad the build side
    /// of left joins for unmatched probe rows.
    pub fn take_with_default(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(
                indices
                    .iter()
                    .map(|&i| if i == usize::MAX { 0 } else { v[i] })
                    .collect(),
            ),
            Column::Float(v) => Column::Float(
                indices
                    .iter()
                    .map(|&i| if i == usize::MAX { 0.0 } else { v[i] })
                    .collect(),
            ),
            Column::Str(v) => Column::Str(Arc::new(
                indices
                    .iter()
                    .map(|&i| {
                        if i == usize::MAX {
                            String::new()
                        } else {
                            v[i].clone()
                        }
                    })
                    .collect(),
            )),
        }
    }
}

/// A named set of equal-length columns — the unit of data flow between
/// operators and the storage format of tables and materialized views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordBatch {
    /// Column names, parallel to `columns`. Names produced by scans are
    /// qualified (`alias.column`).
    pub names: Vec<String>,
    /// Column data, all of equal length.
    pub columns: Vec<Column>,
}

impl RecordBatch {
    /// Empty batch with no columns.
    pub fn empty() -> RecordBatch {
        RecordBatch {
            names: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// Number of rows (0 for a column-less batch).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Column data by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Total approximate byte size of all columns.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Row `i` rendered as values, for tests and display.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> RecordBatch {
        RecordBatch {
            names: vec!["a.id".into(), "a.name".into()],
            columns: vec![
                Column::Int(vec![1, 2, 3]),
                Column::str(vec!["x".into(), "y".into(), "z".into()]),
            ],
        }
    }

    #[test]
    fn filter_keeps_masked_rows() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        assert_eq!(
            c.filter(&[true, false, true, false]),
            Column::Int(vec![10, 30])
        );
    }

    #[test]
    fn take_gathers_with_repeats() {
        let c = Column::str(vec!["a".into(), "b".into()]);
        assert_eq!(
            c.take(&[1, 1, 0]),
            Column::str(vec!["b".into(), "b".into(), "a".into()])
        );
    }

    #[test]
    fn take_sel_matches_take() {
        let c = Column::str(vec!["a".into(), "bb".into(), "ccc".into()]);
        assert_eq!(c.take_sel(&[2, 0]), c.take(&[2, 0]));
        let f = Column::Float(vec![1.5, 2.5, 3.5]);
        assert_eq!(f.take_sel(&[1]), Column::Float(vec![2.5]));
        assert_eq!(f.take_sel(&[]), Column::Float(vec![]));
    }

    #[test]
    fn byte_size_sel_predicts_take_sel_footprint() {
        let c = Column::str(vec!["a".into(), "bb".into(), "ccc".into()]);
        let sel = [0u32, 2];
        assert_eq!(c.byte_size_sel(&sel), c.take_sel(&sel).byte_size());
        let i = Column::Int(vec![7, 8, 9]);
        assert_eq!(i.byte_size_sel(&sel), i.take_sel(&sel).byte_size());
    }

    #[test]
    fn byte_size_counts_string_payload() {
        let c = Column::str(vec!["abcd".into()]);
        assert_eq!(c.byte_size(), 4 + 24);
        assert_eq!(Column::Int(vec![1, 2]).byte_size(), 16);
    }

    #[test]
    fn batch_lookup_by_name() {
        let b = batch();
        assert_eq!(b.column_index("a.name"), Some(1));
        assert!(b.column("missing").is_none());
        assert_eq!(b.num_rows(), 3);
    }

    #[test]
    fn push_value_coerces_numerics() {
        let mut c = Column::Float(vec![]);
        c.push_value(&Value::Int(3));
        assert_eq!(c, Column::Float(vec![3.0]));
    }

    #[test]
    #[should_panic(expected = "cannot push")]
    fn push_value_rejects_type_mismatch() {
        let mut c = Column::Int(vec![]);
        c.push_value(&Value::Str("no".into()));
    }
}
