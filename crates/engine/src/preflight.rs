//! Pluggable plan-verification gate run before executor dispatch.
//!
//! The full schema verifier lives in `av-analyze`, which sits *above* this
//! crate in the dependency DAG (it also drives workload-wide verification
//! through `av-workload`). The executor therefore cannot call it directly;
//! instead it calls whatever function has been installed here. `av-core`
//! installs the `av-analyze` verifier in debug builds, so every plan the
//! end-to-end system executes is schema-checked first, while release
//! binaries and crates that never install a gate pay nothing.

use crate::catalog::Catalog;
use crate::error::EngineError;
use av_plan::PlanNode;
use std::sync::OnceLock;

/// A verifier: inspects a plan against the catalog before execution,
/// returning a human-readable diagnostic on rejection.
pub type PreflightFn = fn(&Catalog, &PlanNode) -> Result<(), String>;

static GATE: OnceLock<PreflightFn> = OnceLock::new();

/// Install a process-wide preflight verifier. The first installation wins;
/// returns `true` iff this call installed the gate (later calls are no-ops
/// returning `false`, so repeated installation is harmless).
pub fn install_preflight(f: PreflightFn) -> bool {
    GATE.set(f).is_ok()
}

/// True iff a verifier has been installed.
pub fn preflight_installed() -> bool {
    GATE.get().is_some()
}

/// Run the installed verifier, if any.
pub(crate) fn check(catalog: &Catalog, plan: &PlanNode) -> Result<(), EngineError> {
    if let Some(f) = GATE.get() {
        f(catalog, plan).map_err(EngineError::Preflight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;
    use crate::catalog::Table;
    use crate::exec::Executor;
    use crate::meter::Pricing;
    use av_plan::PlanBuilder;

    /// The gate is process-wide and unit tests share one process, so the
    /// test gate only rejects a sentinel table name — every other plan in
    /// this test binary passes through untouched.
    fn reject_sentinel(_: &Catalog, plan: &PlanNode) -> Result<(), String> {
        let mut hit = false;
        plan.visit_preorder(&mut |n| {
            if let PlanNode::TableScan { table, .. } = n {
                hit |= table == "preflight_sentinel";
            }
        });
        if hit {
            Err("rejected by test gate".into())
        } else {
            Ok(())
        }
    }

    #[test]
    fn installed_gate_runs_before_dispatch() {
        assert!(install_preflight(reject_sentinel));
        assert!(!install_preflight(reject_sentinel), "second install is a no-op");
        assert!(preflight_installed());

        let mut cat = Catalog::new();
        cat.add_table(
            Table::new("preflight_sentinel", vec![("x", Column::Int(vec![1]))]).expect("valid"),
        )
        .expect("ok");
        let plan = PlanBuilder::scan("preflight_sentinel", "a").build();
        let err = Executor::new(&cat, Pricing::paper_defaults())
            .run(&plan)
            .expect_err("gate rejects");
        assert!(matches!(err, EngineError::Preflight(_)), "got {err:?}");

        // Plans not matching the sentinel still execute.
        cat.add_table(Table::new("t", vec![("x", Column::Int(vec![1]))]).expect("valid"))
            .expect("ok");
        let ok = PlanBuilder::scan("t", "a").build();
        assert!(Executor::new(&cat, Pricing::paper_defaults()).run(&ok).is_ok());
    }
}
