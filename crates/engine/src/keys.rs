//! Interned fixed-width join/group keys.
//!
//! Hashing a `Vec<Value>` per row (the executor's original key
//! representation) allocates a vector and clones every string cell on every
//! row. This module instead encodes each key column into one `u64` *code*
//! per row such that two rows carry equal codes iff their key tuples are
//! equal under the engine's grouping equality (`Value::total_cmp ==
//! Equal`), then folds multi-column codes into a single `u64` by pairwise
//! interning. Hash tables downstream are plain `HashMap<u64, _>` — no
//! per-row allocation, one integer hash per probe.
//!
//! Encodings per column-type pairing:
//! - `Int` vs `Int`: the raw `i64` bit pattern (exact);
//! - any pairing involving `Float`: `(v as f64).to_bits()` — exact for
//!   floats under `total_cmp` (IEEE total order ⇔ bit identity), and it
//!   makes `Int(2)` meet `Float(2.0)` just like `Value` equality does.
//!   Integers beyond 2^53 that collide in `f64` merge here; the legacy
//!   `Vec<Value>` path left their lookup order unspecified, so this corner
//!   is now strictly better defined;
//! - `Str` vs `Str`: dictionary ids handed out by [`KeyInterner`]. The
//!   build/owner side inserts; probe sides only look up, and a miss means
//!   the row cannot match any build row;
//! - `Str` vs numeric: never equal — callers short-circuit the join.

use crate::batch::Column;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for keys that are already well-mixed integer codes
/// (interned key codes, fingerprints). SipHash — `HashMap`'s default —
/// burns a large share of join/aggregate time for zero benefit here: codes
/// are not attacker-controlled. One `wrapping_mul` by a golden-ratio odd
/// constant plus an xor-shift gives well-distributed low bits (hashbrown
/// indexes with them) at a fraction of the cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct CodeHasher(u64);

impl Hasher for CodeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer fields (FNV-1a); integer keys use the
        // specialized methods below.
        let mut h = self.0 ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, n: u64) {
        let h = (self.0.rotate_left(32) ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 29);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `HashMap` keyed by integer codes, using [`CodeHasher`].
pub type CodeMap<K, V> = HashMap<K, V, BuildHasherDefault<CodeHasher>>;

/// Dictionaries shared by every key column of one operator: string → id and
/// (code, code) → combined id for multi-column keys. Ids are dense, so a
/// combined key always stays one `u64` regardless of column count.
#[derive(Debug, Default)]
pub struct KeyInterner {
    strs: HashMap<String, u64>,
    pairs: CodeMap<(u64, u64), u64>,
    /// Running approximate heap footprint, maintained on insert so metering
    /// never has to walk the maps.
    bytes: usize,
}

impl KeyInterner {
    pub fn new() -> KeyInterner {
        KeyInterner::default()
    }

    fn str_insert(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.strs.get(s) {
            return id;
        }
        let id = self.strs.len() as u64;
        self.bytes += s.len() + 56; // owned string + entry overhead
        self.strs.insert(s.to_string(), id);
        id
    }

    fn str_get(&self, s: &str) -> Option<u64> {
        self.strs.get(s).copied()
    }

    fn pair_insert(&mut self, a: u64, b: u64) -> u64 {
        if let Some(&id) = self.pairs.get(&(a, b)) {
            return id;
        }
        let id = self.pairs.len() as u64;
        self.bytes += 32; // two-u64 key + id + entry overhead
        self.pairs.insert((a, b), id);
        id
    }

    fn pair_get(&self, a: u64, b: u64) -> Option<u64> {
        self.pairs.get(&(a, b)).copied()
    }

    /// Approximate heap bytes held by the dictionaries (for cost metering).
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }
}

/// One key column prepared for encoding.
#[derive(Debug, Clone, Copy)]
pub enum KeyCol<'a> {
    /// Exact `i64` bit-pattern codes.
    Int(&'a [i64]),
    /// `f64` total-order bit codes.
    Float(&'a [f64]),
    /// Integer column keyed against a float column: numeric (`f64`) codes.
    IntAsFloat(&'a [i64]),
    /// String column: dictionary codes.
    Str(&'a [String]),
}

impl<'a> KeyCol<'a> {
    /// View a column as a key column. `as_float` forces numeric (`f64`)
    /// codes, required when the opposite join side is a float column.
    pub fn of(col: &'a Column, as_float: bool) -> KeyCol<'a> {
        match col {
            Column::Int(d) if as_float => KeyCol::IntAsFloat(d),
            Column::Int(d) => KeyCol::Int(d),
            Column::Float(d) => KeyCol::Float(d),
            Column::Str(d) => KeyCol::Str(d),
        }
    }

    fn code_insert(&self, row: usize, interner: &mut KeyInterner) -> u64 {
        match self {
            KeyCol::Int(d) => d[row] as u64,
            KeyCol::Float(d) => d[row].to_bits(),
            KeyCol::IntAsFloat(d) => (d[row] as f64).to_bits(),
            KeyCol::Str(d) => interner.str_insert(&d[row]),
        }
    }

    fn code_get(&self, row: usize, interner: &KeyInterner) -> Option<u64> {
        match self {
            KeyCol::Int(d) => Some(d[row] as u64),
            KeyCol::Float(d) => Some(d[row].to_bits()),
            KeyCol::IntAsFloat(d) => Some((d[row] as f64).to_bits()),
            KeyCol::Str(d) => interner.str_get(&d[row]),
        }
    }
}

/// Encode every row of the owning side (hash-table build side, or the whole
/// batch for aggregation), inserting fresh values into the interner. An
/// empty column list encodes every row to the same key (cross join / global
/// group).
pub fn encode_rows(cols: &[KeyCol<'_>], rows: usize, interner: &mut KeyInterner) -> Vec<u64> {
    let mut out = Vec::with_capacity(rows);
    for row in 0..rows {
        out.push(match cols.split_first() {
            None => 0,
            Some((first, rest)) => {
                let mut acc = first.code_insert(row, interner);
                for c in rest {
                    let code = c.code_insert(row, interner);
                    acc = interner.pair_insert(acc, code);
                }
                acc
            }
        });
    }
    out
}

/// Encode one probe-side row against a frozen interner. `None` means some
/// component (a string, or a column combination) never occurred on the build
/// side, so the row cannot match.
pub fn probe_code(cols: &[KeyCol<'_>], row: usize, interner: &KeyInterner) -> Option<u64> {
    let (first, rest) = match cols.split_first() {
        None => return Some(0),
        Some(parts) => parts,
    };
    let mut acc = first.code_get(row, interner)?;
    for c in rest {
        let code = c.code_get(row, interner)?;
        acc = interner.pair_get(acc, code)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_codes_are_exact() {
        let col = Column::Int(vec![i64::MIN, -1, 0, 1, i64::MAX]);
        let mut it = KeyInterner::new();
        let codes = encode_rows(&[KeyCol::of(&col, false)], 5, &mut it);
        let distinct: std::collections::HashSet<u64> = codes.iter().copied().collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn int_meets_float_numerically() {
        let ints = Column::Int(vec![2, 3]);
        let floats = Column::Float(vec![2.0, 4.0]);
        let mut it = KeyInterner::new();
        let build = encode_rows(&[KeyCol::of(&ints, true)], 2, &mut it);
        let probe0 = probe_code(&[KeyCol::of(&floats, false)], 0, &it).unwrap();
        let probe1 = probe_code(&[KeyCol::of(&floats, false)], 1, &it).unwrap();
        assert_eq!(probe0, build[0], "Int(2) must meet Float(2.0)");
        assert!(!build.contains(&probe1), "Float(4.0) matches nothing");
    }

    #[test]
    fn probe_misses_unseen_strings() {
        let build = Column::str(vec!["a".into(), "b".into(), "a".into()]);
        let probe = Column::str(vec!["b".into(), "z".into()]);
        let mut it = KeyInterner::new();
        let bcodes = encode_rows(&[KeyCol::of(&build, false)], 3, &mut it);
        assert_eq!(bcodes[0], bcodes[2], "repeated strings share one id");
        let pcols = [KeyCol::of(&probe, false)];
        assert_eq!(probe_code(&pcols, 0, &it), Some(bcodes[1]));
        assert_eq!(probe_code(&pcols, 1, &it), None, "unseen string cannot match");
    }

    #[test]
    fn multi_column_keys_separate_and_match() {
        let a = Column::Int(vec![1, 1, 2]);
        let b = Column::str(vec!["x".into(), "y".into(), "x".into()]);
        let mut it = KeyInterner::new();
        let cols = [KeyCol::of(&a, false), KeyCol::of(&b, false)];
        let codes = encode_rows(&cols, 3, &mut it);
        assert_ne!(codes[0], codes[1]);
        assert_ne!(codes[0], codes[2]);
        assert_ne!(codes[1], codes[2]);
        // Probing an existing combination finds the same code; a fresh
        // combination of seen components misses at the pair level.
        assert_eq!(probe_code(&cols, 0, &it), Some(codes[0]));
        let a2 = Column::Int(vec![2]);
        let b2 = Column::str(vec!["y".into()]);
        let fresh = [KeyCol::of(&a2, false), KeyCol::of(&b2, false)];
        assert_eq!(probe_code(&fresh, 0, &it), None);
    }

    #[test]
    fn empty_key_list_is_a_single_group() {
        let mut it = KeyInterner::new();
        assert_eq!(encode_rows(&[], 3, &mut it), vec![0, 0, 0]);
        assert_eq!(probe_code(&[], 0, &it), Some(0));
    }

    #[test]
    fn interner_tracks_bytes() {
        let mut it = KeyInterner::new();
        assert_eq!(it.approx_bytes(), 0);
        it.str_insert("hello");
        let after_one = it.approx_bytes();
        assert!(after_one > 0);
        it.str_insert("hello"); // repeat: no growth
        assert_eq!(it.approx_bytes(), after_one);
        it.pair_insert(0, 1);
        assert!(it.approx_bytes() > after_one);
    }
}
