//! Cost metering and the cloud pricing model (Definitions 1–3).
//!
//! The executor counts abstract work units (rows scanned, predicate
//! evaluations, hash operations, bytes of intermediate state). The meter
//! converts those into resource usage — CPU core-minutes and GB-minutes of
//! memory — and then into dollars via the pricing constants of the paper's
//! Table II: α = 1.67e-5 $/GB (storage), β = 1e-1 $/(core·min),
//! γ = 1e-3 $/(GB·min).

use serde::{Deserialize, Serialize};

/// Abstract CPU operations a simulated core performs per minute. Calibrated
/// so the synthetic JOB-scale workload lands in the paper's per-query cost
/// range (cents per query).
pub const OPS_PER_CORE_MINUTE: f64 = 2.0e6;

/// Pricing constants (α, β, γ) of the paper's cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pricing {
    /// Storage, $/GB — used for view space overhead `A_α`.
    pub alpha: f64,
    /// CPU, $/(core·minute) — `A_β`.
    pub beta: f64,
    /// Memory, $/(GB·minute) — `A_γ`.
    pub gamma: f64,
}

impl Pricing {
    /// The defaults of the paper's Table II.
    pub fn paper_defaults() -> Pricing {
        Pricing {
            alpha: 1.67e-5,
            beta: 1e-1,
            gamma: 1e-3,
        }
    }

    /// Storage fee `A_α(v) = α · bytes`.
    pub fn storage_dollars(&self, bytes: usize) -> f64 {
        self.alpha * bytes as f64 / 1e9
    }

    /// Computation fee `A_{β,γ} = β·cpu + γ·mem` for a usage record.
    pub fn compute_dollars(&self, usage: &ResourceUsage) -> f64 {
        self.beta * usage.cpu_core_minutes + self.gamma * usage.mem_gb_minutes
    }
}

/// Resource usage of one plan execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// CPU usage in core-minutes.
    pub cpu_core_minutes: f64,
    /// Memory usage in GB-minutes.
    pub mem_gb_minutes: f64,
    /// Wall-clock latency in seconds (single simulated core).
    pub latency_seconds: f64,
}

/// Final execution report: usage plus priced cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    pub usage: ResourceUsage,
    /// `A_{β,γ}` in dollars.
    pub cost_dollars: f64,
    /// Bytes of the final result (for view storage overhead).
    pub output_bytes: usize,
    /// Rows of the final result.
    pub output_rows: usize,
}

/// Accumulates abstract work while an operator tree executes.
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    /// Abstract CPU operations.
    ops: f64,
    /// Currently-held intermediate bytes.
    live_bytes: usize,
    /// High-water mark of `live_bytes`.
    peak_bytes: usize,
    /// Running total of all allocations (never decremented). Operator spans
    /// report byte throughput as deltas of this counter, reusing the sizes
    /// operators already computed for metering instead of re-walking their
    /// output batches.
    allocated_bytes: usize,
}

impl CostMeter {
    /// Fresh meter.
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// Charge `n` abstract CPU operations.
    pub fn charge_ops(&mut self, n: usize) {
        self.ops += n as f64;
    }

    /// Charge CPU proportional to rows × per-row weight.
    pub fn charge_rows(&mut self, rows: usize, weight: usize) {
        self.ops += (rows * weight.max(1)) as f64;
    }

    /// Record allocation of intermediate state.
    pub fn alloc_bytes(&mut self, bytes: usize) {
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.allocated_bytes += bytes;
    }

    /// Record release of intermediate state.
    pub fn free_bytes(&mut self, bytes: usize) {
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
    }

    /// Abstract operations charged so far.
    pub fn ops(&self) -> f64 {
        self.ops
    }

    /// Total bytes allocated so far (cumulative, unlike [`peak_bytes`]).
    ///
    /// [`peak_bytes`]: CostMeter::peak_bytes
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// Peak intermediate bytes observed.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Convert counters into resource usage: the query runs on one simulated
    /// core, so duration = ops / OPS_PER_CORE_MINUTE, and memory GB-minutes
    /// = peak GB × duration.
    pub fn usage(&self) -> ResourceUsage {
        let duration_min = self.ops / OPS_PER_CORE_MINUTE;
        let peak_gb = self.peak_bytes as f64 / 1e9;
        ResourceUsage {
            cpu_core_minutes: duration_min,
            mem_gb_minutes: peak_gb * duration_min,
            latency_seconds: duration_min * 60.0,
        }
    }

    /// Finish metering and price the run.
    pub fn report(&self, pricing: &Pricing, output_bytes: usize, output_rows: usize) -> ExecutionReport {
        let usage = self.usage();
        ExecutionReport {
            usage,
            cost_dollars: pricing.compute_dollars(&usage),
            output_bytes,
            output_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = CostMeter::new();
        m.alloc_bytes(100);
        m.alloc_bytes(50);
        m.free_bytes(120);
        m.alloc_bytes(10);
        assert_eq!(m.peak_bytes(), 150);
    }

    #[test]
    fn usage_scales_linearly_with_ops() {
        let mut m = CostMeter::new();
        m.charge_ops(OPS_PER_CORE_MINUTE as usize);
        let u = m.usage();
        assert!((u.cpu_core_minutes - 1.0).abs() < 1e-9);
        assert!((u.latency_seconds - 60.0).abs() < 1e-6);
    }

    #[test]
    fn pricing_defaults_match_table_ii() {
        let p = Pricing::paper_defaults();
        assert_eq!(p.alpha, 1.67e-5);
        assert_eq!(p.beta, 1e-1);
        assert_eq!(p.gamma, 1e-3);
    }

    #[test]
    fn compute_dollars_combines_beta_and_gamma() {
        let p = Pricing {
            alpha: 0.0,
            beta: 2.0,
            gamma: 3.0,
        };
        let u = ResourceUsage {
            cpu_core_minutes: 1.5,
            mem_gb_minutes: 0.5,
            latency_seconds: 0.0,
        };
        assert!((p.compute_dollars(&u) - (2.0 * 1.5 + 3.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn storage_dollars_per_gb() {
        let p = Pricing::paper_defaults();
        let one_gb = 1_000_000_000;
        assert!((p.storage_dollars(one_gb) - 1.67e-5).abs() < 1e-18);
    }

    #[test]
    fn charge_rows_respects_min_weight() {
        let mut m = CostMeter::new();
        m.charge_rows(10, 0); // weight clamped to 1
        assert_eq!(m.ops(), 10.0);
    }
}
