//! Engine error type.

use std::fmt;

/// Errors raised while validating or executing a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Referenced table is not in the catalog.
    UnknownTable(String),
    /// Referenced column is not in scope.
    UnknownColumn(String),
    /// A table was constructed with columns of unequal length.
    RaggedColumns { table: String },
    /// A table/view name collides with an existing one.
    DuplicateTable(String),
    /// Aggregate over a non-numeric column where numbers are required.
    TypeError(String),
    /// An installed preflight verifier (see [`crate::preflight`]) rejected
    /// the plan before execution.
    Preflight(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            EngineError::RaggedColumns { table } => {
                write!(f, "columns of table {table} have unequal lengths")
            }
            EngineError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            EngineError::TypeError(m) => write!(f, "type error: {m}"),
            EngineError::Preflight(m) => write!(f, "plan rejected by preflight verifier: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}
