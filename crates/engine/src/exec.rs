//! Plan interpreter with cost metering.

use crate::batch::{Column, RecordBatch};
use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::meter::{CostMeter, ExecutionReport, Pricing};
use av_plan::{AggFunc, Expr, JoinType, PlanNode, Value};
use std::collections::HashMap;

/// Result of executing a plan: the data plus the priced execution report.
#[derive(Debug, Clone)]
pub struct ExecResult {
    pub batch: RecordBatch,
    pub report: ExecutionReport,
}

/// Executes logical plans against a catalog, metering cost.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    pricing: Pricing,
}

impl<'a> Executor<'a> {
    /// New executor over a catalog with a pricing model.
    pub fn new(catalog: &'a Catalog, pricing: Pricing) -> Executor<'a> {
        Executor { catalog, pricing }
    }

    /// Execute a plan, returning the result batch and its execution report.
    pub fn run(&self, plan: &PlanNode) -> Result<ExecResult, EngineError> {
        let mut meter = CostMeter::new();
        let batch = self.exec(plan, &mut meter)?;
        let report = meter.report(&self.pricing, batch.byte_size(), batch.num_rows());
        Ok(ExecResult { batch, report })
    }

    /// Execute and return only the cost in dollars (`A_{β,γ}`).
    pub fn cost(&self, plan: &PlanNode) -> Result<f64, EngineError> {
        Ok(self.run(plan)?.report.cost_dollars)
    }

    fn exec(&self, plan: &PlanNode, meter: &mut CostMeter) -> Result<RecordBatch, EngineError> {
        match plan {
            PlanNode::TableScan { table, alias } => self.exec_scan(table, alias, meter),
            PlanNode::Filter { input, predicate } => {
                let batch = self.exec(input, meter)?;
                exec_filter(batch, predicate, meter)
            }
            PlanNode::Project { input, exprs } => {
                let batch = self.exec(input, meter)?;
                exec_project(batch, exprs, meter)
            }
            PlanNode::Join {
                left,
                right,
                on,
                join_type,
            } => {
                let lb = self.exec(left, meter)?;
                let rb = self.exec(right, meter)?;
                exec_join(lb, rb, on, *join_type, meter)
            }
            PlanNode::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let batch = self.exec(input, meter)?;
                exec_aggregate(batch, group_by, aggs, meter)
            }
        }
    }

    fn exec_scan(
        &self,
        table: &str,
        alias: &str,
        meter: &mut CostMeter,
    ) -> Result<RecordBatch, EngineError> {
        let t = self
            .catalog
            .table(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        // Scanning charges one op per cell plus a per-row dispatch cost.
        meter.charge_rows(t.row_count(), t.data.num_columns() + 1);
        meter.alloc_bytes(t.byte_size());
        let names = if alias.is_empty() {
            // Materialized-view scan: stored names are already qualified.
            t.column_names.clone()
        } else {
            t.column_names
                .iter()
                .map(|c| format!("{alias}.{c}"))
                .collect()
        };
        Ok(RecordBatch {
            names,
            columns: t.data.columns.clone(),
        })
    }
}

fn resolve_row<'b>(
    batch: &'b RecordBatch,
    row: usize,
) -> impl Fn(&str) -> Value + 'b {
    move |name: &str| match batch.column(name) {
        Some(c) => c.get(row),
        None => Value::Null,
    }
}

fn require_column(batch: &RecordBatch, name: &str) -> Result<usize, EngineError> {
    batch
        .column_index(name)
        .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))
}

fn exec_filter(
    batch: RecordBatch,
    predicate: &Expr,
    meter: &mut CostMeter,
) -> Result<RecordBatch, EngineError> {
    // Validate referenced columns exist to fail loudly rather than treating
    // typos as always-NULL.
    for c in predicate.referenced_columns() {
        require_column(&batch, &c)?;
    }
    let rows = batch.num_rows();
    let pred_weight = predicate.referenced_columns().len().max(1) * 2;
    meter.charge_rows(rows, pred_weight);

    let mut mask = vec![false; rows];
    for (i, m) in mask.iter_mut().enumerate() {
        *m = predicate.eval_bool(&resolve_row(&batch, i));
    }
    let in_bytes = batch.byte_size();
    let columns: Vec<Column> = batch.columns.iter().map(|c| c.filter(&mask)).collect();
    let out = RecordBatch {
        names: batch.names,
        columns,
    };
    meter.alloc_bytes(out.byte_size());
    meter.free_bytes(in_bytes);
    Ok(out)
}

fn exec_project(
    batch: RecordBatch,
    exprs: &[av_plan::ProjExpr],
    meter: &mut CostMeter,
) -> Result<RecordBatch, EngineError> {
    let rows = batch.num_rows();
    meter.charge_rows(rows, exprs.len().max(1));

    let mut names = Vec::with_capacity(exprs.len());
    let mut columns = Vec::with_capacity(exprs.len());
    for p in exprs {
        names.push(p.alias.clone());
        match &p.expr {
            // Fast path: plain column forwarding.
            Expr::Column(c) => {
                let idx = require_column(&batch, c)?;
                columns.push(batch.columns[idx].clone());
            }
            expr => {
                for c in expr.referenced_columns() {
                    require_column(&batch, &c)?;
                }
                // Computed column: evaluate per row; infer output type from
                // the first row (empty input defaults to Float).
                let mut vals = Vec::with_capacity(rows);
                for i in 0..rows {
                    vals.push(expr.eval(&resolve_row(&batch, i)));
                }
                columns.push(values_to_column(&vals));
            }
        }
    }
    let in_bytes = batch.byte_size();
    let out = RecordBatch { names, columns };
    meter.alloc_bytes(out.byte_size());
    meter.free_bytes(in_bytes);
    Ok(out)
}

fn values_to_column(vals: &[Value]) -> Column {
    let mut col = match vals.iter().find(|v| !v.is_null()) {
        Some(Value::Int(_)) => Column::Int(Vec::with_capacity(vals.len())),
        Some(Value::Str(_)) => Column::Str(Vec::with_capacity(vals.len())),
        _ => Column::Float(Vec::with_capacity(vals.len())),
    };
    for v in vals {
        // NULLs (e.g. division by zero) are stored as a zero of the column
        // type; the engine's stored data is NULL-free by construction.
        match (&mut col, v) {
            (c, v) if !v.is_null() => c.push_value(v),
            (Column::Int(d), _) => d.push(0),
            (Column::Float(d), _) => d.push(0.0),
            (Column::Str(d), _) => d.push(String::new()),
        }
    }
    col
}

fn exec_join(
    left: RecordBatch,
    right: RecordBatch,
    on: &[(String, String)],
    join_type: JoinType,
    meter: &mut CostMeter,
) -> Result<RecordBatch, EngineError> {
    let lkeys: Vec<usize> = on
        .iter()
        .map(|(l, _)| require_column(&left, l))
        .collect::<Result<_, _>>()?;
    let rkeys: Vec<usize> = on
        .iter()
        .map(|(_, r)| require_column(&right, r))
        .collect::<Result<_, _>>()?;

    // Build a hash table on the smaller side for CPU fairness, but always
    // build on the right for deterministic output order; charge accordingly.
    let build_rows = right.num_rows();
    let probe_rows = left.num_rows();
    meter.charge_rows(build_rows, 4 * on.len().max(1)); // hash + insert
    meter.charge_rows(probe_rows, 4 * on.len().max(1)); // hash + probe

    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build_rows);
    for i in 0..build_rows {
        let key: Vec<Value> = rkeys.iter().map(|&k| right.columns[k].get(i)).collect();
        table.entry(key).or_default().push(i);
    }
    meter.alloc_bytes(build_rows * 16 * on.len().max(1));

    let mut lidx = Vec::new();
    let mut ridx: Vec<Option<usize>> = Vec::new();
    for i in 0..probe_rows {
        let key: Vec<Value> = lkeys.iter().map(|&k| left.columns[k].get(i)).collect();
        match table.get(&key) {
            Some(matches) => {
                for &j in matches {
                    lidx.push(i);
                    ridx.push(Some(j));
                }
            }
            None => {
                if join_type == JoinType::Left {
                    lidx.push(i);
                    ridx.push(None);
                }
            }
        }
    }
    meter.charge_rows(lidx.len(), left.num_columns() + right.num_columns());

    let mut names = left.names.clone();
    names.extend(right.names.iter().cloned());
    let mut columns: Vec<Column> = left.columns.iter().map(|c| c.take(&lidx)).collect();
    for c in &right.columns {
        // Left-join misses materialize as type-default values (no NULL
        // storage); inner joins never hit the None branch.
        let mut out = c.empty_like();
        for r in &ridx {
            match r {
                Some(j) => out.push_from(c, *j),
                None => match &mut out {
                    Column::Int(d) => d.push(0),
                    Column::Float(d) => d.push(0.0),
                    Column::Str(d) => d.push(String::new()),
                },
            }
        }
        columns.push(out);
    }

    let in_bytes = left.byte_size() + right.byte_size();
    let out = RecordBatch { names, columns };
    meter.alloc_bytes(out.byte_size());
    meter.free_bytes(in_bytes + build_rows * 16 * on.len().max(1));
    Ok(out)
}

fn exec_aggregate(
    batch: RecordBatch,
    group_by: &[String],
    aggs: &[av_plan::AggExpr],
    meter: &mut CostMeter,
) -> Result<RecordBatch, EngineError> {
    let gidx: Vec<usize> = group_by
        .iter()
        .map(|g| require_column(&batch, g))
        .collect::<Result<_, _>>()?;
    let ainput: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.input {
            Some(c) => require_column(&batch, c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;

    let rows = batch.num_rows();
    meter.charge_rows(rows, (group_by.len() + aggs.len()).max(1) * 2);

    /// Running state of one aggregate within one group.
    #[derive(Clone)]
    struct AggState {
        count: usize,
        sum: f64,
        min: Option<Value>,
        max: Option<Value>,
    }
    impl AggState {
        fn new() -> AggState {
            AggState {
                count: 0,
                sum: 0.0,
                min: None,
                max: None,
            }
        }
        fn update(&mut self, v: Option<Value>) {
            self.count += 1;
            if let Some(v) = v {
                if let Some(x) = v.as_f64() {
                    self.sum += x;
                }
                if self.min.as_ref().map(|m| v.total_cmp(m).is_lt()).unwrap_or(true) {
                    self.min = Some(v.clone());
                }
                if self.max.as_ref().map(|m| v.total_cmp(m).is_gt()).unwrap_or(true) {
                    self.max = Some(v);
                }
            }
        }
    }

    // Group keys in first-seen order for deterministic output.
    let mut key_order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();

    for i in 0..rows {
        let key: Vec<Value> = gidx.iter().map(|&k| batch.columns[k].get(i)).collect();
        let slot = *groups.entry(key.clone()).or_insert_with(|| {
            key_order.push(key);
            states.push(vec![AggState::new(); aggs.len()]);
            states.len() - 1
        });
        for (a, ai) in ainput.iter().enumerate() {
            let v = ai.map(|idx| batch.columns[idx].get(i));
            states[slot][a].update(v);
        }
    }

    // A global aggregate (no GROUP BY) over empty input still yields one row.
    if group_by.is_empty() && states.is_empty() {
        key_order.push(Vec::new());
        states.push(vec![AggState::new(); aggs.len()]);
    }

    let n_groups = states.len();
    meter.alloc_bytes(n_groups * (group_by.len() + aggs.len()).max(1) * 16);

    let mut names: Vec<String> = group_by.to_vec();
    names.extend(aggs.iter().map(|a| a.output.clone()));

    let mut columns: Vec<Column> = Vec::with_capacity(names.len());
    // Group-key columns.
    for (k, &src) in gidx.iter().enumerate() {
        let mut col = batch.columns[src].empty_like();
        for key in &key_order {
            col.push_value(&key[k]);
        }
        columns.push(col);
    }
    // Aggregate columns.
    for (a, agg) in aggs.iter().enumerate() {
        let vals: Vec<Value> = states
            .iter()
            .map(|st| {
                let s = &st[a];
                match agg.func {
                    AggFunc::Count => Value::Int(s.count as i64),
                    AggFunc::Sum => Value::Float(s.sum),
                    AggFunc::Avg => {
                        if s.count == 0 {
                            Value::Float(0.0)
                        } else {
                            Value::Float(s.sum / s.count as f64)
                        }
                    }
                    AggFunc::Min => s.min.clone().unwrap_or(Value::Int(0)),
                    AggFunc::Max => s.max.clone().unwrap_or(Value::Int(0)),
                }
            })
            .collect();
        columns.push(values_to_column(&vals));
    }

    let in_bytes = batch.byte_size();
    let out = RecordBatch { names, columns };
    meter.alloc_bytes(out.byte_size());
    meter.free_bytes(in_bytes);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Table;
    use av_plan::{AggExpr, CmpOp, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "orders",
                vec![
                    ("id", Column::Int((0..100).collect())),
                    ("cust", Column::Int((0..100).map(|i| i % 10).collect())),
                    (
                        "amount",
                        Column::Float((0..100).map(|i| i as f64).collect()),
                    ),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c.add_table(
            Table::new(
                "customers",
                vec![
                    ("id", Column::Int((0..10).collect())),
                    (
                        "tier",
                        Column::Str((0..10).map(|i| if i < 3 { "gold" } else { "basic" }.into()).collect()),
                    ),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c
    }

    fn run(c: &Catalog, plan: &PlanNode) -> ExecResult {
        Executor::new(c, Pricing::paper_defaults())
            .run(plan)
            .expect("plan executes")
    }

    #[test]
    fn scan_qualifies_columns_with_alias() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o").build();
        let r = run(&c, &plan);
        assert_eq!(r.batch.names, vec!["o.id", "o.cust", "o.amount"]);
        assert_eq!(r.batch.num_rows(), 100);
    }

    #[test]
    fn filter_selects_matching_rows() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .filter(Expr::col("o.cust").eq(Expr::int(3)))
            .build();
        assert_eq!(run(&c, &plan).batch.num_rows(), 10);
    }

    #[test]
    fn scan_of_unknown_table_errors() {
        let c = catalog();
        let plan = PlanBuilder::scan("missing", "m").build();
        let err = Executor::new(&c, Pricing::paper_defaults())
            .run(&plan)
            .expect_err("unknown table");
        assert_eq!(err, EngineError::UnknownTable("missing".into()));
    }

    #[test]
    fn join_on_unknown_key_errors() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .join(PlanBuilder::scan("customers", "c"), &[("o.cust", "c.zzz")])
            .build();
        let err = Executor::new(&c, Pricing::paper_defaults())
            .run(&plan)
            .expect_err("unknown join key");
        assert_eq!(err, EngineError::UnknownColumn("c.zzz".into()));
    }

    #[test]
    fn filter_on_unknown_column_errors() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .filter(Expr::col("o.nope").eq(Expr::int(3)))
            .build();
        let err = Executor::new(&c, Pricing::paper_defaults())
            .run(&plan)
            .expect_err("unknown column");
        assert_eq!(err, EngineError::UnknownColumn("o.nope".into()));
    }

    #[test]
    fn inner_join_matches_keys() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .join(PlanBuilder::scan("customers", "c"), &[("o.cust", "c.id")])
            .build();
        let r = run(&c, &plan);
        assert_eq!(r.batch.num_rows(), 100); // every order has a customer
        assert_eq!(r.batch.num_columns(), 5);
    }

    #[test]
    fn join_filters_compose() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .join(
                PlanBuilder::scan("customers", "c")
                    .filter(Expr::col("c.tier").eq(Expr::str("gold"))),
                &[("o.cust", "c.id")],
            )
            .build();
        // gold customers are ids 0,1,2 → 30 orders
        assert_eq!(run(&c, &plan).batch.num_rows(), 30);
    }

    #[test]
    fn left_join_keeps_unmatched_probe_rows() {
        let mut c = Catalog::new();
        c.add_table(
            Table::new("l", vec![("k", Column::Int(vec![1, 2, 3]))]).expect("ok"),
        )
        .expect("ok");
        c.add_table(Table::new("r", vec![("k", Column::Int(vec![2]))]).expect("ok"))
            .expect("ok");
        let plan = PlanBuilder::scan("l", "l")
            .join_typed(
                PlanBuilder::scan("r", "r"),
                &[("l.k", "r.k")],
                JoinType::Left,
            )
            .build();
        assert_eq!(run(&c, &plan).batch.num_rows(), 3);
    }

    #[test]
    fn aggregate_count_and_sum() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o").aggregate(
            &["o.cust"],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    input: None,
                    output: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    input: Some("o.amount".into()),
                    output: "total".into(),
                },
            ],
        );
        let r = run(&c, &plan.build());
        assert_eq!(r.batch.num_rows(), 10);
        // Group for cust=0: ids 0,10,...,90 → count 10, sum 450
        let cust = r.batch.column("o.cust").expect("col");
        let n = r.batch.column("n").expect("col");
        let total = r.batch.column("total").expect("col");
        let row0 = (0..10)
            .find(|&i| cust.get(i) == Value::Int(0))
            .expect("group exists");
        assert_eq!(n.get(row0), Value::Int(10));
        assert_eq!(total.get(row0), Value::Float(450.0));
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .filter(Expr::col("o.id").cmp(CmpOp::Lt, Expr::int(0)))
            .count_star(&[], "n")
            .build();
        let r = run(&c, &plan);
        assert_eq!(r.batch.num_rows(), 1);
        assert_eq!(r.batch.column("n").expect("col").get(0), Value::Int(0));
    }

    #[test]
    fn min_max_avg_aggregates() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o").aggregate(
            &[],
            vec![
                AggExpr {
                    func: AggFunc::Min,
                    input: Some("o.amount".into()),
                    output: "lo".into(),
                },
                AggExpr {
                    func: AggFunc::Max,
                    input: Some("o.amount".into()),
                    output: "hi".into(),
                },
                AggExpr {
                    func: AggFunc::Avg,
                    input: Some("o.amount".into()),
                    output: "mean".into(),
                },
            ],
        );
        let r = run(&c, &plan.build());
        assert_eq!(r.batch.column("lo").expect("col").get(0), Value::Float(0.0));
        assert_eq!(r.batch.column("hi").expect("col").get(0), Value::Float(99.0));
        assert_eq!(
            r.batch.column("mean").expect("col").get(0),
            Value::Float(49.5)
        );
    }

    #[test]
    fn computed_projection_evaluates_arithmetic() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o").project_exprs(vec![av_plan::ProjExpr {
            expr: Expr::Arith {
                op: av_plan::expr::ArithOp::Mul,
                left: Box::new(Expr::col("o.amount")),
                right: Box::new(Expr::int(2)),
            },
            alias: "double".into(),
        }]);
        let r = run(&c, &plan.build());
        assert_eq!(
            r.batch.column("double").expect("col").get(3),
            Value::Float(6.0)
        );
    }

    #[test]
    fn cost_grows_with_work() {
        let c = catalog();
        let cheap = PlanBuilder::scan("customers", "c").build();
        let pricey = PlanBuilder::scan("orders", "o")
            .join(PlanBuilder::scan("customers", "c"), &[("o.cust", "c.id")])
            .count_star(&["c.tier"], "n")
            .build();
        let rc = run(&c, &cheap);
        let rp = run(&c, &pricey);
        assert!(rp.report.cost_dollars > rc.report.cost_dollars);
        assert!(rp.report.usage.latency_seconds > 0.0);
    }

    #[test]
    fn deterministic_execution() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .count_star(&["o.cust"], "n")
            .build();
        let a = run(&c, &plan);
        let b = run(&c, &plan);
        assert_eq!(a.batch, b.batch);
        assert_eq!(a.report.cost_dollars, b.report.cost_dollars);
    }
}
