//! Plan interpreter with cost metering.
//!
//! The hot path is organised around three ideas (see DESIGN.md, "executor
//! internals"):
//!
//! - **Bound expressions** — column references are resolved to column
//!   indices once per operator ([`BoundExpr`]), never per row;
//! - **Interned keys** — join and group-by keys are encoded to fixed-width
//!   `u64` codes ([`crate::keys`]) instead of hashing `Vec<Value>` per row;
//! - **Selection vectors** — filters compile their predicates to typed
//!   kernels ([`crate::sel`]) and emit a vector of surviving row indices
//!   instead of materializing a filtered batch; stacked filters refine the
//!   selection, aggregates consume it in place, and rows are gathered once
//!   at the next join, computed projection, or the plan root. The old
//!   materializing mask path survives behind
//!   [`Executor::with_reference_kernels`] as the bitwise-equal baseline;
//! - **Deterministic chunked parallelism** — filter evaluation, join probe
//!   and partial aggregation run over fixed 1024-row chunks
//!   ([`crate::par`]), with per-chunk results (including any metered
//!   counts) merged in chunk order so batches *and* [`ExecutionReport`]s
//!   are bit-identical for every thread count.
//!
//! All cost charges are analytic functions of row counts applied on the
//! driving thread, so the meter never observes scheduling order.

use crate::batch::{Column, RecordBatch};
use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::keys::{self, KeyCol, KeyInterner};
use crate::meter::{CostMeter, ExecutionReport, Pricing};
use crate::par;
use crate::sel::{apply_ord, CompiledPred, SelBatch};
use av_plan::expr::ArithOp;
use av_trace::{SpanBuffer, Tracer};
use av_plan::{AggFunc, CmpOp, Expr, JoinType, PlanNode, Value};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;

/// Result of executing a plan: the data plus the priced execution report.
#[derive(Debug, Clone)]
pub struct ExecResult {
    pub batch: RecordBatch,
    pub report: ExecutionReport,
}

/// Executes logical plans against a catalog, metering cost.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    pricing: Pricing,
    par: par::Par,
    tracer: Tracer,
    reference_kernels: bool,
}

impl<'a> Executor<'a> {
    /// New executor over a catalog with a pricing model, using one worker
    /// per available core. Tracing is off by default (near-zero overhead);
    /// attach a live tracer with [`Executor::with_tracer`].
    pub fn new(catalog: &'a Catalog, pricing: Pricing) -> Executor<'a> {
        Executor {
            catalog,
            pricing,
            par: par::Par::auto(),
            tracer: Tracer::disabled(),
            reference_kernels: false,
        }
    }

    /// Run filters through the materializing boolean-mask path and
    /// aggregates through the per-row dispatch loop — the
    /// pre-selection-vector implementation, kept as the correctness and
    /// performance baseline. Batches, reports and spans are bitwise
    /// identical in both modes (the property tests and `exec_bench`'s
    /// regression gate both pin this down); only wall-clock differs.
    pub fn with_reference_kernels(mut self, on: bool) -> Executor<'a> {
        self.reference_kernels = on;
        self
    }

    /// Override the worker-thread count (1 = fully serial). Results and
    /// reports are identical for every setting; only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Executor<'a> {
        self.par.threads = threads.max(1);
        self
    }

    /// Select the thread source for parallel chunks: the shared morsel
    /// pool (default) or a fresh scoped worker set per query (the pre-pool
    /// behavior, kept as the benchmark baseline). Both backends claim the
    /// same chunk indices and fold results in the same order, so batches
    /// and reports are bitwise identical — only scheduling cost differs.
    pub fn with_par_backend(mut self, backend: par::ParBackend) -> Executor<'a> {
        self.par.backend = backend;
        self
    }

    /// Override the serial→parallel row cutover (default
    /// [`par::PAR_MIN_ROWS`], or `AV_PAR_MIN_ROWS` from the environment).
    /// Batches below the cutover run on the calling thread even when
    /// workers are available. Results and reports are identical for every
    /// setting — only scheduling changes — so benchmarks can sweep it.
    pub fn with_par_min_rows(mut self, min_rows: usize) -> Executor<'a> {
        self.par.min_rows = min_rows;
        self
    }

    /// Attach an observability tracer: every operator records a span
    /// (`exec.scan` / `exec.filter` / `exec.project` / `exec.join` /
    /// `exec.aggregate`) carrying output rows, output bytes and the metered
    /// ops the subtree charged. Results are unaffected.
    pub fn with_tracer(mut self, tracer: Tracer) -> Executor<'a> {
        self.tracer = tracer;
        self
    }

    /// Execute a plan, returning the result batch and its execution report.
    ///
    /// If a preflight verifier is installed (see [`crate::preflight`]),
    /// the plan is verified against the catalog before any operator runs.
    pub fn run(&self, plan: &PlanNode) -> Result<ExecResult, EngineError> {
        crate::preflight::check(self.catalog, plan)?;
        let mut meter = CostMeter::new();
        // One span buffer per run: operator spans record into unsynchronized
        // buffer-local storage and are committed to the tracer's shared log
        // in a single batch when the buffer drops.
        let buf = self.tracer.buffer();
        let sb = self.exec(plan, &mut meter, &buf)?;
        drop(buf);
        // The root is the last materialization point: a plan ending in a
        // filter gathers its surviving rows exactly once, here.
        let batch = sb.materialize();
        let report = meter.report(&self.pricing, batch.byte_size(), batch.num_rows());
        Ok(ExecResult { batch, report })
    }

    /// Execute and return only the cost in dollars (`A_{β,γ}`).
    pub fn cost(&self, plan: &PlanNode) -> Result<f64, EngineError> {
        Ok(self.run(plan)?.report.cost_dollars)
    }

    fn exec(
        &self,
        plan: &PlanNode,
        meter: &mut CostMeter,
        buf: &SpanBuffer<'_>,
    ) -> Result<SelBatch, EngineError> {
        if !buf.is_enabled() {
            return self.exec_node(plan, meter, buf);
        }
        let span = buf.span(operator_span_name(plan));
        if let PlanNode::TableScan { table, .. } = plan {
            span.record_str("table", table);
        }
        let ops_before = meter.ops();
        let bytes_before = meter.allocated_bytes();
        let sb = self.exec_node(plan, meter, buf)?;
        // `ops` and `bytes` are the subtree's total charge: children execute
        // inside this span, so an operator's own cost is its value minus its
        // children's. Bytes come from the meter's allocation counter (which
        // every operator feeds with its *logical* output size, whether or
        // not the rows are materialized yet) rather than re-walking the
        // batch — `byte_size` on string columns is O(rows).
        span.record_nums([
            ("rows", sb.num_rows() as f64),
            ("bytes", (meter.allocated_bytes() - bytes_before) as f64),
            ("ops", meter.ops() - ops_before),
        ]);
        Ok(sb)
    }

    fn exec_node(
        &self,
        plan: &PlanNode,
        meter: &mut CostMeter,
        buf: &SpanBuffer<'_>,
    ) -> Result<SelBatch, EngineError> {
        match plan {
            PlanNode::TableScan { table, alias } => {
                self.exec_scan(table, alias, meter).map(SelBatch::dense)
            }
            PlanNode::Filter { input, predicate } => {
                let sb = self.exec(input, meter, buf)?;
                if self.reference_kernels {
                    exec_filter_reference(sb.materialize(), predicate, meter, self.par)
                        .map(SelBatch::dense)
                } else {
                    exec_filter_sel(sb, predicate, meter, self.par)
                }
            }
            PlanNode::Project { input, exprs } => {
                let sb = self.exec(input, meter, buf)?;
                if self.reference_kernels {
                    exec_project_reference(sb.materialize(), exprs, meter, self.par)
                        .map(SelBatch::dense)
                } else {
                    exec_project_sel(sb, exprs, meter, self.par)
                }
            }
            PlanNode::Join {
                left,
                right,
                on,
                join_type,
            } => {
                // Joins gather both inputs: probe/build internals index
                // dense batches.
                let lb = self.exec(left, meter, buf)?.materialize();
                let rb = self.exec(right, meter, buf)?.materialize();
                exec_join(lb, rb, on, *join_type, meter, self.par).map(SelBatch::dense)
            }
            PlanNode::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let sb = self.exec(input, meter, buf)?;
                if self.reference_kernels {
                    exec_aggregate_reference(sb.materialize(), group_by, aggs, meter, self.par)
                        .map(SelBatch::dense)
                } else {
                    exec_aggregate_sel(sb, group_by, aggs, meter, self.par).map(SelBatch::dense)
                }
            }
        }
    }

    fn exec_scan(
        &self,
        table: &str,
        alias: &str,
        meter: &mut CostMeter,
    ) -> Result<RecordBatch, EngineError> {
        let t = self
            .catalog
            .table(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        // Scanning charges one op per cell plus a per-row dispatch cost.
        meter.charge_rows(t.row_count(), t.data.num_columns() + 1);
        meter.alloc_bytes(t.byte_size());
        let names = if alias.is_empty() {
            // Materialized-view scan: stored names are already qualified.
            t.column_names.clone()
        } else {
            t.column_names
                .iter()
                .map(|c| format!("{alias}.{c}"))
                .collect()
        };
        Ok(RecordBatch {
            names,
            columns: t.data.columns.clone(),
        })
    }
}

/// Span name for one operator, following the `subsystem.noun` convention
/// (DESIGN.md §Observability).
fn operator_span_name(plan: &PlanNode) -> &'static str {
    match plan {
        PlanNode::TableScan { .. } => "exec.scan",
        PlanNode::Filter { .. } => "exec.filter",
        PlanNode::Project { .. } => "exec.project",
        PlanNode::Join { .. } => "exec.join",
        PlanNode::Aggregate { .. } => "exec.aggregate",
    }
}

/// An [`Expr`] with every column reference resolved to a column index of one
/// specific batch shape. Binding fails loudly on unknown columns (rather
/// than treating typos as always-NULL) and happens once per operator, so
/// per-row evaluation never searches names.
#[derive(Debug, Clone)]
pub(crate) enum BoundExpr {
    Col(usize),
    Lit(Value),
    Cmp {
        op: CmpOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    And(Vec<BoundExpr>),
    Or(Vec<BoundExpr>),
    Not(Box<BoundExpr>),
    Arith {
        op: ArithOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
}

impl BoundExpr {
    pub(crate) fn bind(expr: &Expr, batch: &RecordBatch) -> Result<BoundExpr, EngineError> {
        Ok(match expr {
            Expr::Column(c) => BoundExpr::Col(require_column(batch, c)?),
            Expr::Literal(v) => BoundExpr::Lit(v.clone()),
            Expr::Cmp { op, left, right } => BoundExpr::Cmp {
                op: *op,
                left: Box::new(BoundExpr::bind(left, batch)?),
                right: Box::new(BoundExpr::bind(right, batch)?),
            },
            Expr::And(v) => BoundExpr::And(
                v.iter()
                    .map(|e| BoundExpr::bind(e, batch))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Or(v) => BoundExpr::Or(
                v.iter()
                    .map(|e| BoundExpr::bind(e, batch))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Not(e) => BoundExpr::Not(Box::new(BoundExpr::bind(e, batch)?)),
            Expr::Arith { op, left, right } => BoundExpr::Arith {
                op: *op,
                left: Box::new(BoundExpr::bind(left, batch)?),
                right: Box::new(BoundExpr::bind(right, batch)?),
            },
        })
    }

    /// Evaluate against one row. Mirrors [`Expr::eval`] exactly.
    fn eval(&self, batch: &RecordBatch, row: usize) -> Value {
        match self {
            BoundExpr::Col(i) => batch.columns[*i].get(row),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Cmp { op, left, right } => {
                let l = left.eval(batch, row);
                let r = right.eval(batch, row);
                Value::Int(op.apply(&l, &r) as i64)
            }
            BoundExpr::And(v) => Value::Int(v.iter().all(|e| e.eval_bool(batch, row)) as i64),
            BoundExpr::Or(v) => Value::Int(v.iter().any(|e| e.eval_bool(batch, row)) as i64),
            BoundExpr::Not(e) => Value::Int(!e.eval_bool(batch, row) as i64),
            BoundExpr::Arith { op, left, right } => {
                let l = left.eval(batch, row);
                let r = right.eval(batch, row);
                match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => {
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => {
                                if b == 0.0 {
                                    return Value::Null;
                                }
                                a / b
                            }
                        };
                        if matches!((&l, &r), (Value::Int(_), Value::Int(_)))
                            && out.fract() == 0.0
                            && !matches!(op, ArithOp::Div)
                        {
                            Value::Int(out as i64)
                        } else {
                            Value::Float(out)
                        }
                    }
                    _ => Value::Null,
                }
            }
        }
    }

    /// Evaluate as a predicate. The common `column op literal` shape skips
    /// [`Value`] construction entirely (no string clone per row).
    pub(crate) fn eval_bool(&self, batch: &RecordBatch, row: usize) -> bool {
        match self {
            BoundExpr::Cmp { op, left, right } => match (left.as_ref(), right.as_ref()) {
                (BoundExpr::Col(i), BoundExpr::Lit(v)) => {
                    cmp_col_lit(*op, &batch.columns[*i], row, v)
                }
                (BoundExpr::Lit(v), BoundExpr::Col(i)) => {
                    cmp_col_lit(op.flipped(), &batch.columns[*i], row, v)
                }
                _ => {
                    let l = left.eval(batch, row);
                    let r = right.eval(batch, row);
                    op.apply(&l, &r)
                }
            },
            BoundExpr::And(v) => v.iter().all(|e| e.eval_bool(batch, row)),
            BoundExpr::Or(v) => v.iter().any(|e| e.eval_bool(batch, row)),
            BoundExpr::Not(e) => !e.eval_bool(batch, row),
            other => match other.eval(batch, row) {
                Value::Int(i) => i != 0,
                Value::Float(f) => f != 0.0,
                _ => false,
            },
        }
    }
}

/// `column[row] op lit` without materialising a [`Value`] for the cell.
/// Replicates [`CmpOp::apply`] for every column-type/literal pairing;
/// stored cells are never NULL, so only the literal can short-circuit.
fn cmp_col_lit(op: CmpOp, col: &Column, row: usize, lit: &Value) -> bool {
    match (col, lit) {
        (_, Value::Null) => false,
        (Column::Int(d), Value::Int(b)) => apply_ord(op, d[row].cmp(b), d[row] == *b),
        (Column::Int(d), Value::Float(b)) => {
            let a = d[row] as f64;
            apply_ord(op, a.total_cmp(b), a == *b)
        }
        (Column::Float(d), Value::Int(b)) => {
            let b = *b as f64;
            apply_ord(op, d[row].total_cmp(&b), d[row] == b)
        }
        (Column::Float(d), Value::Float(b)) => apply_ord(op, d[row].total_cmp(b), d[row] == *b),
        (Column::Str(d), Value::Str(b)) => {
            apply_ord(op, d[row].as_str().cmp(b.as_str()), d[row] == *b)
        }
        // Mixed string/number: never SQL-equal; strings sort after numbers.
        (Column::Str(_), _) => apply_ord(op, Ordering::Greater, false),
        (_, Value::Str(_)) => apply_ord(op, Ordering::Less, false),
    }
}

fn require_column(batch: &RecordBatch, name: &str) -> Result<usize, EngineError> {
    batch
        .column_index(name)
        .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))
}

/// Reference filter: per-row interpreted mask, materialized output. The
/// optimized [`exec_filter_sel`] must keep row-for-row the rows this keeps
/// and charge byte-for-byte what this charges.
fn exec_filter_reference(
    batch: RecordBatch,
    predicate: &Expr,
    meter: &mut CostMeter,
    par: par::Par,
) -> Result<RecordBatch, EngineError> {
    let bound = BoundExpr::bind(predicate, &batch)?;
    let rows = batch.num_rows();
    let pred_weight = predicate.referenced_columns().len().max(1) * 2;
    meter.charge_rows(rows, pred_weight);

    let chunk_masks = par::map_chunks(rows, par, |_, range| {
        range
            .map(|i| bound.eval_bool(&batch, i))
            .collect::<Vec<bool>>()
    });
    let mut mask = Vec::with_capacity(rows);
    for m in chunk_masks {
        mask.extend(m);
    }

    let in_bytes = batch.byte_size();
    let columns: Vec<Column> = batch.columns.iter().map(|c| c.filter(&mask)).collect();
    let out = RecordBatch {
        names: batch.names,
        columns,
    };
    meter.alloc_bytes(out.byte_size());
    meter.free_bytes(in_bytes);
    Ok(out)
}

/// Optimized filter: compile the predicate to typed kernels and build (or
/// refine) a selection vector — no batch materialization, no boolean mask.
/// All analytic cost charges replicate [`exec_filter_reference`] exactly:
/// the filtered byte size is computed from the selection without gathering.
fn exec_filter_sel(
    sb: SelBatch,
    predicate: &Expr,
    meter: &mut CostMeter,
    par: par::Par,
) -> Result<SelBatch, EngineError> {
    let bound = BoundExpr::bind(predicate, &sb.batch)?;
    let rows = sb.num_rows();
    let pred_weight = predicate.referenced_columns().len().max(1) * 2;
    meter.charge_rows(rows, pred_weight);

    // Selection indices are u32: engine batches stay far below that bound.
    assert!(
        sb.batch.num_rows() <= u32::MAX as usize,
        "batch too large for u32 selection vectors"
    );
    let pred = CompiledPred::compile(bound, &sb.batch);
    // Chunk over *logical* rows — identical boundaries to the reference
    // path chunking the materialized batch, so anything order-sensitive
    // downstream (f64 partial sums) sees the same grouping.
    let chunk_sels: Vec<Vec<u32>> = match &sb.sel {
        None => par::map_chunks(rows, par, |_, range| pred.eval_dense(&sb.batch, range)),
        Some(s) => par::map_chunks(rows, par, |_, range| pred.eval_sel(&sb.batch, &s[range])),
    };
    let mut sel = Vec::with_capacity(chunk_sels.iter().map(Vec::len).sum());
    for c in chunk_sels {
        sel.extend(c);
    }

    let in_bytes = sb.byte_size();
    let out_bytes: usize = sb.batch.columns.iter().map(|c| c.byte_size_sel(&sel)).sum();
    meter.alloc_bytes(out_bytes);
    meter.free_bytes(in_bytes);
    Ok(SelBatch {
        batch: sb.batch,
        sel: Some(sel),
    })
}

/// Reference projection over a dense batch.
fn exec_project_reference(
    batch: RecordBatch,
    exprs: &[av_plan::ProjExpr],
    meter: &mut CostMeter,
    par: par::Par,
) -> Result<RecordBatch, EngineError> {
    let rows = batch.num_rows();
    meter.charge_rows(rows, exprs.len().max(1));

    let mut names = Vec::with_capacity(exprs.len());
    let mut columns = Vec::with_capacity(exprs.len());
    for p in exprs {
        names.push(p.alias.clone());
        match &p.expr {
            // Fast path: plain column forwarding.
            Expr::Column(c) => {
                let idx = require_column(&batch, c)?;
                columns.push(batch.columns[idx].clone());
            }
            expr => {
                let bound = BoundExpr::bind(expr, &batch)?;
                // Computed column: evaluate per row; infer output type from
                // the first row (empty input defaults to Float).
                let chunk_vals = par::map_chunks(rows, par, |_, range| {
                    range
                        .map(|i| bound.eval(&batch, i))
                        .collect::<Vec<Value>>()
                });
                let mut vals = Vec::with_capacity(rows);
                for v in chunk_vals {
                    vals.extend(v);
                }
                columns.push(values_to_column(&vals));
            }
        }
    }
    let in_bytes = batch.byte_size();
    let out = RecordBatch { names, columns };
    meter.alloc_bytes(out.byte_size());
    meter.free_bytes(in_bytes);
    Ok(out)
}

/// Projection over a possibly-selected batch. A forwarding-only projection
/// (every expression a plain column) gathers just the projected columns
/// through the selection — dropped columns are never copied. Computed
/// expressions materialize the input once and take the reference path.
fn exec_project_sel(
    sb: SelBatch,
    exprs: &[av_plan::ProjExpr],
    meter: &mut CostMeter,
    par: par::Par,
) -> Result<SelBatch, EngineError> {
    let forwarding = exprs.iter().all(|p| matches!(&p.expr, Expr::Column(_)));
    if let (Some(sel), true) = (&sb.sel, forwarding) {
        let rows = sb.num_rows();
        meter.charge_rows(rows, exprs.len().max(1));
        let mut names = Vec::with_capacity(exprs.len());
        let mut columns = Vec::with_capacity(exprs.len());
        for p in exprs {
            names.push(p.alias.clone());
            let Expr::Column(c) = &p.expr else { unreachable!("forwarding checked above") };
            let idx = require_column(&sb.batch, c)?;
            columns.push(sb.batch.columns[idx].take_sel(sel));
        }
        let in_bytes = sb.byte_size();
        let out = RecordBatch { names, columns };
        meter.alloc_bytes(out.byte_size());
        meter.free_bytes(in_bytes);
        return Ok(SelBatch::dense(out));
    }
    exec_project_reference(sb.materialize(), exprs, meter, par).map(SelBatch::dense)
}

fn values_to_column(vals: &[Value]) -> Column {
    let mut col = match vals.iter().find(|v| !v.is_null()) {
        Some(Value::Int(_)) => Column::Int(Vec::with_capacity(vals.len())),
        Some(Value::Str(_)) => Column::str(Vec::with_capacity(vals.len())),
        _ => Column::Float(Vec::with_capacity(vals.len())),
    };
    for v in vals {
        // NULLs (e.g. division by zero) are stored as a zero of the column
        // type; the engine's stored data is NULL-free by construction.
        match (&mut col, v) {
            (c, v) if !v.is_null() => c.push_value(v),
            (Column::Int(d), _) => d.push(0),
            (Column::Float(d), _) => d.push(0.0),
            (Column::Str(d), _) => std::sync::Arc::make_mut(d).push(String::new()),
        }
    }
    col
}

/// Key-column views for one side of an equi-join, with ints promoted to
/// float codes wherever the opposite side's column is a float. A `None`
/// pairing means some key pair is string-vs-number, which can never be
/// equal: the join short-circuits to zero matches.
fn join_key_cols<'b>(
    own: &'b RecordBatch,
    own_keys: &[usize],
    other: &RecordBatch,
    other_keys: &[usize],
) -> Option<Vec<KeyCol<'b>>> {
    own_keys
        .iter()
        .zip(other_keys)
        .map(|(&k, &ok)| {
            let col = &own.columns[k];
            let opposite = &other.columns[ok];
            match (col, opposite) {
                (Column::Str(_), Column::Str(_)) => Some(KeyCol::of(col, false)),
                (Column::Str(_), _) | (_, Column::Str(_)) => None,
                (Column::Int(_), Column::Float(_)) => Some(KeyCol::of(col, true)),
                _ => Some(KeyCol::of(col, false)),
            }
        })
        .collect()
}

fn exec_join(
    left: RecordBatch,
    right: RecordBatch,
    on: &[(String, String)],
    join_type: JoinType,
    meter: &mut CostMeter,
    par: par::Par,
) -> Result<RecordBatch, EngineError> {
    let lkeys: Vec<usize> = on
        .iter()
        .map(|(l, _)| require_column(&left, l))
        .collect::<Result<_, _>>()?;
    let rkeys: Vec<usize> = on
        .iter()
        .map(|(_, r)| require_column(&right, r))
        .collect::<Result<_, _>>()?;

    // Build the hash table on the smaller side for inner joins (ties build
    // right). Left joins must probe the left side to keep every probe row,
    // so they always build right.
    let build_right = match join_type {
        JoinType::Left => true,
        JoinType::Inner => right.num_rows() <= left.num_rows(),
    };
    let (build, probe, bkeys, pkeys) = if build_right {
        (&right, &left, &rkeys, &lkeys)
    } else {
        (&left, &right, &lkeys, &rkeys)
    };
    let build_rows = build.num_rows();
    let probe_rows = probe.num_rows();
    meter.charge_rows(build_rows, 4 * on.len().max(1)); // hash + insert
    meter.charge_rows(probe_rows, 4 * on.len().max(1)); // hash + probe

    // (probe row, build row) match pairs; usize::MAX marks a left-join miss.
    let (pidx, bidx, table_bytes) = match (
        join_key_cols(build, bkeys, probe, pkeys),
        join_key_cols(probe, pkeys, build, bkeys),
    ) {
        (Some(bcols), Some(pcols)) => {
            let mut interner = KeyInterner::new();
            let codes = keys::encode_rows(&bcols, build_rows, &mut interner);
            // Chained layout: code → (first, last) build row plus forward
            // links in `next` — same ascending match order as per-key row
            // vectors, without a heap allocation per distinct key.
            let mut table: keys::CodeMap<u64, (usize, usize)> =
                keys::CodeMap::with_capacity_and_hasher(build_rows, Default::default());
            let mut next: Vec<usize> = vec![usize::MAX; build_rows];
            for (i, &code) in codes.iter().enumerate() {
                match table.entry(code) {
                    Entry::Vacant(e) => {
                        e.insert((i, i));
                    }
                    Entry::Occupied(mut e) => {
                        let last = e.get().1;
                        next[last] = i;
                        e.get_mut().1 = i;
                    }
                }
            }
            // Real footprint: one bucket header per distinct key, one chain
            // link per build row, plus the interner's dictionaries.
            let table_bytes =
                table.len() * 48 + build_rows * 8 + codes.len() * 8 + interner.approx_bytes();

            let chunk_pairs = par::map_chunks(probe_rows, par, |_, range| {
                let mut pi: Vec<usize> = Vec::new();
                let mut bi: Vec<usize> = Vec::new();
                for i in range {
                    match keys::probe_code(&pcols, i, &interner).and_then(|c| table.get(&c)) {
                        Some(&(first, _)) => {
                            let mut j = first;
                            while j != usize::MAX {
                                pi.push(i);
                                bi.push(j);
                                j = next[j];
                            }
                        }
                        None => {
                            if join_type == JoinType::Left {
                                pi.push(i);
                                bi.push(usize::MAX);
                            }
                        }
                    }
                }
                (pi, bi)
            });
            let mut pidx = Vec::new();
            let mut bidx = Vec::new();
            for (pi, bi) in chunk_pairs {
                pidx.extend(pi);
                bidx.extend(bi);
            }
            (pidx, bidx, table_bytes)
        }
        // A string key against a numeric key can never match: inner joins
        // produce nothing, left joins keep every probe row unmatched.
        _ => {
            let (pidx, bidx) = if join_type == JoinType::Left {
                ((0..probe_rows).collect(), vec![usize::MAX; probe_rows])
            } else {
                (Vec::new(), Vec::new())
            };
            (pidx, bidx, 0)
        }
    };
    meter.alloc_bytes(table_bytes);
    meter.charge_rows(pidx.len(), left.num_columns() + right.num_columns());

    // Assemble output in left-columns-then-right-columns order regardless
    // of which side built the table.
    let (lidx, ridx) = if build_right { (&pidx, &bidx) } else { (&bidx, &pidx) };
    let mut names = left.names.clone();
    names.extend(right.names.iter().cloned());
    let mut columns: Vec<Column> = left
        .columns
        .iter()
        .map(|c| c.take_with_default(lidx))
        .collect();
    columns.extend(right.columns.iter().map(|c| c.take_with_default(ridx)));

    let in_bytes = left.byte_size() + right.byte_size();
    let out = RecordBatch { names, columns };
    meter.alloc_bytes(out.byte_size());
    meter.free_bytes(in_bytes + table_bytes);
    Ok(out)
}

/// Running state of one aggregate within one group. Min/max track the row
/// index of the current extremum (first occurrence wins ties), so values
/// are only compared — never cloned — until output assembly.
#[derive(Clone)]
struct AggState {
    count: usize,
    sum: f64,
    min_row: Option<usize>,
    max_row: Option<usize>,
}

impl AggState {
    fn new() -> AggState {
        AggState {
            count: 0,
            sum: 0.0,
            min_row: None,
            max_row: None,
        }
    }

    fn update(&mut self, col: Option<&Column>, row: usize) {
        self.count += 1;
        let Some(col) = col else { return };
        match col {
            Column::Int(d) => self.sum += d[row] as f64,
            Column::Float(d) => self.sum += d[row],
            Column::Str(_) => {}
        }
        if self.min_row.map(|m| col_lt(col, row, m)).unwrap_or(true) {
            self.min_row = Some(row);
        }
        if self.max_row.map(|m| col_lt(col, m, row)).unwrap_or(true) {
            self.max_row = Some(row);
        }
    }

    /// Fold `other` (from a later chunk) into `self`. Sums accumulate in
    /// chunk order; extrema replace only on strict improvement, preserving
    /// first-occurrence tie-breaking.
    fn merge(&mut self, other: &AggState, col: Option<&Column>) {
        self.count += other.count;
        self.sum += other.sum;
        let Some(col) = col else { return };
        if let Some(o) = other.min_row {
            if self.min_row.map(|m| col_lt(col, o, m)).unwrap_or(true) {
                self.min_row = Some(o);
            }
        }
        if let Some(o) = other.max_row {
            if self.max_row.map(|m| col_lt(col, m, o)).unwrap_or(true) {
                self.max_row = Some(o);
            }
        }
    }
}

/// Strict `col[a] < col[b]` under the engine's total order (floats by IEEE
/// totalOrder, matching [`Value::total_cmp`] within one typed column).
fn col_lt(col: &Column, a: usize, b: usize) -> bool {
    match col {
        Column::Int(d) => d[a] < d[b],
        Column::Float(d) => d[a].total_cmp(&d[b]).is_lt(),
        Column::Str(d) => d[a] < d[b],
    }
}

/// Per-chunk partial aggregation result: group codes in chunk-local
/// first-seen order, with the first row and per-aggregate states for each.
struct ChunkAgg {
    order: Vec<u64>,
    first_rows: Vec<usize>,
    states: Vec<Vec<AggState>>,
}

/// Reference aggregation over a dense batch: per-row `AggState::update`
/// with the column-type match re-dispatched every row.
fn exec_aggregate_reference(
    batch: RecordBatch,
    group_by: &[String],
    aggs: &[av_plan::AggExpr],
    meter: &mut CostMeter,
    par: par::Par,
) -> Result<RecordBatch, EngineError> {
    let gidx: Vec<usize> = group_by
        .iter()
        .map(|g| require_column(&batch, g))
        .collect::<Result<_, _>>()?;
    let ainput: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.input {
            Some(c) => require_column(&batch, c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;
    let acols: Vec<Option<&Column>> = ainput.iter().map(|ai| ai.map(|i| &batch.columns[i])).collect();

    let rows = batch.num_rows();
    meter.charge_rows(rows, (group_by.len() + aggs.len()).max(1) * 2);

    // Group keys become u64 codes once, up front; a column never mixes
    // types, so per-column natural encoding matches Value equality exactly.
    let mut interner = KeyInterner::new();
    let kcols: Vec<KeyCol> = gidx
        .iter()
        .map(|&k| KeyCol::of(&batch.columns[k], false))
        .collect();
    let codes = keys::encode_rows(&kcols, rows, &mut interner);

    // Chunked partial aggregation, merged in chunk order: group order is
    // global first-seen order and float sums accumulate identically for
    // every thread count.
    let partials = par::map_chunks(rows, par, |_, range| {
        let mut slot_of: keys::CodeMap<u64, usize> = keys::CodeMap::default();
        let mut agg = ChunkAgg {
            order: Vec::new(),
            first_rows: Vec::new(),
            states: Vec::new(),
        };
        for i in range {
            let code = codes[i];
            let slot = *slot_of.entry(code).or_insert_with(|| {
                agg.order.push(code);
                agg.first_rows.push(i);
                agg.states.push(vec![AggState::new(); aggs.len()]);
                agg.states.len() - 1
            });
            for (a, col) in acols.iter().enumerate() {
                agg.states[slot][a].update(*col, i);
            }
        }
        agg
    });

    let mut slot_of: keys::CodeMap<u64, usize> = keys::CodeMap::default();
    let mut first_rows: Vec<usize> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    for chunk in partials {
        for (local, &code) in chunk.order.iter().enumerate() {
            let slot = *slot_of.entry(code).or_insert_with(|| {
                first_rows.push(chunk.first_rows[local]);
                states.push(vec![AggState::new(); aggs.len()]);
                states.len() - 1
            });
            for (a, col) in acols.iter().enumerate() {
                states[slot][a].merge(&chunk.states[local][a], *col);
            }
        }
    }

    // A global aggregate (no GROUP BY) over empty input still yields one row.
    let empty_global = group_by.is_empty() && states.is_empty();
    if empty_global {
        first_rows.push(usize::MAX);
        states.push(vec![AggState::new(); aggs.len()]);
    }

    let n_groups = states.len();
    meter.alloc_bytes(n_groups * (group_by.len() + aggs.len()).max(1) * 16);

    let mut names: Vec<String> = group_by.to_vec();
    names.extend(aggs.iter().map(|a| a.output.clone()));

    let mut columns: Vec<Column> = Vec::with_capacity(names.len());
    // Group-key columns: the first-seen row of each group carries the key.
    for &src in &gidx {
        columns.push(batch.columns[src].take(&first_rows));
    }
    // Aggregate columns.
    for (a, agg) in aggs.iter().enumerate() {
        columns.push(build_agg_column(agg.func, acols[a], &states, a));
    }

    let in_bytes = batch.byte_size();
    let out = RecordBatch { names, columns };
    meter.alloc_bytes(out.byte_size());
    meter.free_bytes(in_bytes);
    Ok(out)
}

/// Optimized aggregation over a possibly-selected batch. Two changes over
/// [`exec_aggregate_reference`], neither observable in the output:
///
/// - the input is consumed *through* the selection vector — only the
///   group-key columns are gathered (for code encoding); aggregate inputs
///   are read in place at their original row indices;
/// - the per-row column-type and aggregate-function dispatch is hoisted out
///   of the inner loop ([`update_chunk_hoisted`]): chunk slots are resolved
///   first, then each aggregate updates its states in one typed pass that
///   maintains only the state fields its output actually reads.
///
/// Chunk boundaries fall on logical rows, exactly where the reference path
/// chunks the materialized batch, so per-group f64 partial sums add in the
/// identical order and the outputs are bitwise equal.
fn exec_aggregate_sel(
    sb: SelBatch,
    group_by: &[String],
    aggs: &[av_plan::AggExpr],
    meter: &mut CostMeter,
    par: par::Par,
) -> Result<RecordBatch, EngineError> {
    let batch = &sb.batch;
    let gidx: Vec<usize> = group_by
        .iter()
        .map(|g| require_column(batch, g))
        .collect::<Result<_, _>>()?;
    let ainput: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.input {
            Some(c) => require_column(batch, c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;
    let acols: Vec<Option<&Column>> = ainput.iter().map(|ai| ai.map(|i| &batch.columns[i])).collect();

    let rows = sb.num_rows();
    meter.charge_rows(rows, (group_by.len() + aggs.len()).max(1) * 2);

    let sel: Option<&[u32]> = sb.sel.as_deref();
    let rowof = |j: usize| match sel {
        Some(s) => s[j] as usize,
        None => j,
    };

    // Group keys become u64 codes once, up front. With a selection, just
    // the key columns are gathered so the encoder sees the live rows in
    // logical order — the same sequence the reference path encodes from
    // the materialized batch.
    let mut interner = KeyInterner::new();
    let gathered: Option<Vec<Column>> = match (sel, gidx.is_empty()) {
        (Some(s), false) => Some(gidx.iter().map(|&k| batch.columns[k].take_sel(s)).collect()),
        _ => None,
    };
    let codes: Vec<u64> = if gidx.is_empty() {
        Vec::new() // global aggregate: one implicit group, nothing to encode
    } else {
        let kcols: Vec<KeyCol> = match &gathered {
            Some(g) => g.iter().map(|c| KeyCol::of(c, false)).collect(),
            None => gidx.iter().map(|&k| KeyCol::of(&batch.columns[k], false)).collect(),
        };
        keys::encode_rows(&kcols, rows, &mut interner)
    };

    let partials = par::map_chunks(rows, par, |_, range| {
        let mut slot_of: keys::CodeMap<u64, usize> = keys::CodeMap::default();
        let mut agg = ChunkAgg {
            order: Vec::new(),
            first_rows: Vec::new(),
            states: Vec::new(),
        };
        // Resolve every row's group slot first, so the update loops below
        // are free of hashing and of the per-row column-type match.
        let mut slots: Vec<u32> = Vec::with_capacity(range.len());
        for j in range.clone() {
            let code = if gidx.is_empty() { 0 } else { codes[j] };
            let slot = *slot_of.entry(code).or_insert_with(|| {
                agg.order.push(code);
                agg.first_rows.push(rowof(j));
                agg.states.push(vec![AggState::new(); aggs.len()]);
                agg.states.len() - 1
            });
            slots.push(slot as u32);
        }
        for (a, col) in acols.iter().enumerate() {
            update_chunk_hoisted(*col, aggs[a].func, &mut agg.states, &slots, range.start, &rowof, a);
        }
        agg
    });

    let mut slot_of: keys::CodeMap<u64, usize> = keys::CodeMap::default();
    let mut first_rows: Vec<usize> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    for chunk in partials {
        for (local, &code) in chunk.order.iter().enumerate() {
            let slot = *slot_of.entry(code).or_insert_with(|| {
                first_rows.push(chunk.first_rows[local]);
                states.push(vec![AggState::new(); aggs.len()]);
                states.len() - 1
            });
            for (a, col) in acols.iter().enumerate() {
                states[slot][a].merge(&chunk.states[local][a], *col);
            }
        }
    }

    // A global aggregate (no GROUP BY) over empty input still yields one row.
    let empty_global = group_by.is_empty() && states.is_empty();
    if empty_global {
        first_rows.push(usize::MAX);
        states.push(vec![AggState::new(); aggs.len()]);
    }

    let n_groups = states.len();
    meter.alloc_bytes(n_groups * (group_by.len() + aggs.len()).max(1) * 16);

    let mut names: Vec<String> = group_by.to_vec();
    names.extend(aggs.iter().map(|a| a.output.clone()));

    let mut columns: Vec<Column> = Vec::with_capacity(names.len());
    // Group-key columns: `first_rows` holds *original* row indices, so the
    // keys gather straight from the unmaterialized input.
    for &src in &gidx {
        columns.push(batch.columns[src].take(&first_rows));
    }
    for (a, agg) in aggs.iter().enumerate() {
        columns.push(build_agg_column(agg.func, acols[a], &states, a));
    }

    let in_bytes = sb.byte_size();
    let out = RecordBatch { names, columns };
    meter.alloc_bytes(out.byte_size());
    meter.free_bytes(in_bytes);
    Ok(out)
}

/// One chunk's updates for a single aggregate with both the column-type
/// match *and* the aggregate function hoisted out of the row loop.
///
/// The per-row [`AggState::update`] must maintain every state field because
/// it cannot know which output will be read; here the function is known, so
/// each pass touches only the fields its output reads (COUNT reads `count`,
/// SUM reads `sum`, AVG both, MIN/MAX their extremum row). The fields that
/// *are* read get field-for-field the reference's updates — same f64
/// accumulation order, same strict-inequality first-occurrence
/// tie-breaking — so outputs stay bitwise equal. `slots[off]` is the group
/// slot of logical row `jstart + off`; `rowof` maps logical to original
/// row indices.
fn update_chunk_hoisted(
    col: Option<&Column>,
    func: AggFunc,
    states: &mut [Vec<AggState>],
    slots: &[u32],
    jstart: usize,
    rowof: &impl Fn(usize) -> usize,
    a: usize,
) {
    macro_rules! pass {
        (|$row:ident, $st:ident| $body:expr) => {
            for (off, &s) in slots.iter().enumerate() {
                let $row = rowof(jstart + off);
                let $st: &mut AggState = &mut states[s as usize][a];
                $body;
            }
        };
    }
    let count_only = |states: &mut [Vec<AggState>]| {
        for &s in slots {
            states[s as usize][a].count += 1;
        }
    };
    match (col, func) {
        // COUNT ignores its input; without an input column only `count`
        // can advance (a MIN/MAX over no column emits zeros unread).
        (None, _) | (_, AggFunc::Count) => count_only(states),
        (Some(Column::Int(d)), AggFunc::Sum) => pass!(|row, st| st.sum += d[row] as f64),
        (Some(Column::Int(d)), AggFunc::Avg) => pass!(|row, st| {
            st.count += 1;
            st.sum += d[row] as f64;
        }),
        (Some(Column::Int(d)), AggFunc::Min) => pass!(|row, st| {
            if st.min_row.map(|m| d[row] < d[m]).unwrap_or(true) {
                st.min_row = Some(row);
            }
        }),
        (Some(Column::Int(d)), AggFunc::Max) => pass!(|row, st| {
            if st.max_row.map(|m| d[m] < d[row]).unwrap_or(true) {
                st.max_row = Some(row);
            }
        }),
        (Some(Column::Float(d)), AggFunc::Sum) => pass!(|row, st| st.sum += d[row]),
        (Some(Column::Float(d)), AggFunc::Avg) => pass!(|row, st| {
            st.count += 1;
            st.sum += d[row];
        }),
        (Some(Column::Float(d)), AggFunc::Min) => pass!(|row, st| {
            if st.min_row.map(|m| d[row].total_cmp(&d[m]).is_lt()).unwrap_or(true) {
                st.min_row = Some(row);
            }
        }),
        (Some(Column::Float(d)), AggFunc::Max) => pass!(|row, st| {
            if st.max_row.map(|m| d[m].total_cmp(&d[row]).is_lt()).unwrap_or(true) {
                st.max_row = Some(row);
            }
        }),
        // Strings never sum: SUM's output field stays 0.0 exactly as the
        // reference leaves it, and AVG degenerates to 0.0 / count.
        (Some(Column::Str(_)), AggFunc::Sum) => {}
        (Some(Column::Str(_)), AggFunc::Avg) => count_only(states),
        (Some(Column::Str(d)), AggFunc::Min) => pass!(|row, st| {
            if st.min_row.map(|m| d[row] < d[m]).unwrap_or(true) {
                st.min_row = Some(row);
            }
        }),
        (Some(Column::Str(d)), AggFunc::Max) => pass!(|row, st| {
            if st.max_row.map(|m| d[m] < d[row]).unwrap_or(true) {
                st.max_row = Some(row);
            }
        }),
    }
}

/// Materialise one aggregate's output column. Min/max over a group with no
/// input values (only possible for the empty-input global aggregate) emit
/// the *input column's* typed default — `Str` columns yield `""`, `Float`
/// columns `0.0` — instead of a hard-coded `Int(0)` that would panic or
/// silently change the column type.
fn build_agg_column(
    func: AggFunc,
    input: Option<&Column>,
    states: &[Vec<AggState>],
    a: usize,
) -> Column {
    match func {
        AggFunc::Count => Column::Int(states.iter().map(|st| st[a].count as i64).collect()),
        AggFunc::Sum => Column::Float(states.iter().map(|st| st[a].sum).collect()),
        AggFunc::Avg => Column::Float(
            states
                .iter()
                .map(|st| {
                    let s = &st[a];
                    if s.count == 0 {
                        0.0
                    } else {
                        s.sum / s.count as f64
                    }
                })
                .collect(),
        ),
        AggFunc::Min | AggFunc::Max => {
            // MIN/MAX without an input column degenerates to a zero count
            // column (COUNT(*) has no ordered value to pick).
            let Some(col) = input else {
                return Column::Int(vec![0; states.len()]);
            };
            let rows: Vec<usize> = states
                .iter()
                .map(|st| {
                    let s = &st[a];
                    let row = if func == AggFunc::Min {
                        s.min_row
                    } else {
                        s.max_row
                    };
                    row.unwrap_or(usize::MAX)
                })
                .collect();
            col.take_with_default(&rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Table;
    use av_plan::{AggExpr, CmpOp, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "orders",
                vec![
                    ("id", Column::Int((0..100).collect())),
                    ("cust", Column::Int((0..100).map(|i| i % 10).collect())),
                    (
                        "amount",
                        Column::Float((0..100).map(|i| i as f64).collect()),
                    ),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c.add_table(
            Table::new(
                "customers",
                vec![
                    ("id", Column::Int((0..10).collect())),
                    (
                        "tier",
                        Column::str((0..10).map(|i| if i < 3 { "gold" } else { "basic" }.into()).collect()),
                    ),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c
    }

    fn run(c: &Catalog, plan: &PlanNode) -> ExecResult {
        Executor::new(c, Pricing::paper_defaults())
            .run(plan)
            .expect("plan executes")
    }

    #[test]
    fn traced_run_records_one_span_per_operator() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .filter(Expr::col("o.cust").eq(Expr::int(3)))
            .join(PlanBuilder::scan("customers", "cu"), &[("o.cust", "cu.id")])
            .count_star(&["cu.tier"], "n")
            .build();
        let tracer = Tracer::new();
        let traced = Executor::new(&c, Pricing::paper_defaults())
            .with_tracer(tracer.clone())
            .run(&plan)
            .expect("plan executes");
        let plain = run(&c, &plan);
        assert_eq!(traced.batch, plain.batch, "tracing must not change results");
        assert_eq!(traced.report, plain.report, "tracing must not change costs");

        let snap = tracer.snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        // Aggregate(Join(Filter(Scan orders), Scan customers)): the root
        // span opens first, children nest inside in execution order.
        assert_eq!(
            names,
            vec![
                "exec.aggregate",
                "exec.join",
                "exec.filter",
                "exec.scan",
                "exec.scan"
            ]
        );
        let agg = &snap.spans[0];
        assert_eq!(agg.parent, None);
        assert_eq!(agg.num_attr("rows"), Some(traced.batch.num_rows() as f64));
        let root_ops = agg.num_attr("ops").expect("ops attribute");
        assert!(root_ops > 0.0, "root span carries the subtree's op charge");
        let join = &snap.spans[1];
        assert_eq!(join.parent, Some(agg.id));
        let scans: Vec<_> = snap.spans.iter().filter(|s| s.name == "exec.scan").collect();
        assert_eq!(scans[0].str_attrs[0].1, "orders");
        assert_eq!(scans[1].str_attrs[0].1, "customers");
    }

    #[test]
    fn parallel_executors_share_one_tracer_registry() {
        // Registry concurrency: several concurrent executions run traced
        // (chunked, multi-threaded) into one shared tracer; the metrics
        // registry must absorb all of them without losing updates. The
        // concurrency itself comes from the shared morsel pool — engine
        // code (tests included) no longer spawns raw threads.
        let c = catalog();
        let tracer = Tracer::new();
        let plan = PlanBuilder::scan("orders", "o")
            .filter(Expr::col("o.cust").eq(Expr::int(3)))
            .build();
        let workers = 4;
        let runs_per_worker = 8;
        let pool = av_sched::Pool::new(workers);
        pool.run(workers, workers, |_| {
            for _ in 0..runs_per_worker {
                let rows = Executor::new(&c, Pricing::paper_defaults())
                    .with_threads(2)
                    .with_tracer(tracer.clone())
                    .run(&plan)
                    .expect("plan executes")
                    .batch
                    .num_rows();
                tracer.metrics().add("engine.rows_out", rows as u64);
            }
        });
        let total_runs = (workers * runs_per_worker) as u64;
        assert_eq!(tracer.metrics().counter("engine.rows_out"), 10 * total_runs);
        // Every run records a filter span and a scan span.
        let snap = tracer.snapshot();
        let filters = snap.spans.iter().filter(|s| s.name == "exec.filter").count();
        assert_eq!(filters as u64, total_runs);
    }

    #[test]
    fn scan_qualifies_columns_with_alias() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o").build();
        let r = run(&c, &plan);
        assert_eq!(r.batch.names, vec!["o.id", "o.cust", "o.amount"]);
        assert_eq!(r.batch.num_rows(), 100);
    }

    #[test]
    fn filter_selects_matching_rows() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .filter(Expr::col("o.cust").eq(Expr::int(3)))
            .build();
        assert_eq!(run(&c, &plan).batch.num_rows(), 10);
    }

    #[test]
    fn scan_of_unknown_table_errors() {
        let c = catalog();
        let plan = PlanBuilder::scan("missing", "m").build();
        let err = Executor::new(&c, Pricing::paper_defaults())
            .run(&plan)
            .expect_err("unknown table");
        assert_eq!(err, EngineError::UnknownTable("missing".into()));
    }

    #[test]
    fn join_on_unknown_key_errors() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .join(PlanBuilder::scan("customers", "c"), &[("o.cust", "c.zzz")])
            .build();
        let err = Executor::new(&c, Pricing::paper_defaults())
            .run(&plan)
            .expect_err("unknown join key");
        assert_eq!(err, EngineError::UnknownColumn("c.zzz".into()));
    }

    #[test]
    fn filter_on_unknown_column_errors() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .filter(Expr::col("o.nope").eq(Expr::int(3)))
            .build();
        let err = Executor::new(&c, Pricing::paper_defaults())
            .run(&plan)
            .expect_err("unknown column");
        assert_eq!(err, EngineError::UnknownColumn("o.nope".into()));
    }

    #[test]
    fn inner_join_matches_keys() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .join(PlanBuilder::scan("customers", "c"), &[("o.cust", "c.id")])
            .build();
        let r = run(&c, &plan);
        assert_eq!(r.batch.num_rows(), 100); // every order has a customer
        assert_eq!(r.batch.num_columns(), 5);
    }

    #[test]
    fn join_filters_compose() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .join(
                PlanBuilder::scan("customers", "c")
                    .filter(Expr::col("c.tier").eq(Expr::str("gold"))),
                &[("o.cust", "c.id")],
            )
            .build();
        // gold customers are ids 0,1,2 → 30 orders
        assert_eq!(run(&c, &plan).batch.num_rows(), 30);
    }

    #[test]
    fn left_join_keeps_unmatched_probe_rows() {
        let mut c = Catalog::new();
        c.add_table(
            Table::new("l", vec![("k", Column::Int(vec![1, 2, 3]))]).expect("ok"),
        )
        .expect("ok");
        c.add_table(Table::new("r", vec![("k", Column::Int(vec![2]))]).expect("ok"))
            .expect("ok");
        let plan = PlanBuilder::scan("l", "l")
            .join_typed(
                PlanBuilder::scan("r", "r"),
                &[("l.k", "r.k")],
                JoinType::Left,
            )
            .build();
        assert_eq!(run(&c, &plan).batch.num_rows(), 3);
    }

    #[test]
    fn left_join_on_string_keys_pads_defaults() {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "l",
                vec![("k", Column::str(vec!["a".into(), "b".into(), "c".into()]))],
            )
            .expect("ok"),
        )
        .expect("ok");
        c.add_table(
            Table::new(
                "r",
                vec![
                    ("k", Column::str(vec!["b".into()])),
                    ("v", Column::str(vec!["hit".into()])),
                ],
            )
            .expect("ok"),
        )
        .expect("ok");
        let plan = PlanBuilder::scan("l", "l")
            .join_typed(
                PlanBuilder::scan("r", "r"),
                &[("l.k", "r.k")],
                JoinType::Left,
            )
            .build();
        let r = run(&c, &plan);
        assert_eq!(r.batch.num_rows(), 3);
        let v = r.batch.column("r.v").expect("col");
        assert_eq!(
            *v,
            Column::str(vec!["".into(), "hit".into(), "".into()]),
            "misses pad with the type default, matches carry the value"
        );
    }

    #[test]
    fn inner_join_builds_on_smaller_side_with_same_rows() {
        let c = catalog();
        // orders (100 rows) joined to customers (10 rows): build side is
        // customers whichever operand order is used, and both orders
        // produce the same multiset of rows.
        let small_right = PlanBuilder::scan("orders", "o")
            .join(PlanBuilder::scan("customers", "c"), &[("o.cust", "c.id")])
            .build();
        let small_left = PlanBuilder::scan("customers", "c")
            .join(PlanBuilder::scan("orders", "o"), &[("c.id", "o.cust")])
            .build();
        let a = run(&c, &small_right);
        let b = run(&c, &small_left);
        assert_eq!(a.batch.num_rows(), 100);
        assert_eq!(b.batch.num_rows(), 100);
    }

    #[test]
    fn join_of_string_key_against_numeric_key_matches_nothing() {
        let mut c = Catalog::new();
        c.add_table(
            Table::new("l", vec![("k", Column::str(vec!["1".into(), "2".into()]))]).expect("ok"),
        )
        .expect("ok");
        c.add_table(Table::new("r", vec![("k", Column::Int(vec![1, 2]))]).expect("ok"))
            .expect("ok");
        let inner = PlanBuilder::scan("l", "l")
            .join(PlanBuilder::scan("r", "r"), &[("l.k", "r.k")])
            .build();
        assert_eq!(run(&c, &inner).batch.num_rows(), 0);
        let left = PlanBuilder::scan("l", "l")
            .join_typed(
                PlanBuilder::scan("r", "r"),
                &[("l.k", "r.k")],
                JoinType::Left,
            )
            .build();
        assert_eq!(run(&c, &left).batch.num_rows(), 2, "left join keeps probe rows");
    }

    #[test]
    fn join_int_keys_meet_float_keys_numerically() {
        let mut c = Catalog::new();
        c.add_table(Table::new("l", vec![("k", Column::Int(vec![1, 2, 3]))]).expect("ok"))
            .expect("ok");
        c.add_table(
            Table::new("r", vec![("k", Column::Float(vec![2.0, 3.5]))]).expect("ok"),
        )
        .expect("ok");
        let plan = PlanBuilder::scan("l", "l")
            .join(PlanBuilder::scan("r", "r"), &[("l.k", "r.k")])
            .build();
        assert_eq!(run(&c, &plan).batch.num_rows(), 1, "only Int(2) ↔ Float(2.0)");
    }

    #[test]
    fn aggregate_count_and_sum() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o").aggregate(
            &["o.cust"],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    input: None,
                    output: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    input: Some("o.amount".into()),
                    output: "total".into(),
                },
            ],
        );
        let r = run(&c, &plan.build());
        assert_eq!(r.batch.num_rows(), 10);
        // Group for cust=0: ids 0,10,...,90 → count 10, sum 450
        let cust = r.batch.column("o.cust").expect("col");
        let n = r.batch.column("n").expect("col");
        let total = r.batch.column("total").expect("col");
        let row0 = (0..10)
            .find(|&i| cust.get(i) == Value::Int(0))
            .expect("group exists");
        assert_eq!(n.get(row0), Value::Int(10));
        assert_eq!(total.get(row0), Value::Float(450.0));
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .filter(Expr::col("o.id").cmp(CmpOp::Lt, Expr::int(0)))
            .count_star(&[], "n")
            .build();
        let r = run(&c, &plan);
        assert_eq!(r.batch.num_rows(), 1);
        assert_eq!(r.batch.column("n").expect("col").get(0), Value::Int(0));
    }

    #[test]
    fn min_max_over_empty_str_input_yields_typed_default() {
        let c = catalog();
        // Empty filter result, then MIN/MAX over the Str tier column: the
        // old executor fell back to Value::Int(0) and panicked pushing an
        // Int into a Str column.
        let plan = PlanBuilder::scan("customers", "c")
            .filter(Expr::col("c.id").cmp(CmpOp::Lt, Expr::int(0)))
            .aggregate(
                &[],
                vec![
                    AggExpr {
                        func: AggFunc::Min,
                        input: Some("c.tier".into()),
                        output: "lo".into(),
                    },
                    AggExpr {
                        func: AggFunc::Max,
                        input: Some("c.tier".into()),
                        output: "hi".into(),
                    },
                ],
            )
            .build();
        let r = run(&c, &plan);
        assert_eq!(r.batch.num_rows(), 1);
        assert_eq!(r.batch.column("lo").expect("col").get(0), Value::Str("".into()));
        assert_eq!(r.batch.column("hi").expect("col").get(0), Value::Str("".into()));
    }

    #[test]
    fn min_max_over_empty_float_input_stays_float() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .filter(Expr::col("o.id").cmp(CmpOp::Lt, Expr::int(0)))
            .aggregate(
                &[],
                vec![AggExpr {
                    func: AggFunc::Min,
                    input: Some("o.amount".into()),
                    output: "lo".into(),
                }],
            )
            .build();
        let r = run(&c, &plan);
        // The old fallback coerced the column to Int; the typed default
        // keeps it Float.
        assert_eq!(r.batch.column("lo").expect("col").get(0), Value::Float(0.0));
    }

    #[test]
    fn min_max_over_string_groups() {
        let c = catalog();
        let plan = PlanBuilder::scan("customers", "c")
            .aggregate(
                &["c.tier"],
                vec![
                    AggExpr {
                        func: AggFunc::Min,
                        input: Some("c.id".into()),
                        output: "lo".into(),
                    },
                    AggExpr {
                        func: AggFunc::Max,
                        input: Some("c.id".into()),
                        output: "hi".into(),
                    },
                ],
            )
            .build();
        let r = run(&c, &plan);
        assert_eq!(r.batch.num_rows(), 2);
        let tier = r.batch.column("c.tier").expect("col");
        let lo = r.batch.column("lo").expect("col");
        let hi = r.batch.column("hi").expect("col");
        let gold = (0..2)
            .find(|&i| tier.get(i) == Value::Str("gold".into()))
            .expect("gold group");
        assert_eq!(lo.get(gold), Value::Int(0));
        assert_eq!(hi.get(gold), Value::Int(2));
    }

    #[test]
    fn min_max_avg_aggregates() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o").aggregate(
            &[],
            vec![
                AggExpr {
                    func: AggFunc::Min,
                    input: Some("o.amount".into()),
                    output: "lo".into(),
                },
                AggExpr {
                    func: AggFunc::Max,
                    input: Some("o.amount".into()),
                    output: "hi".into(),
                },
                AggExpr {
                    func: AggFunc::Avg,
                    input: Some("o.amount".into()),
                    output: "mean".into(),
                },
            ],
        );
        let r = run(&c, &plan.build());
        assert_eq!(r.batch.column("lo").expect("col").get(0), Value::Float(0.0));
        assert_eq!(r.batch.column("hi").expect("col").get(0), Value::Float(99.0));
        assert_eq!(
            r.batch.column("mean").expect("col").get(0),
            Value::Float(49.5)
        );
    }

    #[test]
    fn computed_projection_evaluates_arithmetic() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o").project_exprs(vec![av_plan::ProjExpr {
            expr: Expr::Arith {
                op: av_plan::expr::ArithOp::Mul,
                left: Box::new(Expr::col("o.amount")),
                right: Box::new(Expr::int(2)),
            },
            alias: "double".into(),
        }]);
        let r = run(&c, &plan.build());
        assert_eq!(
            r.batch.column("double").expect("col").get(3),
            Value::Float(6.0)
        );
    }

    #[test]
    fn cost_grows_with_work() {
        let c = catalog();
        let cheap = PlanBuilder::scan("customers", "c").build();
        let pricey = PlanBuilder::scan("orders", "o")
            .join(PlanBuilder::scan("customers", "c"), &[("o.cust", "c.id")])
            .count_star(&["c.tier"], "n")
            .build();
        let rc = run(&c, &cheap);
        let rp = run(&c, &pricey);
        assert!(rp.report.cost_dollars > rc.report.cost_dollars);
        assert!(rp.report.usage.latency_seconds > 0.0);
    }

    #[test]
    fn deterministic_execution() {
        let c = catalog();
        let plan = PlanBuilder::scan("orders", "o")
            .count_star(&["o.cust"], "n")
            .build();
        let a = run(&c, &plan);
        let b = run(&c, &plan);
        assert_eq!(a.batch, b.batch);
        assert_eq!(a.report.cost_dollars, b.report.cost_dollars);
    }

    #[test]
    fn thread_count_never_changes_results_or_reports() {
        // Large enough to span several 1024-row chunks.
        let mut c = Catalog::new();
        let n = 5000i64;
        c.add_table(
            Table::new(
                "t",
                vec![
                    ("id", Column::Int((0..n).collect())),
                    ("grp", Column::Int((0..n).map(|i| i % 37).collect())),
                    (
                        "x",
                        Column::Float((0..n).map(|i| (i as f64) * 0.25 + 0.1).collect()),
                    ),
                    (
                        "s",
                        Column::str((0..n).map(|i| format!("s{}", i % 11)).collect()),
                    ),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c.add_table(
            Table::new(
                "d",
                vec![
                    ("grp", Column::Int((0..37).collect())),
                    ("name", Column::str((0..37).map(|i| format!("g{i}")).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        let plan = PlanBuilder::scan("t", "t")
            .filter(Expr::col("t.x").cmp(CmpOp::Gt, Expr::int(100)))
            .join(PlanBuilder::scan("d", "d"), &[("t.grp", "d.grp")])
            .aggregate(
                &["d.name"],
                vec![
                    AggExpr {
                        func: AggFunc::Sum,
                        input: Some("t.x".into()),
                        output: "sx".into(),
                    },
                    AggExpr {
                        func: AggFunc::Min,
                        input: Some("t.s".into()),
                        output: "lo".into(),
                    },
                    AggExpr {
                        func: AggFunc::Max,
                        input: Some("t.x".into()),
                        output: "hi".into(),
                    },
                ],
            )
            .build();
        let serial = Executor::new(&c, Pricing::paper_defaults())
            .with_threads(1)
            .run(&plan)
            .expect("serial");
        for threads in [2, 4, 7] {
            let par = Executor::new(&c, Pricing::paper_defaults())
                .with_threads(threads)
                .run(&plan)
                .expect("parallel");
            assert_eq!(serial.batch, par.batch, "{threads} threads: batch differs");
            assert_eq!(
                serial.report, par.report,
                "{threads} threads: report differs"
            );
        }
    }
}
