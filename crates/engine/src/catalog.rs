//! Tables, schemas, statistics and the catalog.

use crate::batch::{Column, RecordBatch};
use crate::error::EngineError;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    Int,
    Float,
    Str,
}

impl ColumnType {
    /// Type keyword used in schema features (`Int`, `Float`, `String`).
    pub fn keyword(self) -> &'static str {
        match self {
            ColumnType::Int => "Int",
            ColumnType::Float => "Float",
            ColumnType::Str => "String",
        }
    }
}

/// Per-table statistics: the *numerical features* of Section IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    pub row_count: usize,
    pub column_count: usize,
    pub total_bytes: usize,
    /// Average distinct-value ratio across columns, a crude selectivity hint.
    pub avg_distinct_ratio: f64,
}

/// A stored base table or materialized-view result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub name: String,
    /// Unqualified column names, parallel to `data.columns`.
    pub column_names: Vec<String>,
    pub column_types: Vec<ColumnType>,
    pub data: RecordBatch,
    pub stats: TableStats,
}

impl Table {
    /// Build a table from named columns, computing statistics.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<(&str, Column)>,
    ) -> Result<Table, EngineError> {
        let name = name.into();
        let lens: HashSet<usize> = columns.iter().map(|(_, c)| c.len()).collect();
        if lens.len() > 1 {
            return Err(EngineError::RaggedColumns { table: name });
        }
        let column_names: Vec<String> = columns.iter().map(|(n, _)| n.to_string()).collect();
        let column_types: Vec<ColumnType> = columns
            .iter()
            .map(|(_, c)| match c {
                Column::Int(_) => ColumnType::Int,
                Column::Float(_) => ColumnType::Float,
                Column::Str(_) => ColumnType::Str,
            })
            .collect();
        let cols: Vec<Column> = columns.into_iter().map(|(_, c)| c).collect();
        let data = RecordBatch {
            names: column_names.clone(),
            columns: cols,
        };
        let stats = compute_stats(&data);
        Ok(Table {
            name,
            column_names,
            column_types,
            data,
            stats,
        })
    }

    /// Build a table directly from a batch produced by the executor (used
    /// when materializing views). Column names are kept as-is (they carry
    /// the defining plan's qualification).
    pub fn from_batch(name: impl Into<String>, batch: RecordBatch) -> Table {
        let column_names = batch.names.clone();
        let column_types = batch
            .columns
            .iter()
            .map(|c| match c {
                Column::Int(_) => ColumnType::Int,
                Column::Float(_) => ColumnType::Float,
                Column::Str(_) => ColumnType::Str,
            })
            .collect();
        let stats = compute_stats(&batch);
        Table {
            name: name.into(),
            column_names,
            column_types,
            data: batch,
            stats,
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.data.num_rows()
    }

    /// Approximate byte size of the stored data.
    pub fn byte_size(&self) -> usize {
        self.data.byte_size()
    }
}

fn compute_stats(data: &RecordBatch) -> TableStats {
    let rows = data.num_rows();
    let mut ratio_sum = 0.0;
    for c in &data.columns {
        let distinct = match c {
            Column::Int(v) => v.iter().collect::<HashSet<_>>().len(),
            Column::Float(v) => v.iter().map(|f| f.to_bits()).collect::<HashSet<_>>().len(),
            Column::Str(v) => v.iter().collect::<HashSet<_>>().len(),
        };
        ratio_sum += if rows == 0 {
            0.0
        } else {
            distinct as f64 / rows as f64
        };
    }
    TableStats {
        row_count: rows,
        column_count: data.num_columns(),
        total_bytes: data.byte_size(),
        avg_distinct_ratio: if data.num_columns() == 0 {
            0.0
        } else {
            ratio_sum / data.num_columns() as f64
        },
    }
}

/// The catalog: all base tables and materialized-view tables by name.
///
/// Tables are stored behind `Arc`, so cloning a catalog copies only the
/// name → table map, never the column data. That makes catalog snapshots
/// copy-on-write: `av-serve` publishes an `Arc<Catalog>` per deployment
/// epoch, and successive deployments share every unchanged table. Tables
/// are immutable once registered (mutation is add/drop only), so sharing
/// is always sound.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    /// Version counter bumped on every successful mutation (table added or
    /// dropped, including view materialization). Cached execution results
    /// keyed by `(plan fingerprint, epoch)` are invalidated by the bump.
    #[serde(default)]
    epoch: u64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; the name must be fresh.
    pub fn add_table(&mut self, table: Table) -> Result<(), EngineError> {
        if self.tables.contains_key(&table.name) {
            return Err(EngineError::DuplicateTable(table.name.clone()));
        }
        self.tables.insert(table.name.clone(), Arc::new(table));
        self.epoch += 1;
        Ok(())
    }

    /// Remove a table (used when dropping materialized views). The returned
    /// `Arc` may still be shared with catalog snapshots cloned earlier.
    pub fn drop_table(&mut self, name: &str) -> Option<Arc<Table>> {
        let removed = self.tables.remove(name);
        if removed.is_some() {
            self.epoch += 1;
        }
        removed
    }

    /// Current version of the catalog contents. Two catalogs with the same
    /// epoch that started from the same state hold the same tables, so the
    /// epoch is a sound cache-invalidation key for execution results.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(|t| t.as_ref())
    }

    /// Look up a table's shared handle (kept alive across snapshot clones).
    pub fn table_arc(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(name).cloned()
    }

    /// Names of all registered tables, in sorted (deterministic) order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        let mut names: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names.into_iter()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Unqualified column names of a table, for plan schema derivation.
    pub fn table_columns(&self, name: &str) -> Vec<String> {
        self.tables
            .get(name)
            .map(|t| t.column_names.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_reflect_data() {
        let t = Table::new(
            "t",
            vec![
                ("id", Column::Int(vec![1, 2, 3, 4])),
                ("grp", Column::Int(vec![0, 0, 1, 1])),
            ],
        )
        .expect("valid table");
        assert_eq!(t.stats.row_count, 4);
        assert_eq!(t.stats.column_count, 2);
        assert_eq!(t.stats.total_bytes, 64);
        // distinct ratios: 4/4 and 2/4 → avg 0.75
        assert!((t.stats.avg_distinct_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ragged_columns_rejected() {
        let err = Table::new(
            "bad",
            vec![
                ("a", Column::Int(vec![1])),
                ("b", Column::Int(vec![1, 2])),
            ],
        )
        .expect_err("ragged");
        assert_eq!(err, EngineError::RaggedColumns { table: "bad".into() });
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        let t = Table::new("t", vec![("a", Column::Int(vec![]))]).expect("ok");
        c.add_table(t.clone()).expect("first add ok");
        assert_eq!(
            c.add_table(t).expect_err("duplicate"),
            EngineError::DuplicateTable("t".into())
        );
    }

    #[test]
    fn empty_table_has_zero_stats() {
        let t = Table::new("e", vec![("a", Column::Int(vec![]))]).expect("ok");
        assert_eq!(t.stats.row_count, 0);
        assert_eq!(t.stats.avg_distinct_ratio, 0.0);
    }

    #[test]
    fn catalog_column_lookup() {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "t",
                vec![("x", Column::Int(vec![])), ("y", Column::str(vec![]))],
            )
            .expect("ok"),
        )
        .expect("ok");
        assert_eq!(c.table_columns("t"), vec!["x", "y"]);
        assert!(c.table_columns("missing").is_empty());
    }
}
