//! # av-engine — in-memory columnar query engine with cost metering
//!
//! The execution substrate for AutoView. The paper measures query costs on
//! MaxCompute / PostgreSQL; this crate plays that role: it executes logical
//! plans from `av-plan` over in-memory columnar tables while metering CPU and
//! memory usage, and converts usage into dollars with the cloud pricing model
//! of the paper's Definitions 1–3 (α storage $/GB, β CPU $/(core·min),
//! γ memory $/(GB·min)).
//!
//! It also owns materialized views: [`ViewStore`] materializes a subquery,
//! records its overhead `O_v = A_α(v) + A_{β,γ}(s)`, and the rewriter splices
//! view scans into query plans so the *actual* rewritten cost
//! `A_{β,γ}(q|v)` — the ground truth the Wide-Deep model learns — comes from
//! real execution.
//!
//! ```
//! use av_engine::{Catalog, Column, Executor, Pricing, Table};
//! use av_plan::{Expr, PlanBuilder};
//!
//! let mut catalog = Catalog::new();
//! catalog.add_table(Table::new(
//!     "t",
//!     vec![("id", Column::Int((0..100).collect())),
//!          ("v", Column::Int((0..100).map(|i| i % 7).collect()))],
//! ).unwrap());
//!
//! let plan = PlanBuilder::scan("t", "a")
//!     .filter(Expr::col("a.v").eq(Expr::int(3)))
//!     .project(&[("a.id", "id")])
//!     .build();
//! let exec = Executor::new(&catalog, Pricing::paper_defaults());
//! let result = exec.run(&plan).unwrap();
//! assert_eq!(result.batch.num_rows(), 14);
//! assert!(result.report.cost_dollars > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod cache;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod keys;
pub mod meter;
pub mod par;
pub mod preflight;
pub mod rewrite;
mod sel;
pub mod view;

pub use batch::{Column, RecordBatch};
pub use cache::{CacheStats, ExecCache, ShardedExecCache};
pub use catalog::{Catalog, ColumnType, Table, TableStats};
pub use error::EngineError;
pub use exec::{ExecResult, Executor};
pub use meter::{CostMeter, ExecutionReport, Pricing, ResourceUsage};
pub use preflight::{install_preflight, preflight_installed, PreflightFn};
pub use rewrite::{rewrite_subtree_with_view, rewrite_with_view, rewrite_with_views};
pub use view::{MaterializedView, ViewId, ViewStore};
