//! Pooled execution must be bitwise identical to `Par::serial()` — batches
//! *and* ExecutionReports — at every degree of parallelism, including while
//! other queries are in flight on the same shared pool. This is the
//! scheduler's determinism contract: chunk boundaries depend only on row
//! counts, per-chunk results fold in ascending chunk order, and the pool
//! only changes *who* computes a chunk, never *what* or *in which order
//! results combine*.

use av_engine::exec::Executor;
use av_engine::meter::Pricing;
use av_engine::{batch::Column, catalog::Catalog, catalog::Table};
use av_plan::{CmpOp, Expr, PlanBuilder};
use proptest::prelude::*;

const DOPS: [usize; 4] = [1, 2, 4, 16];

fn catalog_from(keys: Vec<i64>, vals: Vec<i64>) -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        Table::new(
            "ta",
            vec![("k", Column::Int(keys)), ("v", Column::Int(vals))],
        )
        .expect("valid table"),
    )
    .expect("catalog accepts");
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Filter + grouped aggregate over generated data: every DOP produces
    /// the serial batch and the serial report, bit for bit. `min_rows` is
    /// forced to 0 so the pool engages even at property-test row counts.
    #[test]
    fn pooled_execution_matches_serial_at_every_dop(
        keys in proptest::collection::vec(-6i64..6, 1..80),
        t in -6i64..6,
    ) {
        let vals: Vec<i64> = keys.iter().map(|k| k * 3 + 1).collect();
        let c = catalog_from(keys, vals);
        let plan = PlanBuilder::scan("ta", "a")
            .filter(Expr::col("a.k").cmp(CmpOp::Gt, Expr::int(t)))
            .count_star(&["a.v"], "n")
            .build();
        let serial = Executor::new(&c, Pricing::paper_defaults())
            .with_threads(1)
            .run(&plan)
            .expect("serial run");
        for dop in DOPS {
            let pooled = Executor::new(&c, Pricing::paper_defaults())
                .with_threads(dop)
                .with_par_min_rows(0)
                .run(&plan)
                .expect("pooled run");
            prop_assert_eq!(&serial.batch, &pooled.batch, "dop {} batch", dop);
            prop_assert_eq!(&serial.report, &pooled.report, "dop {} report", dop);
        }
    }
}

/// Eight concurrent query streams hammer the shared pool, each running the
/// JOB-like workload at a different DOP; every result must equal the
/// precomputed serial baseline even though chunk claims from all streams
/// interleave on the same workers. Tables here exceed `CHUNK_ROWS`, so the
/// parallel filter/join/aggregate paths genuinely engage.
#[test]
fn concurrent_queries_stay_bitwise_serial() {
    let w = av_workload::job::job_workload(0.02, 11);
    let plans = w.plans();
    assert!(!plans.is_empty());
    let serial = Executor::new(&w.catalog, Pricing::paper_defaults()).with_threads(1);
    let baseline: Vec<_> = plans
        .iter()
        .map(|p| serial.run(p).expect("serial baseline"))
        .collect();

    let streams = 8;
    let drivers = av_sched::Pool::new(streams);
    drivers.run(streams, streams, |stream| {
        let dop = DOPS[stream % DOPS.len()];
        let exec = Executor::new(&w.catalog, Pricing::paper_defaults())
            .with_threads(dop)
            .with_par_min_rows(0);
        for (i, p) in plans.iter().enumerate() {
            let r = exec.run(p).expect("pooled run");
            assert_eq!(
                baseline[i].batch, r.batch,
                "stream {stream} dop {dop} query {i}: batches diverge"
            );
            assert_eq!(
                baseline[i].report, r.report,
                "stream {stream} dop {dop} query {i}: reports diverge"
            );
        }
    });
}
