//! Property tests for the executor: algebraic laws over random data.

use av_engine::{Catalog, Column, Executor, Pricing, Table};
use av_plan::{CmpOp, Expr, JoinType, PlanBuilder, PlanNode};
use proptest::prelude::*;

fn catalog_from(a_keys: Vec<i64>, a_vals: Vec<i64>, b_keys: Vec<i64>) -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        Table::new(
            "ta",
            vec![
                ("k", Column::Int(a_keys)),
                ("v", Column::Int(a_vals)),
            ],
        )
        .expect("rectangular"),
    )
    .expect("fresh");
    c.add_table(Table::new("tb", vec![("k", Column::Int(b_keys))]).expect("rectangular"))
        .expect("fresh");
    c
}

fn exec(c: &Catalog, p: &av_plan::PlanRef) -> av_engine::ExecResult {
    Executor::new(c, Pricing::paper_defaults())
        .run(p)
        .expect("plan executes")
}

fn agg(func: av_plan::AggFunc, input: Option<&str>, output: &str) -> av_plan::AggExpr {
    av_plan::AggExpr {
        func,
        input: input.map(str::to_string),
        output: output.to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Filtering by `p AND q` equals filtering by `p` then by `q`.
    #[test]
    fn filter_conjunction_splits(
        keys in proptest::collection::vec(-5i64..5, 1..40),
        vals in proptest::collection::vec(-5i64..5, 40),
        t1 in -5i64..5,
        t2 in -5i64..5,
    ) {
        let n = keys.len();
        let c = catalog_from(keys, vals[..n].to_vec(), vec![0]);
        let p = Expr::col("a.k").cmp(CmpOp::Gt, Expr::int(t1));
        let q = Expr::col("a.v").cmp(CmpOp::Le, Expr::int(t2));

        let combined = PlanBuilder::scan("ta", "a")
            .filter(p.clone().and(q.clone()))
            .build();
        // Bypass the builder's filter merging to get two stacked filters.
        let stacked = PlanNode::Filter {
            input: PlanNode::Filter {
                input: PlanNode::TableScan { table: "ta".into(), alias: "a".into() }.into_ref(),
                predicate: p,
            }
            .into_ref(),
            predicate: q,
        }
        .into_ref();
        prop_assert_eq!(exec(&c, &combined).batch, exec(&c, &stacked).batch);
    }

    /// Inner-join row count is symmetric in its inputs.
    #[test]
    fn join_commutativity_row_count(
        a in proptest::collection::vec(-4i64..4, 1..30),
        b in proptest::collection::vec(-4i64..4, 1..30),
    ) {
        let n = a.len();
        let c = catalog_from(a.clone(), vec![0; n], b);
        let ab = PlanBuilder::scan("ta", "a")
            .join(PlanBuilder::scan("tb", "b"), &[("a.k", "b.k")])
            .build();
        let ba = PlanBuilder::scan("tb", "b")
            .join(PlanBuilder::scan("ta", "a"), &[("b.k", "a.k")])
            .build();
        prop_assert_eq!(exec(&c, &ab).batch.num_rows(), exec(&c, &ba).batch.num_rows());
    }

    /// COUNT(*) grouped equals the table's row count when summed.
    #[test]
    fn group_counts_sum_to_total(
        keys in proptest::collection::vec(-3i64..3, 1..50),
    ) {
        let n = keys.len();
        let c = catalog_from(keys, vec![0; n], vec![0]);
        let plan = PlanBuilder::scan("ta", "a").count_star(&["a.k"], "n").build();
        let r = exec(&c, &plan);
        let counts = r.batch.column("n").expect("count col");
        let total: i64 = (0..r.batch.num_rows())
            .map(|i| match counts.get(i) {
                av_plan::Value::Int(x) => x,
                other => panic!("count must be int, got {other:?}"),
            })
            .sum();
        prop_assert_eq!(total as usize, n);
    }

    /// Left join keeps exactly the probe side's row count when the build
    /// side has unique keys.
    #[test]
    fn left_join_unique_build_preserves_probe_rows(
        a in proptest::collection::vec(-8i64..8, 1..30),
    ) {
        let n = a.len();
        let unique: Vec<i64> = (-8..8).collect();
        let c = catalog_from(a, vec![0; n], unique);
        let plan = PlanBuilder::scan("ta", "a")
            .join_typed(PlanBuilder::scan("tb", "b"), &[("a.k", "b.k")], JoinType::Left)
            .build();
        prop_assert_eq!(exec(&c, &plan).batch.num_rows(), n);
    }

    /// Pushing a *selective* filter below a join never costs more than
    /// filtering after it. (An unselective filter can legitimately lose:
    /// it pays evaluation on every probe row while the late filter only
    /// sees the join's — possibly smaller — output. Our cost model makes
    /// pushdown a win exactly when the filter keeps at most half the rows,
    /// so the property is restricted to that regime.)
    #[test]
    fn selective_pushdown_never_increases_cost(
        a in proptest::collection::vec(-4i64..4, 5..40),
        b in proptest::collection::vec(-4i64..4, 5..40),
        t in -3i64..3,
    ) {
        let n = a.len();
        let kept = a.iter().filter(|&&k| k > t).count();
        prop_assume!(2 * kept <= n, "only selective filters are guaranteed wins");
        let c = catalog_from(a, vec![0; n], b);
        let pred = Expr::col("a.k").cmp(CmpOp::Gt, Expr::int(t));
        let pushed = PlanBuilder::scan("ta", "a")
            .filter(pred.clone())
            .join(PlanBuilder::scan("tb", "b"), &[("a.k", "b.k")])
            .build();
        let late = PlanNode::Filter {
            input: PlanBuilder::scan("ta", "a")
                .join(PlanBuilder::scan("tb", "b"), &[("a.k", "b.k")])
                .build(),
            predicate: pred,
        }
        .into_ref();
        let rp = exec(&c, &pushed);
        let rl = exec(&c, &late);
        prop_assert_eq!(rp.batch.num_rows(), rl.batch.num_rows());
        prop_assert!(rp.report.cost_dollars <= rl.report.cost_dollars + 1e-12);
    }

    /// The chunked-parallel executor is bit-identical to the serial one:
    /// same batches AND same cost reports, for any thread count. Chunk
    /// boundaries are fixed (1024 rows) and merges happen in chunk order,
    /// so thread scheduling can never leak into results or meters.
    #[test]
    fn parallel_execution_matches_serial(
        a in proptest::collection::vec(-6i64..6, 1..60),
        b in proptest::collection::vec(-6i64..6, 1..60),
        t in -5i64..5,
        threads in 2usize..8,
    ) {
        let n = a.len();
        let vals: Vec<i64> = a.iter().map(|&k| k.wrapping_mul(3) - 1).collect();
        let c = catalog_from(a, vals[..n].to_vec(), b);
        let plan = PlanBuilder::scan("ta", "a")
            .filter(Expr::col("a.k").cmp(CmpOp::Gt, Expr::int(t)))
            .join_typed(PlanBuilder::scan("tb", "b"), &[("a.k", "b.k")], JoinType::Left)
            .aggregate(
                &["b.k"],
                vec![
                    agg(av_plan::AggFunc::Count, None, "n"),
                    agg(av_plan::AggFunc::Sum, Some("a.v"), "s"),
                    agg(av_plan::AggFunc::Min, Some("a.v"), "lo"),
                    agg(av_plan::AggFunc::Max, Some("a.v"), "hi"),
                ],
            )
            .build();
        let serial = Executor::new(&c, Pricing::paper_defaults())
            .with_threads(1)
            .run(&plan)
            .expect("serial");
        let par = Executor::new(&c, Pricing::paper_defaults())
            .with_threads(threads)
            .run(&plan)
            .expect("parallel");
        prop_assert_eq!(serial.batch, par.batch);
        prop_assert_eq!(serial.report, par.report);
    }

    /// Selection-vector execution is bit-identical to the materializing
    /// reference path: same batches, same cost reports, over plans mixing
    /// typed filter kernels (int/float/string, stacked and conjoined),
    /// projections and grouped aggregates. This is the contract that lets
    /// `exec_bench` compare the two modes as a pure speedup.
    #[test]
    fn selection_vectors_match_reference_kernels(
        a in proptest::collection::vec(-6i64..6, 1..60),
        t1 in -5i64..5,
        t2 in -5i64..5,
        stacked in proptest::any::<bool>(),
    ) {
        let n = a.len();
        let vals: Vec<i64> = a.iter().map(|&k| k.wrapping_mul(7) + 2).collect();
        let c = catalog_from(a, vals[..n].to_vec(), vec![0]);
        let p = Expr::col("a.k").cmp(CmpOp::Gt, Expr::int(t1));
        let q = Expr::col("a.v").cmp(CmpOp::Le, Expr::int(t2));
        let builder = if stacked {
            // Two stacked filters: the second refines the selection.
            PlanBuilder::scan("ta", "a").filter(p).filter(q)
        } else {
            PlanBuilder::scan("ta", "a").filter(p.and(q))
        };
        let plan = builder
            .aggregate(
                &["a.k"],
                vec![
                    agg(av_plan::AggFunc::Count, None, "n"),
                    agg(av_plan::AggFunc::Sum, Some("a.v"), "s"),
                    agg(av_plan::AggFunc::Min, Some("a.v"), "lo"),
                    agg(av_plan::AggFunc::Max, Some("a.v"), "hi"),
                ],
            )
            .build();
        let optimized = exec(&c, &plan);
        let reference = Executor::new(&c, Pricing::paper_defaults())
            .with_reference_kernels(true)
            .run(&plan)
            .expect("reference");
        prop_assert_eq!(optimized.batch, reference.batch);
        prop_assert_eq!(optimized.report, reference.report);
    }

    /// A filtered plan that ends *without* an aggregate materializes at the
    /// root; both modes must still agree bitwise, including on projections.
    #[test]
    fn selection_vectors_match_reference_at_root(
        a in proptest::collection::vec(-6i64..6, 1..60),
        t in -5i64..5,
        project in proptest::any::<bool>(),
    ) {
        let n = a.len();
        let c = catalog_from(a, vec![3; n], vec![0]);
        let builder = PlanBuilder::scan("ta", "a")
            .filter(Expr::col("a.k").cmp(CmpOp::Ne, Expr::int(t)));
        let plan = if project {
            builder.project(&[("a.v", "v")]).build()
        } else {
            builder.build()
        };
        let optimized = exec(&c, &plan);
        let reference = Executor::new(&c, Pricing::paper_defaults())
            .with_reference_kernels(true)
            .run(&plan)
            .expect("reference");
        prop_assert_eq!(optimized.batch, reference.batch);
        prop_assert_eq!(optimized.report, reference.report);
    }

    /// A cache hit returns the same batch and the same report as the cold
    /// run, and never re-executes while the catalog is unchanged.
    #[test]
    fn cache_hit_reproduces_cold_run(
        a in proptest::collection::vec(-6i64..6, 1..50),
        t in -5i64..5,
    ) {
        let n = a.len();
        let c = catalog_from(a, vec![1; n], vec![0]);
        let plan = PlanBuilder::scan("ta", "a")
            .filter(Expr::col("a.k").cmp(CmpOp::Le, Expr::int(t)))
            .count_star(&["a.k"], "n")
            .build();
        let cache = av_engine::ExecCache::new(Pricing::paper_defaults());
        let cold = cache.run(&c, &plan).expect("cold");
        let warm = cache.run(&c, &plan).expect("warm");
        prop_assert_eq!(&cold.batch, &warm.batch);
        prop_assert_eq!(cold.report, warm.report);
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);
        // And the cached result matches a plain executor run.
        let direct = exec(&c, &plan);
        prop_assert_eq!(direct.batch, cold.batch);
        prop_assert_eq!(direct.report, cold.report);
    }

    /// Routing a query through a view admitted by the online lifecycle
    /// manager returns exactly the same rows as running it unrewritten —
    /// even when the view was defined under different table aliases.
    #[test]
    fn lifecycle_routed_query_matches_unrewritten(
        keys in proptest::collection::vec(-5i64..5, 1..40),
        vals in proptest::collection::vec(-5i64..5, 40),
        t in -5i64..5,
    ) {
        use av_online::{AdmitOutcome, LifecycleConfig, ViewLifecycleManager};

        let n = keys.len();
        let mut c = catalog_from(keys, vals[..n].to_vec(), vec![0]);

        // Shared subtree: filter + project. The query aggregates on top of
        // it; the view is the same subtree under a different alias.
        let subtree = |alias: &str| {
            let k = format!("{alias}.k");
            let v = format!("{alias}.v");
            PlanBuilder::scan("ta", alias)
                .filter(Expr::col(&k).cmp(CmpOp::Gt, Expr::int(t)))
                .project(&[(k.as_str(), k.as_str()), (v.as_str(), v.as_str())])
                .build()
        };
        let query = PlanBuilder::from_plan(subtree("a")).count_star(&["a.k"], "n").build();
        let view_plan = subtree("x");
        let view_fp = av_plan::Fingerprint::of(&av_equiv::canonicalize(&view_plan));

        let mut mgr = ViewLifecycleManager::new(LifecycleConfig {
            byte_budget: usize::MAX,
            min_benefit_per_byte: 0.0,
            tenant_byte_budget: usize::MAX,
        });
        let outcome = mgr
            .admit(&mut c, view_plan, view_fp, 1.0, Pricing::paper_defaults())
            .expect("view materializes");
        prop_assert!(matches!(outcome, AdmitOutcome::Admitted { .. }));

        let (routed, hits) = mgr.route(&c, &query);
        prop_assert!(hits > 0, "equivalent subtree must be routed");
        prop_assert_eq!(exec(&c, &query).batch, exec(&c, &routed).batch);
    }
}

/// End-to-end determinism on the JOB-like workload: every query produces the
/// same batch and the same cost report under serial (1 thread) and parallel
/// (4 threads) execution, and the cache echoes the cold report exactly.
/// Tables at this scale exceed the 1024-row chunk size, so the parallel
/// paths (filter mask, join probe, partial aggregates) really engage.
#[test]
fn job_workload_is_thread_count_invariant() {
    let w = av_workload::job::job_workload(0.02, 7);
    let plans = w.plans();
    assert!(!plans.is_empty());
    let serial = Executor::new(&w.catalog, Pricing::paper_defaults()).with_threads(1);
    let par = Executor::new(&w.catalog, Pricing::paper_defaults()).with_threads(4);
    let cache = av_engine::ExecCache::new(Pricing::paper_defaults()).with_threads(4);
    for (i, p) in plans.iter().enumerate() {
        let rs = serial.run(p).expect("serial run");
        let rp = par.run(p).expect("parallel run");
        assert_eq!(rs.batch, rp.batch, "query {i}: batches diverge");
        assert_eq!(rs.report, rp.report, "query {i}: reports diverge");
        let rc = cache.run(&w.catalog, p).expect("cached run");
        assert_eq!(rs.report, rc.report, "query {i}: cache diverges");
    }
    // A second pass over the workload is served entirely from the cache.
    for p in &plans {
        cache.run(&w.catalog, p).expect("warm run");
    }
    assert!(
        cache.stats().hits >= plans.len() as u64,
        "replaying the workload must hit the cache"
    );
}
