//! Workload analysis: subquery clustering, candidate selection and the
//! overlap relation.

use crate::canon::{canonicalize, shape_fingerprint};
use crate::predtest::plans_agree_on_predicates;
use av_plan::{enumerate_subqueries, Fingerprint, PlanNode, PlanRef};
use std::collections::{HashMap, HashSet};

/// One candidate subquery: the representative of an equivalence cluster,
/// chosen as the member with the least overhead (paper Section III,
/// pre-process).
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Index of this candidate (= cluster id), `j` in the ILP.
    pub id: usize,
    /// Representative plan in its original (non-canonical) form.
    pub plan: PlanRef,
    /// Canonicalized representative.
    pub canonical: PlanRef,
    /// Number of subquery instances in the cluster across the workload.
    pub instances: usize,
    /// Number of distinct queries containing a member of the cluster.
    pub query_frequency: usize,
}

/// A usable candidate for one query: the candidate id plus the fingerprint
/// of the query's *own* matching subtree (needed by the rewriter, since the
/// query's subtree may use different aliases than the representative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMatch {
    pub candidate: usize,
    pub subtree_fp: Fingerprint,
}

/// Result of analyzing a workload (paper Fig. 3 pre-process outputs).
#[derive(Debug, Clone)]
pub struct WorkloadAnalysis {
    /// Candidate subqueries, one per equivalence cluster with ≥ 1 instance.
    pub candidates: Vec<Candidate>,
    /// Per query: which candidates it can use, with its local subtree.
    pub query_matches: Vec<Vec<QueryMatch>>,
    /// Overlapping candidate pairs `(j, k)`, j < k — the `x_{jk}` of the ILP.
    pub overlap_pairs: Vec<(usize, usize)>,
    /// Total number of equivalent subquery pairs detected (Table I row).
    pub equivalent_pairs: usize,
    /// Total subquery instances enumerated.
    pub total_subqueries: usize,
}

impl WorkloadAnalysis {
    /// Dense overlap matrix `x[j][k]`.
    pub fn overlap_matrix(&self) -> Vec<Vec<bool>> {
        let n = self.candidates.len();
        let mut m = vec![vec![false; n]; n];
        for &(j, k) in &self.overlap_pairs {
            m[j][k] = true;
            m[k][j] = true;
        }
        m
    }

    /// Number of queries with at least one usable candidate (the paper's
    /// *associated queries*, `|Q|` in Table I).
    pub fn associated_queries(&self) -> usize {
        self.query_matches.iter().filter(|m| !m.is_empty()).count()
    }
}

/// Workload analyzer. `overhead_of` ranks cluster members when choosing the
/// representative (the paper picks the least-overhead member); the default
/// uses plan size as a proxy.
pub struct Analyzer<'a> {
    overhead_of: Box<dyn Fn(&PlanRef) -> f64 + 'a>,
    /// Keep only candidates whose cluster spans at least this many distinct
    /// queries. The default of 1 keeps everything; the end-to-end system
    /// uses 2 (views are only interesting when shared or reused).
    pub min_query_frequency: usize,
}

impl<'a> Analyzer<'a> {
    /// Analyzer with the default (plan-size) overhead proxy.
    pub fn new() -> Analyzer<'a> {
        Analyzer {
            overhead_of: Box::new(|p| p.node_count() as f64),
            min_query_frequency: 1,
        }
    }

    /// Analyzer with a caller-supplied overhead estimate (e.g. real
    /// materialization cost from the engine).
    pub fn with_overhead(f: impl Fn(&PlanRef) -> f64 + 'a) -> Analyzer<'a> {
        Analyzer {
            overhead_of: Box::new(f),
            min_query_frequency: 1,
        }
    }

    /// Run the full pre-process pipeline over a workload.
    pub fn analyze(&self, queries: &[PlanRef]) -> WorkloadAnalysis {
        // 1. Enumerate subquery instances.
        struct Instance {
            query: usize,
            plan: PlanRef,
            fp: Fingerprint,
            canonical: PlanRef,
            canon_fp: Fingerprint,
            shape_fp: Fingerprint,
        }
        let mut instances = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            for sub in enumerate_subqueries(q) {
                let canonical = canonicalize(&sub.plan);
                let canon_fp = Fingerprint::of(&canonical);
                let shape_fp = shape_fingerprint(&canonical);
                instances.push(Instance {
                    query: qi,
                    plan: sub.plan,
                    fp: sub.fingerprint,
                    canonical,
                    canon_fp,
                    shape_fp,
                });
            }
        }
        let total_subqueries = instances.len();

        // 2. Fast clustering by canonical fingerprint.
        let mut canon_groups: HashMap<Fingerprint, Vec<usize>> = HashMap::new();
        for (i, inst) in instances.iter().enumerate() {
            canon_groups.entry(inst.canon_fp).or_default().push(i);
        }

        // 3. Merge canonical groups that are shape-equal and predicate-
        //    equivalent (randomized semantic check), via union-find over
        //    group representatives.
        // Sorted so the union-find merge order (and with it the clustering
        // of not-fully-transitive predicate equivalences) is deterministic
        // rather than following HashMap iteration order.
        let mut group_keys: Vec<Fingerprint> = canon_groups.keys().copied().collect();
        group_keys.sort_unstable();
        let mut parent: Vec<usize> = (0..group_keys.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        let mut by_shape: HashMap<Fingerprint, Vec<usize>> = HashMap::new();
        for (gi, key) in group_keys.iter().enumerate() {
            let rep = canon_groups[key][0];
            by_shape
                .entry(instances[rep].shape_fp)
                .or_default()
                .push(gi);
        }
        let mut shape_keys: Vec<Fingerprint> = by_shape.keys().copied().collect();
        shape_keys.sort_unstable();
        for group in shape_keys.iter().map(|k| &by_shape[k]) {
            for w in 1..group.len() {
                let (g0, gw) = (group[0], group[w]);
                let r0 = canon_groups[&group_keys[g0]][0];
                let rw = canon_groups[&group_keys[gw]][0];
                if plans_agree_on_predicates(&instances[r0].canonical, &instances[rw].canonical)
                {
                    let (a, b) = (find(&mut parent, g0), find(&mut parent, gw));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }

        // 4. Final clusters.
        let mut clusters: HashMap<usize, Vec<usize>> = HashMap::new();
        for (gi, key) in group_keys.iter().enumerate() {
            let root = find(&mut parent, gi);
            clusters
                .entry(root)
                .or_default()
                .extend(canon_groups[key].iter().copied());
        }

        // Deterministic cluster order: by smallest member fingerprint.
        let mut cluster_list: Vec<Vec<usize>> = clusters.into_values().collect();
        for c in &mut cluster_list {
            c.sort_unstable();
        }
        cluster_list.sort_by_key(|c| c[0]);

        // 5. Representatives, counting, filtering.
        let mut equivalent_pairs = 0;
        let mut candidates = Vec::new();
        let mut instance_cluster: HashMap<usize, usize> = HashMap::new();
        for members in &cluster_list {
            let n = members.len();
            equivalent_pairs += n * (n - 1) / 2;
            let queries_in: HashSet<usize> =
                members.iter().map(|&m| instances[m].query).collect();
            if queries_in.len() < self.min_query_frequency {
                continue;
            }
            let rep = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    (self.overhead_of)(&instances[a].plan)
                        .total_cmp(&(self.overhead_of)(&instances[b].plan))
                })
                .expect("cluster non-empty");
            let id = candidates.len();
            for &m in members {
                instance_cluster.insert(m, id);
            }
            candidates.push(Candidate {
                id,
                plan: instances[rep].plan.clone(),
                canonical: instances[rep].canonical.clone(),
                instances: n,
                query_frequency: queries_in.len(),
            });
        }

        // 6. Per-query usable candidates (first matching subtree per
        //    candidate, outermost wins — instances were enumerated pre-order).
        let mut query_matches: Vec<Vec<QueryMatch>> = vec![Vec::new(); queries.len()];
        for (i, inst) in instances.iter().enumerate() {
            if let Some(&cand) = instance_cluster.get(&i) {
                let qm = &mut query_matches[inst.query];
                if !qm.iter().any(|m| m.candidate == cand) {
                    qm.push(QueryMatch {
                        candidate: cand,
                        subtree_fp: inst.fp,
                    });
                }
            }
        }

        // 7. Overlap pairs between candidates (Def. 5): their plans share a
        //    common subtree of ≥ 2 operators. Each subtree is canonicalized
        //    *independently* so that containment is detected across alias
        //    numbering (a nested Project inside one candidate's Join matches
        //    the standalone Project candidate even though, within the Join's
        //    canonical form, its aliases are numbered differently).
        //    Bare-scan sharing is excluded — two different filters over the
        //    same table replace different subtrees of a query and coexist.
        let mut overlap_pairs = Vec::new();
        let fps: Vec<HashSet<Fingerprint>> = candidates
            .iter()
            .map(|c| nontrivial_subtree_fps(&c.plan))
            .collect();
        for j in 0..candidates.len() {
            for k in j + 1..candidates.len() {
                if !fps[j].is_disjoint(&fps[k]) {
                    overlap_pairs.push((j, k));
                }
            }
        }

        WorkloadAnalysis {
            candidates,
            query_matches,
            overlap_pairs,
            equivalent_pairs,
            total_subqueries,
        }
    }
}

impl Default for Analyzer<'_> {
    fn default() -> Self {
        Analyzer::new()
    }
}

/// Fingerprints of every multi-operator subtree, each canonicalized in
/// isolation so structurally-equal subtrees match regardless of where they
/// sit in their parent plan.
fn nontrivial_subtree_fps(plan: &PlanRef) -> HashSet<Fingerprint> {
    let mut set = HashSet::new();
    collect(plan, &mut set);
    fn collect(plan: &PlanRef, set: &mut HashSet<Fingerprint>) {
        if plan.node_count() >= 2 {
            set.insert(Fingerprint::of(&canonicalize(plan)));
        }
        match plan.as_ref() {
            PlanNode::TableScan { .. } => {}
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Aggregate { input, .. } => collect(input, set),
            PlanNode::Join { left, right, .. } => {
                collect(left, set);
                collect(right, set);
            }
        }
    }
    set
}

/// Analyze a workload with default settings.
pub fn analyze_workload(queries: &[PlanRef]) -> WorkloadAnalysis {
    Analyzer::new().analyze(queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_plan::parse_query;

    fn q(sql: &str) -> PlanRef {
        parse_query(sql).expect("parses")
    }

    #[test]
    fn shared_subquery_clusters_across_queries() {
        let queries = vec![
            q("select t.uid, count(*) as n from memo t where t.dt = '1010' group by t.uid"),
            q("select t.uid, max(t.v) as m from memo t where t.dt = '1010' group by t.uid"),
        ];
        // Both queries share no *identical* Aggregate (different aggs), but
        // they have no common Project/Join either — so clusters are
        // singletons and nothing is shared.
        let a = analyze_workload(&queries);
        assert!(a.candidates.iter().all(|c| c.query_frequency == 1));
    }

    #[test]
    fn identical_subqueries_with_different_aliases_cluster() {
        let queries = vec![
            q("select t1.uid from memo t1 where t1.dt = '1010' and t1.k = 1"),
            q("select t9.uid from memo t9 where t9.k = 1 and t9.dt = '1010'"),
        ];
        let a = analyze_workload(&queries);
        let shared: Vec<_> = a
            .candidates
            .iter()
            .filter(|c| c.query_frequency == 2)
            .collect();
        assert_eq!(shared.len(), 1, "the Project subquery is shared");
        assert_eq!(a.equivalent_pairs, 1);
    }

    #[test]
    fn query_matches_point_into_own_query() {
        let q1 = q("select t1.uid from memo t1 where t1.k = 1");
        let q2 = q("select t2.uid from memo t2 where t2.k = 1");
        let a = analyze_workload(&[q1.clone(), q2.clone()]);
        let shared = a
            .candidates
            .iter()
            .find(|c| c.query_frequency == 2)
            .expect("shared candidate");
        for (qi, query) in [&q1, &q2].iter().enumerate() {
            let m = a.query_matches[qi]
                .iter()
                .find(|m| m.candidate == shared.id)
                .expect("match present");
            assert!(
                av_plan::subquery::contains_subtree(query, m.subtree_fp),
                "subtree fingerprint must exist inside the query itself"
            );
        }
    }

    #[test]
    fn nested_subqueries_overlap() {
        // One query: Aggregate → Join → two Projects. The Join candidate and
        // each Project candidate share the Project subtree → overlap.
        let query = q("select t1.uid, count(*) as n from \
             (select a.uid from memo a where a.k = 1) t1 \
             join (select b.uid from act b where b.j = 2) t2 \
             on t1.uid = t2.uid group by t1.uid");
        let a = analyze_workload(&[query]);
        assert!(
            !a.overlap_pairs.is_empty(),
            "join candidate overlaps its input projects"
        );
    }

    #[test]
    fn same_table_different_filters_do_not_overlap() {
        let q1 = q("select a.x from t a where a.k = 1");
        let q2 = q("select a.x from t a where a.k = 2");
        let a = analyze_workload(&[q1, q2]);
        assert_eq!(a.candidates.len(), 2);
        assert!(
            a.overlap_pairs.is_empty(),
            "bare scan sharing must not count as overlap"
        );
    }

    #[test]
    fn min_query_frequency_filters_singletons() {
        let q1 = q("select t1.uid from memo t1 where t1.k = 1");
        let q2 = q("select t2.uid from memo t2 where t2.k = 1");
        let q3 = q("select t3.zzz from other t3 where t3.w = 9");
        let mut an = Analyzer::new();
        an.min_query_frequency = 2;
        let a = an.analyze(&[q1, q2, q3]);
        assert_eq!(a.candidates.len(), 1);
        assert_eq!(a.associated_queries(), 2);
    }

    #[test]
    fn representative_minimizes_overhead() {
        // Two equivalent plans; bias the overhead function toward the second.
        let q1 = q("select t1.uid from memo t1 where t1.k = 1");
        let q2 = q("select t2.uid from memo t2 where t2.k = 1");
        let plans = [q1.clone(), q2.clone()];
        let an = Analyzer::with_overhead(move |p| {
            // Prefer (lower overhead for) the q2 variant.
            if av_plan::Fingerprint::of(p) == av_plan::Fingerprint::of(&q2) {
                1.0
            } else {
                2.0
            }
        });
        let a = an.analyze(&plans);
        let shared = a
            .candidates
            .iter()
            .find(|c| c.query_frequency == 2)
            .expect("shared");
        assert_eq!(
            av_plan::Fingerprint::of(&shared.plan),
            av_plan::Fingerprint::of(&plans[1])
        );
    }

    #[test]
    fn empty_workload_analysis() {
        let a = analyze_workload(&[]);
        assert!(a.candidates.is_empty());
        assert_eq!(a.total_subqueries, 0);
        assert_eq!(a.equivalent_pairs, 0);
        assert_eq!(a.associated_queries(), 0);
    }
}
