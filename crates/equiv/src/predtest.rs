//! Randomized semantic comparison of predicates.
//!
//! Substitute for EQUITAS's SMT check: two predicates over the same columns
//! are compared by evaluating both under many randomized assignments drawn
//! from a *literal-aware* domain — every literal appearing in either
//! predicate, its integer neighbours (to probe `<` vs `<=` boundaries), and
//! random fillers. If the predicates ever disagree they are inequivalent;
//! if they agree on every probe we declare them equivalent. The error is
//! one-sided and vanishes geometrically in the number of probes for the
//! equality/range fragment our workloads use.

use av_plan::{Expr, Value};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Number of randomized assignments per comparison.
const PROBES: usize = 128;

/// Decide whether two predicates are semantically equivalent over their
/// referenced columns (see module docs). Deterministic: the probe RNG is
/// seeded from the predicates themselves.
pub fn predicates_equivalent(a: &Expr, b: &Expr) -> bool {
    let mut cols = a.referenced_columns();
    for c in b.referenced_columns() {
        if !cols.contains(&c) {
            cols.push(c);
        }
    }
    // Different column sets can still be equivalent (e.g. `x=1 AND TRUE`),
    // so we do not shortcut on column mismatch; the probes decide.

    let mut pool_int: Vec<i64> = Vec::new();
    let mut pool_str: Vec<String> = Vec::new();
    collect_literals(a, &mut pool_int, &mut pool_str);
    collect_literals(b, &mut pool_int, &mut pool_str);
    // Boundary neighbours distinguish strict from non-strict comparisons.
    let neighbours: Vec<i64> = pool_int
        .iter()
        .flat_map(|&v| [v - 1, v + 1])
        .collect();
    pool_int.extend(neighbours);
    pool_int.sort_unstable();
    pool_int.dedup();
    pool_str.sort();
    pool_str.dedup();

    let seed = seed_from(a, b);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    for _ in 0..PROBES {
        let mut assignment: HashMap<String, Value> = HashMap::new();
        for c in &cols {
            assignment.insert(c.clone(), random_value(&mut rng, &pool_int, &pool_str));
        }
        let resolve = |name: &str| assignment.get(name).cloned().unwrap_or(Value::Null);
        if a.eval_bool(&resolve) != b.eval_bool(&resolve) {
            return false;
        }
    }
    true
}

fn random_value(rng: &mut ChaCha8Rng, ints: &[i64], strs: &[String]) -> Value {
    // Mix literal-pool values (high probability, to hit predicate branch
    // points) with random fillers (to catch always-true/false degeneracies).
    match rng.gen_range(0..10) {
        0..=5 if !ints.is_empty() => Value::Int(ints[rng.gen_range(0..ints.len())]),
        6..=7 if !strs.is_empty() => Value::Str(strs[rng.gen_range(0..strs.len())].clone()),
        8 => Value::Int(rng.gen_range(-1000..1000)),
        _ => {
            if strs.is_empty() {
                Value::Int(rng.gen_range(-1000..1000))
            } else {
                Value::Str(format!("r{}", rng.gen_range(0..1000)))
            }
        }
    }
}

fn collect_literals(e: &Expr, ints: &mut Vec<i64>, strs: &mut Vec<String>) {
    match e {
        Expr::Literal(Value::Int(i)) => ints.push(*i),
        Expr::Literal(Value::Float(f)) => ints.push(*f as i64),
        Expr::Literal(Value::Str(s)) => strs.push(s.clone()),
        Expr::Literal(Value::Null) | Expr::Column(_) => {}
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            collect_literals(left, ints, strs);
            collect_literals(right, ints, strs);
        }
        Expr::And(v) | Expr::Or(v) => v.iter().for_each(|e| collect_literals(e, ints, strs)),
        Expr::Not(e) => collect_literals(e, ints, strs),
    }
}

fn seed_from(a: &Expr, b: &Expr) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    a.hash(&mut h);
    b.hash(&mut h);
    h.finish()
}

/// Compare two shape-identical plans predicate-by-predicate (pre-order).
/// Returns false if the predicate lists differ in length.
pub fn plans_agree_on_predicates(a: &av_plan::PlanRef, b: &av_plan::PlanRef) -> bool {
    let pa = crate::canon::collect_predicates(a);
    let pb = crate::canon::collect_predicates(b);
    pa.len() == pb.len()
        && pa
            .iter()
            .zip(&pb)
            .all(|(x, y)| x == y || predicates_equivalent(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_plan::CmpOp;

    #[test]
    fn identical_predicates_agree() {
        let e = Expr::col("x").eq(Expr::int(5));
        assert!(predicates_equivalent(&e, &e.clone()));
    }

    #[test]
    fn negated_range_equals_complement() {
        // NOT(x < 5) ≡ x >= 5 — beyond canonicalization, caught semantically.
        let a = Expr::Not(Box::new(Expr::col("x").cmp(CmpOp::Lt, Expr::int(5))));
        let b = Expr::col("x").cmp(CmpOp::Ge, Expr::int(5));
        assert!(predicates_equivalent(&a, &b));
    }

    #[test]
    fn strict_vs_nonstrict_distinguished() {
        let a = Expr::col("x").cmp(CmpOp::Lt, Expr::int(5));
        let b = Expr::col("x").cmp(CmpOp::Le, Expr::int(5));
        assert!(!predicates_equivalent(&a, &b));
    }

    #[test]
    fn or_commutativity_detected() {
        let a = Expr::Or(vec![
            Expr::col("x").eq(Expr::int(1)),
            Expr::col("x").eq(Expr::int(2)),
        ]);
        let b = Expr::Or(vec![
            Expr::col("x").eq(Expr::int(2)),
            Expr::col("x").eq(Expr::int(1)),
        ]);
        assert!(predicates_equivalent(&a, &b));
    }

    #[test]
    fn different_string_literals_distinguished() {
        let a = Expr::col("s").eq(Expr::str("pen"));
        let b = Expr::col("s").eq(Expr::str("pencil"));
        assert!(!predicates_equivalent(&a, &b));
    }

    #[test]
    fn demorgan_equivalence_detected() {
        // NOT(a=1 AND b=2) ≡ NOT(a=1) OR NOT(b=2)
        let a = Expr::Not(Box::new(
            Expr::col("a").eq(Expr::int(1)).and(Expr::col("b").eq(Expr::int(2))),
        ));
        let b = Expr::Or(vec![
            Expr::Not(Box::new(Expr::col("a").eq(Expr::int(1)))),
            Expr::Not(Box::new(Expr::col("b").eq(Expr::int(2)))),
        ]);
        assert!(predicates_equivalent(&a, &b));
    }

    #[test]
    fn range_conjunction_vs_disjoint_range() {
        // x > 3 AND x < 10  vs  x > 3 AND x < 11 must differ (x = 10).
        let a = Expr::col("x")
            .cmp(CmpOp::Gt, Expr::int(3))
            .and(Expr::col("x").cmp(CmpOp::Lt, Expr::int(10)));
        let b = Expr::col("x")
            .cmp(CmpOp::Gt, Expr::int(3))
            .and(Expr::col("x").cmp(CmpOp::Lt, Expr::int(11)));
        assert!(!predicates_equivalent(&a, &b));
    }

    #[test]
    fn deterministic_result() {
        let a = Expr::col("x").cmp(CmpOp::Gt, Expr::int(0));
        let b = Expr::col("x").cmp(CmpOp::Ge, Expr::int(1));
        // For integer domains these agree; what matters here is determinism.
        let r1 = predicates_equivalent(&a, &b);
        let r2 = predicates_equivalent(&a, &b);
        assert_eq!(r1, r2);
    }
}
