//! Randomized semantic comparison of predicates.
//!
//! Substitute for EQUITAS's SMT check: two predicates over the same columns
//! are compared by evaluating both under many randomized assignments drawn
//! from a *literal-aware* domain — every literal appearing in either
//! predicate, its integer neighbours (to probe `<` vs `<=` boundaries), and
//! random fillers. If the predicates ever disagree they are inequivalent;
//! if they agree on every probe we declare them equivalent. The error is
//! one-sided and vanishes geometrically in the number of probes for the
//! equality/range fragment our workloads use.

use av_plan::{Expr, Value};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Number of randomized assignments per comparison.
const PROBES: usize = 128;

/// Cap on the size of the exhaustive boundary-product enumeration. JOB-style
/// conjunctions touch 1–4 columns with a handful of boundary values each, so
/// the product is typically well under a thousand assignments.
const MAX_PRODUCT: usize = 20_000;

/// Decide whether two predicates are semantically equivalent over their
/// referenced columns (see module docs). Deterministic: an exhaustive sweep
/// over the cartesian product of each column's boundary values runs first
/// (complete for the conjunctive equality/range fragment — every region a
/// conjunction of per-column intervals can carve out has a corner on a
/// literal boundary), then the seeded randomized probes cover whatever the
/// product pass could not enumerate.
pub fn predicates_equivalent(a: &Expr, b: &Expr) -> bool {
    let mut cols = a.referenced_columns();
    for c in b.referenced_columns() {
        if !cols.contains(&c) {
            cols.push(c);
        }
    }
    // Different column sets can still be equivalent (e.g. `x=1 AND TRUE`),
    // so we do not shortcut on column mismatch; the probes decide.

    let mut pool_int: Vec<i64> = Vec::new();
    let mut pool_str: Vec<String> = Vec::new();
    collect_literals(a, &mut pool_int, &mut pool_str);
    collect_literals(b, &mut pool_int, &mut pool_str);
    // Boundary neighbours distinguish strict from non-strict comparisons.
    let neighbours: Vec<i64> = pool_int
        .iter()
        .flat_map(|&v| [v - 1, v + 1])
        .collect();
    pool_int.extend(neighbours);
    pool_int.sort_unstable();
    pool_int.dedup();
    pool_str.sort();
    pool_str.dedup();

    if !exhaustive_boundary_product(a, b, &cols, &pool_int, &pool_str) {
        return false;
    }

    let seed = seed_from(a, b);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    for _ in 0..PROBES {
        let mut assignment: HashMap<String, Value> = HashMap::new();
        for c in &cols {
            assignment.insert(c.clone(), random_value(&mut rng, &pool_int, &pool_str));
        }
        let resolve = |name: &str| assignment.get(name).cloned().unwrap_or(Value::Null);
        if a.eval_bool(&resolve) != b.eval_bool(&resolve) {
            return false;
        }
    }
    true
}

/// Exhaustively evaluate both predicates over the cartesian product of each
/// column's *own* boundary values (the literals it is directly compared to,
/// plus their integer neighbours; columns tied by column-column comparisons
/// share their pools). Random probes assign columns independently, so the
/// chance of jointly hitting every conjunct's branch point decays with
/// conjunction width — a `kind=6 AND year>2014` vs `kind=2 AND year>1963`
/// disagreement needs `kind` *and* `year` on the right values in the same
/// probe, which 128 independent draws miss ~15% of the time. The product
/// enumeration hits every corner deterministically. Returns `true` when the
/// predicates agree on every enumerated assignment (or when the product
/// exceeds `MAX_PRODUCT` and the caller must rely on randomized probes).
fn exhaustive_boundary_product(
    a: &Expr,
    b: &Expr,
    cols: &[String],
    global_int: &[i64],
    global_str: &[String],
) -> bool {
    if cols.is_empty() {
        let resolve = |_: &str| Value::Null;
        return a.eval_bool(&resolve) == b.eval_bool(&resolve);
    }

    // Union-find over columns tied by column-column comparisons, so `x = y`
    // pools the boundary values of both sides.
    let idx: HashMap<&str, usize> = cols.iter().enumerate().map(|(i, c)| (c.as_str(), i)).collect();
    let mut parent: Vec<usize> = (0..cols.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut pools_int: Vec<Vec<i64>> = vec![Vec::new(); cols.len()];
    let mut pools_str: Vec<Vec<String>> = vec![Vec::new(); cols.len()];
    for e in [a, b] {
        collect_per_column(e, &idx, &mut pools_int, &mut pools_str, &mut parent);
    }
    // Merge each group's pools into its root.
    for i in 0..cols.len() {
        let r = find(&mut parent, i);
        if r != i {
            let ints = std::mem::take(&mut pools_int[i]);
            pools_int[r].extend(ints);
            let strs = std::mem::take(&mut pools_str[i]);
            pools_str[r].extend(strs);
        }
    }

    // Candidate values per column: its group's boundary values with integer
    // neighbours, and — when the column has no boundary of its own — the
    // global pools as a fallback.
    let mut candidates: Vec<Vec<Value>> = Vec::with_capacity(cols.len());
    for i in 0..cols.len() {
        let r = find(&mut parent, i);
        let mut ints: Vec<i64> = pools_int[r]
            .iter()
            .flat_map(|&v| [v - 1, v, v + 1])
            .collect();
        let mut strs: Vec<String> = pools_str[r].clone();
        if ints.is_empty() && strs.is_empty() {
            ints.extend_from_slice(global_int);
            strs.extend_from_slice(global_str);
            if ints.is_empty() && strs.is_empty() {
                ints.extend_from_slice(&[0, 1]);
            }
        }
        ints.sort_unstable();
        ints.dedup();
        strs.sort();
        strs.dedup();
        // No Null probes: the engine's predicate evaluation is two-valued
        // (`Not(Null-cmp)` flips to true) and workload columns are non-null,
        // so probing Null would refute equivalences the engine honours —
        // matching the randomized path, which draws from the same domain.
        let mut vals: Vec<Value> = ints.into_iter().map(Value::Int).collect();
        vals.extend(strs.into_iter().map(Value::Str));
        candidates.push(vals);
    }

    let total: usize = candidates
        .iter()
        .try_fold(1usize, |acc, c| {
            acc.checked_mul(c.len()).filter(|&t| t <= MAX_PRODUCT)
        })
        .unwrap_or(0);
    if total == 0 {
        return true; // product too large — randomized probes take over
    }

    // Mixed-radix sweep over the product.
    let mut digits = vec![0usize; cols.len()];
    loop {
        let assignment: HashMap<&str, &Value> = cols
            .iter()
            .zip(&digits)
            .map(|(c, &d)| (c.as_str(), &candidates[idx[c.as_str()]][d]))
            .collect();
        let resolve = |name: &str| assignment.get(name).copied().cloned().unwrap_or(Value::Null);
        if a.eval_bool(&resolve) != b.eval_bool(&resolve) {
            return false;
        }
        let mut k = 0;
        loop {
            if k == digits.len() {
                return true;
            }
            digits[k] += 1;
            if digits[k] < candidates[k].len() {
                break;
            }
            digits[k] = 0;
            k += 1;
        }
    }
}

/// Record, per column, the literals it is directly compared against, and tie
/// columns compared to each other in the union-find. Literals inside
/// arithmetic or otherwise complex comparisons are credited to every column
/// referenced by that comparison.
fn collect_per_column(
    e: &Expr,
    idx: &HashMap<&str, usize>,
    pools_int: &mut [Vec<i64>],
    pools_str: &mut [Vec<String>],
    parent: &mut Vec<usize>,
) {
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    match e {
        Expr::Cmp { left, right, .. } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                if let Some(&i) = idx.get(c.as_str()) {
                    match v {
                        Value::Int(n) => pools_int[i].push(*n),
                        Value::Float(f) => pools_int[i].push(*f as i64),
                        Value::Str(s) => pools_str[i].push(s.clone()),
                        Value::Null => {}
                    }
                }
            }
            (Expr::Column(c1), Expr::Column(c2)) => {
                if let (Some(&i), Some(&j)) = (idx.get(c1.as_str()), idx.get(c2.as_str())) {
                    let (a, b) = (find(parent, i), find(parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
            _ => {
                // Complex comparison: credit its literals to every column it
                // references so the product still sweeps their boundaries.
                let mut ints = Vec::new();
                let mut strs = Vec::new();
                collect_literals(e, &mut ints, &mut strs);
                for c in e.referenced_columns() {
                    if let Some(&i) = idx.get(c.as_str()) {
                        pools_int[i].extend_from_slice(&ints);
                        pools_str[i].extend_from_slice(&strs);
                    }
                }
            }
        },
        Expr::And(v) | Expr::Or(v) => {
            for p in v {
                collect_per_column(p, idx, pools_int, pools_str, parent);
            }
        }
        Expr::Not(inner) => collect_per_column(inner, idx, pools_int, pools_str, parent),
        Expr::Column(_) | Expr::Literal(_) | Expr::Arith { .. } => {}
    }
}

fn random_value(rng: &mut ChaCha8Rng, ints: &[i64], strs: &[String]) -> Value {
    // Mix literal-pool values (high probability, to hit predicate branch
    // points) with random fillers (to catch always-true/false degeneracies).
    match rng.gen_range(0..10) {
        0..=5 if !ints.is_empty() => Value::Int(ints[rng.gen_range(0..ints.len())]),
        6..=7 if !strs.is_empty() => Value::Str(strs[rng.gen_range(0..strs.len())].clone()),
        8 => Value::Int(rng.gen_range(-1000..1000)),
        _ => {
            if strs.is_empty() {
                Value::Int(rng.gen_range(-1000..1000))
            } else {
                Value::Str(format!("r{}", rng.gen_range(0..1000)))
            }
        }
    }
}

fn collect_literals(e: &Expr, ints: &mut Vec<i64>, strs: &mut Vec<String>) {
    match e {
        Expr::Literal(Value::Int(i)) => ints.push(*i),
        Expr::Literal(Value::Float(f)) => ints.push(*f as i64),
        Expr::Literal(Value::Str(s)) => strs.push(s.clone()),
        Expr::Literal(Value::Null) | Expr::Column(_) => {}
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            collect_literals(left, ints, strs);
            collect_literals(right, ints, strs);
        }
        Expr::And(v) | Expr::Or(v) => v.iter().for_each(|e| collect_literals(e, ints, strs)),
        Expr::Not(e) => collect_literals(e, ints, strs),
    }
}

fn seed_from(a: &Expr, b: &Expr) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    a.hash(&mut h);
    b.hash(&mut h);
    h.finish()
}

/// Compare two shape-identical plans predicate-by-predicate (pre-order).
/// Returns false if the predicate lists differ in length.
pub fn plans_agree_on_predicates(a: &av_plan::PlanRef, b: &av_plan::PlanRef) -> bool {
    let pa = crate::canon::collect_predicates(a);
    let pb = crate::canon::collect_predicates(b);
    pa.len() == pb.len()
        && pa
            .iter()
            .zip(&pb)
            .all(|(x, y)| x == y || predicates_equivalent(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_plan::CmpOp;

    #[test]
    fn identical_predicates_agree() {
        let e = Expr::col("x").eq(Expr::int(5));
        assert!(predicates_equivalent(&e, &e.clone()));
    }

    #[test]
    fn negated_range_equals_complement() {
        // NOT(x < 5) ≡ x >= 5 — beyond canonicalization, caught semantically.
        let a = Expr::Not(Box::new(Expr::col("x").cmp(CmpOp::Lt, Expr::int(5))));
        let b = Expr::col("x").cmp(CmpOp::Ge, Expr::int(5));
        assert!(predicates_equivalent(&a, &b));
    }

    #[test]
    fn strict_vs_nonstrict_distinguished() {
        let a = Expr::col("x").cmp(CmpOp::Lt, Expr::int(5));
        let b = Expr::col("x").cmp(CmpOp::Le, Expr::int(5));
        assert!(!predicates_equivalent(&a, &b));
    }

    #[test]
    fn or_commutativity_detected() {
        let a = Expr::Or(vec![
            Expr::col("x").eq(Expr::int(1)),
            Expr::col("x").eq(Expr::int(2)),
        ]);
        let b = Expr::Or(vec![
            Expr::col("x").eq(Expr::int(2)),
            Expr::col("x").eq(Expr::int(1)),
        ]);
        assert!(predicates_equivalent(&a, &b));
    }

    #[test]
    fn different_string_literals_distinguished() {
        let a = Expr::col("s").eq(Expr::str("pen"));
        let b = Expr::col("s").eq(Expr::str("pencil"));
        assert!(!predicates_equivalent(&a, &b));
    }

    #[test]
    fn demorgan_equivalence_detected() {
        // NOT(a=1 AND b=2) ≡ NOT(a=1) OR NOT(b=2)
        let a = Expr::Not(Box::new(
            Expr::col("a").eq(Expr::int(1)).and(Expr::col("b").eq(Expr::int(2))),
        ));
        let b = Expr::Or(vec![
            Expr::Not(Box::new(Expr::col("a").eq(Expr::int(1)))),
            Expr::Not(Box::new(Expr::col("b").eq(Expr::int(2)))),
        ]);
        assert!(predicates_equivalent(&a, &b));
    }

    #[test]
    fn range_conjunction_vs_disjoint_range() {
        // x > 3 AND x < 10  vs  x > 3 AND x < 11 must differ (x = 10).
        let a = Expr::col("x")
            .cmp(CmpOp::Gt, Expr::int(3))
            .and(Expr::col("x").cmp(CmpOp::Lt, Expr::int(10)));
        let b = Expr::col("x")
            .cmp(CmpOp::Gt, Expr::int(3))
            .and(Expr::col("x").cmp(CmpOp::Lt, Expr::int(11)));
        assert!(!predicates_equivalent(&a, &b));
    }

    #[test]
    fn deterministic_result() {
        let a = Expr::col("x").cmp(CmpOp::Gt, Expr::int(0));
        let b = Expr::col("x").cmp(CmpOp::Ge, Expr::int(1));
        // For integer domains these agree; what matters here is determinism.
        let r1 = predicates_equivalent(&a, &b);
        let r2 = predicates_equivalent(&a, &b);
        assert_eq!(r1, r2);
    }
}
