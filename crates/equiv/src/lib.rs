//! # av-equiv — subquery equivalence and workload analysis
//!
//! The paper's pre-process stage (Fig. 3): extract candidate subqueries from
//! a workload, detect equivalent subqueries, cluster them, and compute the
//! overlap relation that constrains which views a query may use together.
//!
//! The paper uses EQUITAS (SMT-based first-order predicate equivalence).
//! We substitute a two-stage decision procedure for the same predicate
//! fragment the workloads contain (conjunctive/disjunctive equality and
//! range predicates over equi-join trees):
//!
//! 1. **Canonicalization** ([`canon`]): rename table aliases positionally,
//!    flip comparisons literal-to-the-right, flatten + sort + dedupe
//!    AND/OR operands, drop double negations, sort join conditions.
//!    Equal canonical fingerprints ⇒ equivalent.
//! 2. **Randomized semantic testing** ([`predtest`]): plans that are
//!    structurally identical except for their predicates are compared by
//!    evaluating both predicates over a literal-aware randomized domain;
//!    agreement on every probe ⇒ equivalent (one-sided error, probability
//!    of a false merge vanishing in the number of probes).
//!
//! ```
//! use av_equiv::are_equivalent;
//! use av_plan::parse_query;
//!
//! // Same subquery, different alias, reordered predicate.
//! let a = parse_query("select t1.uid from memo t1 where t1.dt = '1010' and t1.k = 1").unwrap();
//! let b = parse_query("select t9.uid from memo t9 where t9.k = 1 and t9.dt = '1010'").unwrap();
//! assert!(are_equivalent(&a, &b));
//! ```

#![forbid(unsafe_code)]

pub mod canon;
pub mod cluster;
pub mod predtest;

pub use canon::{canonicalize, shape_fingerprint};
pub use cluster::{analyze_workload, Analyzer, Candidate, QueryMatch, WorkloadAnalysis};
pub use predtest::predicates_equivalent;

use av_plan::{Fingerprint, PlanRef};

/// Decide semantic equivalence of two subqueries: canonical identity, or
/// shape identity plus randomized predicate agreement.
pub fn are_equivalent(a: &PlanRef, b: &PlanRef) -> bool {
    let ca = canonicalize(a);
    let cb = canonicalize(b);
    if Fingerprint::of(&ca) == Fingerprint::of(&cb) {
        return true;
    }
    if shape_fingerprint(&ca) != shape_fingerprint(&cb) {
        return false;
    }
    predtest::plans_agree_on_predicates(&ca, &cb)
}
