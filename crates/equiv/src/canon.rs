//! Plan canonicalization: alias renaming and expression normal forms.

use av_plan::expr::ArithOp;
use av_plan::{AggExpr, CmpOp, Expr, Fingerprint, PlanNode, PlanRef, ProjExpr};
use std::collections::HashMap;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Canonicalize a plan:
/// - table aliases renamed positionally (`a0`, `a1`, …) in scan pre-order,
///   with every qualified column reference rewritten to match;
/// - comparisons flipped so a lone literal sits on the right;
/// - AND/OR flattened, operands sorted and deduplicated;
/// - `NOT(NOT(e))` reduced to `e`;
/// - join conditions sorted.
///
/// Structurally different but semantically equal subqueries (alias renames,
/// predicate permutations) map to the same canonical tree, so canonical
/// [`Fingerprint`] equality is a sound and fast equivalence test.
pub fn canonicalize(plan: &PlanRef) -> PlanRef {
    let mut aliases = HashMap::new();
    collect_aliases(plan, &mut aliases);
    rewrite(plan, &aliases)
}

fn collect_aliases(plan: &PlanNode, map: &mut HashMap<String, String>) {
    plan.visit_preorder(&mut |n| {
        if let PlanNode::TableScan { alias, .. } = n {
            if !alias.is_empty() && !map.contains_key(alias) {
                let fresh = format!("a{}", map.len());
                map.insert(alias.clone(), fresh);
            }
        }
    });
}

fn remap_name(name: &str, aliases: &HashMap<String, String>) -> String {
    if let Some((prefix, rest)) = name.split_once('.') {
        if let Some(new) = aliases.get(prefix) {
            return format!("{new}.{rest}");
        }
    }
    name.to_string()
}

fn rewrite(plan: &PlanRef, aliases: &HashMap<String, String>) -> PlanRef {
    match plan.as_ref() {
        PlanNode::TableScan { table, alias } => PlanNode::TableScan {
            table: table.clone(),
            alias: if alias.is_empty() {
                String::new()
            } else {
                aliases[alias].clone()
            },
        }
        .into_ref(),
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: rewrite(input, aliases),
            predicate: normalize_expr(&remap_expr(predicate, aliases)),
        }
        .into_ref(),
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: rewrite(input, aliases),
            exprs: exprs
                .iter()
                .map(|p| ProjExpr {
                    expr: normalize_expr(&remap_expr(&p.expr, aliases)),
                    alias: remap_name(&p.alias, aliases),
                })
                .collect(),
        }
        .into_ref(),
        PlanNode::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let mut on: Vec<(String, String)> = on
                .iter()
                .map(|(l, r)| (remap_name(l, aliases), remap_name(r, aliases)))
                .collect();
            on.sort();
            PlanNode::Join {
                left: rewrite(left, aliases),
                right: rewrite(right, aliases),
                on,
                join_type: *join_type,
            }
            .into_ref()
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            input: rewrite(input, aliases),
            group_by: group_by.iter().map(|g| remap_name(g, aliases)).collect(),
            aggs: aggs
                .iter()
                .map(|a| AggExpr {
                    func: a.func,
                    input: a.input.as_ref().map(|c| remap_name(c, aliases)),
                    output: remap_name(&a.output, aliases),
                })
                .collect(),
        }
        .into_ref(),
    }
}

fn remap_expr(e: &Expr, aliases: &HashMap<String, String>) -> Expr {
    match e {
        Expr::Column(c) => Expr::Column(remap_name(c, aliases)),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: Box::new(remap_expr(left, aliases)),
            right: Box::new(remap_expr(right, aliases)),
        },
        Expr::And(v) => Expr::And(v.iter().map(|e| remap_expr(e, aliases)).collect()),
        Expr::Or(v) => Expr::Or(v.iter().map(|e| remap_expr(e, aliases)).collect()),
        Expr::Not(e) => Expr::Not(Box::new(remap_expr(e, aliases))),
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(remap_expr(left, aliases)),
            right: Box::new(remap_expr(right, aliases)),
        },
    }
}

/// Normalize an expression to its canonical form (see [`canonicalize`]).
pub fn normalize_expr(e: &Expr) -> Expr {
    match e {
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Cmp { op, left, right } => {
            let l = normalize_expr(left);
            let r = normalize_expr(right);
            // Literal-vs-column: put the column left, flipping the operator.
            if matches!(l, Expr::Literal(_)) && !matches!(r, Expr::Literal(_)) {
                Expr::Cmp {
                    op: op.flipped(),
                    left: Box::new(r),
                    right: Box::new(l),
                }
            } else if matches!((&l, &r), (Expr::Column(_), Expr::Column(_)))
                && expr_key(&r) < expr_key(&l)
                && matches!(op, CmpOp::Eq | CmpOp::Ne)
            {
                // Symmetric ops over two columns: order operands.
                Expr::Cmp {
                    op: *op,
                    left: Box::new(r),
                    right: Box::new(l),
                }
            } else {
                Expr::Cmp {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
        }
        Expr::And(v) => {
            let mut parts = flatten(v, true);
            parts.sort_by_key(expr_key);
            parts.dedup();
            if parts.len() == 1 {
                parts.pop().expect("one part")
            } else {
                Expr::And(parts)
            }
        }
        Expr::Or(v) => {
            let mut parts = flatten(v, false);
            parts.sort_by_key(expr_key);
            parts.dedup();
            if parts.len() == 1 {
                parts.pop().expect("one part")
            } else {
                Expr::Or(parts)
            }
        }
        Expr::Not(inner) => {
            let n = normalize_expr(inner);
            match n {
                Expr::Not(e) => *e,
                other => Expr::Not(Box::new(other)),
            }
        }
        Expr::Arith { op, left, right } => {
            let l = normalize_expr(left);
            let r = normalize_expr(right);
            // Commutative arithmetic: order operands.
            if matches!(op, ArithOp::Add | ArithOp::Mul) && expr_key(&r) < expr_key(&l) {
                Expr::Arith {
                    op: *op,
                    left: Box::new(r),
                    right: Box::new(l),
                }
            } else {
                Expr::Arith {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
        }
    }
}

fn flatten(v: &[Expr], is_and: bool) -> Vec<Expr> {
    let mut out = Vec::with_capacity(v.len());
    for e in v {
        let n = normalize_expr(e);
        match (is_and, n) {
            (true, Expr::And(inner)) => out.extend(inner),
            (false, Expr::Or(inner)) => out.extend(inner),
            (_, other) => out.push(other),
        }
    }
    out
}

fn expr_key(e: &Expr) -> String {
    e.to_string()
}

/// Shape fingerprint: the structural hash with all filter predicates erased.
/// Two plans with equal shape fingerprints differ at most in predicates, the
/// precondition for the randomized predicate comparison.
pub fn shape_fingerprint(plan: &PlanNode) -> Fingerprint {
    let mut h = DefaultHasher::new();
    hash_shape(plan, &mut h);
    Fingerprint(h.finish())
}

fn hash_shape(plan: &PlanNode, h: &mut DefaultHasher) {
    match plan {
        PlanNode::TableScan { table, alias } => {
            0u8.hash(h);
            table.hash(h);
            alias.hash(h);
        }
        PlanNode::Filter { input, .. } => {
            1u8.hash(h);
            hash_shape(input, h);
        }
        PlanNode::Project { input, exprs } => {
            2u8.hash(h);
            exprs.hash(h);
            hash_shape(input, h);
        }
        PlanNode::Join {
            left,
            right,
            on,
            join_type,
        } => {
            3u8.hash(h);
            on.hash(h);
            join_type.hash(h);
            hash_shape(left, h);
            hash_shape(right, h);
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            4u8.hash(h);
            group_by.hash(h);
            aggs.hash(h);
            hash_shape(input, h);
        }
    }
}

/// Collect, in pre-order, the filter predicates of a plan (used to pair up
/// predicates of two shape-equal plans).
pub fn collect_predicates(plan: &PlanNode) -> Vec<Expr> {
    let mut out = Vec::new();
    plan.visit_preorder(&mut |n| {
        if let PlanNode::Filter { predicate, .. } = n {
            out.push(predicate.clone());
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_plan::parse_query;

    fn canon_fp(sql: &str) -> Fingerprint {
        Fingerprint::of(&canonicalize(&parse_query(sql).expect("parses")))
    }

    #[test]
    fn alias_renaming_makes_plans_identical() {
        assert_eq!(
            canon_fp("select t1.x from t t1 where t1.k = 3"),
            canon_fp("select t7.x from t t7 where t7.k = 3"),
        );
    }

    #[test]
    fn predicate_order_is_normalized() {
        assert_eq!(
            canon_fp("select a.x from t a where a.k = 1 and a.j = 2"),
            canon_fp("select a.x from t a where a.j = 2 and a.k = 1"),
        );
    }

    #[test]
    fn flipped_comparison_is_normalized() {
        assert_eq!(
            canon_fp("select a.x from t a where a.k > 5"),
            canon_fp("select a.x from t a where 5 < a.k"),
        );
    }

    #[test]
    fn different_literals_stay_different() {
        assert_ne!(
            canon_fp("select a.x from t a where a.k = 1"),
            canon_fp("select a.x from t a where a.k = 2"),
        );
    }

    #[test]
    fn different_tables_stay_different() {
        assert_ne!(
            canon_fp("select a.x from t a"),
            canon_fp("select a.x from u a"),
        );
    }

    #[test]
    fn double_negation_eliminated() {
        let e = Expr::Not(Box::new(Expr::Not(Box::new(
            Expr::col("a.x").eq(Expr::int(1)),
        ))));
        assert_eq!(normalize_expr(&e), Expr::col("a.x").eq(Expr::int(1)));
    }

    #[test]
    fn duplicate_conjuncts_deduped() {
        let e = Expr::col("a.x")
            .eq(Expr::int(1))
            .and(Expr::col("a.x").eq(Expr::int(1)));
        assert_eq!(normalize_expr(&e), Expr::col("a.x").eq(Expr::int(1)));
    }

    #[test]
    fn symmetric_column_equality_ordered() {
        let a = normalize_expr(&Expr::col("a.y").eq(Expr::col("a.x")));
        let b = normalize_expr(&Expr::col("a.x").eq(Expr::col("a.y")));
        assert_eq!(a, b);
    }

    #[test]
    fn shape_fp_ignores_predicates_only() {
        let p1 = canonicalize(&parse_query("select a.x from t a where a.k = 1").expect("ok"));
        let p2 = canonicalize(&parse_query("select a.x from t a where a.k = 2").expect("ok"));
        let p3 = canonicalize(&parse_query("select a.y from t a where a.k = 1").expect("ok"));
        assert_eq!(shape_fingerprint(&p1), shape_fingerprint(&p2));
        assert_ne!(shape_fingerprint(&p1), shape_fingerprint(&p3));
    }

    #[test]
    fn collect_predicates_in_preorder() {
        let p = parse_query(
            "select a.x, b.y from t a join u b on a.id = b.id \
             where a.k = 1 and b.j = 2",
        )
        .expect("ok");
        let preds = collect_predicates(&p);
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn commutative_arith_ordered() {
        let a = normalize_expr(&Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::col("a.y")),
            right: Box::new(Expr::col("a.x")),
        });
        let b = normalize_expr(&Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::col("a.x")),
            right: Box::new(Expr::col("a.y")),
        });
        assert_eq!(a, b);
    }
}
