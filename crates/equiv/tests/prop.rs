//! Property tests for the equivalence machinery: canonicalization is
//! idempotent and semantics-preserving, equivalence is reflexive and
//! alias-invariant, and the randomized predicate check never falsely
//! separates identical predicates.

use av_equiv::{are_equivalent, canonicalize, predicates_equivalent};
use av_plan::{CmpOp, Expr, Fingerprint, PlanBuilder, Value};
use proptest::prelude::*;

fn arb_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        ((0..3usize), -9i64..9, 0..6u8).prop_map(|(c, v, op)| {
            let op = match op {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                _ => CmpOp::Ge,
            };
            Expr::col(format!("x.c{c}")).cmp(op, Expr::int(v))
        }),
        ((0..3usize), "[a-c]{1,3}").prop_map(|(c, s)| {
            Expr::col(format!("x.c{c}")).eq(Expr::str(s))
        }),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn canonicalization_is_idempotent(pred in arb_pred()) {
        let plan = PlanBuilder::scan("t", "x")
            .filter(pred)
            .project(&[("x.c0", "x.c0")])
            .build();
        let once = canonicalize(&plan);
        let twice = canonicalize(&once);
        prop_assert_eq!(Fingerprint::of(&once), Fingerprint::of(&twice));
    }

    #[test]
    fn canonicalization_preserves_predicate_semantics(pred in arb_pred(), probe in -10i64..10) {
        let plan = PlanBuilder::scan("t", "x").filter(pred.clone()).build();
        let canon = canonicalize(&plan);
        let canon_pred = av_equiv::canon::collect_predicates(&canon)
            .pop()
            .expect("filter survives");
        // Same truth value under an arbitrary binding, modulo the alias
        // rename x→a0.
        let bind_orig = |name: &str| {
            if name.ends_with("c0") { Value::Int(probe) }
            else if name.ends_with("c1") { Value::Str(format!("s{probe}")) }
            else { Value::Int(-probe) }
        };
        prop_assert_eq!(
            pred.eval_bool(&bind_orig),
            canon_pred.eval_bool(&bind_orig),
            "canonicalization changed semantics"
        );
    }

    #[test]
    fn equivalence_is_reflexive_and_alias_invariant(pred in arb_pred()) {
        let mk = |alias: &str| {
            let renamed = rename_prefix(&pred, alias);
            PlanBuilder::scan("t", alias)
                .filter(renamed)
                .project(&[
                    (&format!("{alias}.c0"), &format!("{alias}.c0")),
                ])
                .build()
        };
        let a = mk("x");
        let b = mk("zz");
        prop_assert!(are_equivalent(&a, &a.clone()));
        prop_assert!(are_equivalent(&a, &b), "alias rename must not matter");
    }

    #[test]
    fn predicate_check_is_reflexive_and_commutation_safe(pred in arb_pred()) {
        prop_assert!(predicates_equivalent(&pred, &pred));
        // A shuffled conjunction of the predicate with itself is equivalent.
        let doubled = Expr::And(vec![pred.clone(), pred.clone()]);
        prop_assert!(predicates_equivalent(&pred, &doubled));
    }

    #[test]
    fn different_tables_never_equivalent(pred in arb_pred()) {
        let a = PlanBuilder::scan("t1", "x").filter(pred.clone()).project(&[("x.c0", "x.c0")]).build();
        let b = PlanBuilder::scan("t2", "x").filter(pred).project(&[("x.c0", "x.c0")]).build();
        prop_assert!(!are_equivalent(&a, &b));
    }
}

/// Rename `x.` prefixes in a predicate to `alias.`.
fn rename_prefix(e: &Expr, alias: &str) -> Expr {
    match e {
        Expr::Column(c) => Expr::Column(match c.split_once('.') {
            Some((_, rest)) => format!("{alias}.{rest}"),
            None => c.clone(),
        }),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: Box::new(rename_prefix(left, alias)),
            right: Box::new(rename_prefix(right, alias)),
        },
        Expr::And(v) => Expr::And(v.iter().map(|e| rename_prefix(e, alias)).collect()),
        Expr::Or(v) => Expr::Or(v.iter().map(|e| rename_prefix(e, alias)).collect()),
        Expr::Not(inner) => Expr::Not(Box::new(rename_prefix(inner, alias))),
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(rename_prefix(left, alias)),
            right: Box::new(rename_prefix(right, alias)),
        },
    }
}
