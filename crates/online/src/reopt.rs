//! Background re-optimization: re-run view selection on the drifted window
//! and diff the result against the live view set.
//!
//! [`reoptimize`] builds a fresh [`MvsInstance`] from the current window
//! (benefits predicted by the active [`CostEstimator`], overheads measured
//! by dry-running each candidate's defining subquery), solves it with
//! IterView or RLView, and returns an incremental [`ReoptPlan`]: which views
//! to create, which live ones to drop, and which to keep.

use av_cost::{tables_meta, CostEstimator, FeatureInput};
use av_engine::{Catalog, EngineError, ExecCache};
use av_equiv::WorkloadAnalysis;
use av_ilp::MvsInstance;
use av_plan::{Fingerprint, PlanRef};
use av_select::{IterView, IterViewConfig, RlView, RlViewConfig, SelectionResult};

/// Which selection algorithm the re-optimizer runs.
#[derive(Debug, Clone)]
pub enum OnlineSelector {
    IterView(IterViewConfig),
    RlView(RlViewConfig),
}

impl Default for OnlineSelector {
    fn default() -> Self {
        OnlineSelector::IterView(IterViewConfig::default())
    }
}

impl OnlineSelector {
    pub fn run(&self, instance: &MvsInstance) -> SelectionResult {
        match self {
            OnlineSelector::IterView(cfg) => IterView::new(instance, cfg.clone()).run(),
            OnlineSelector::RlView(cfg) => RlView::run(instance, cfg.clone()),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            OnlineSelector::IterView(_) => "IterView",
            OnlineSelector::RlView(_) => "RLView",
        }
    }
}

/// A view the re-optimizer wants materialized.
#[derive(Debug, Clone)]
pub struct CandidateView {
    /// Defining subquery (representative instance's aliases).
    pub plan: PlanRef,
    /// Fingerprint of the canonicalized defining plan.
    pub canonical_fp: Fingerprint,
    /// Predicted total benefit over the window (Σᵢ benefits[i][j]·y[i][j]).
    pub expected_benefit: f64,
    /// Estimated materialization overhead `O_v`.
    pub overhead: f64,
}

/// Incremental create/drop plan produced by one re-optimization.
#[derive(Debug, Clone, Default)]
pub struct ReoptPlan {
    /// Views selected but not yet live.
    pub create: Vec<CandidateView>,
    /// Live views no longer selected.
    pub drop: Vec<Fingerprint>,
    /// Live views still selected (kept untouched).
    pub keep: Vec<Fingerprint>,
    /// The selection's utility on the window instance.
    pub estimated_utility: f64,
}

impl ReoptPlan {
    /// True when the plan changes nothing.
    pub fn is_noop(&self) -> bool {
        self.create.is_empty() && self.drop.is_empty()
    }
}

/// A window of queries paired with their (unrewritten) execution costs.
#[derive(Debug, Clone, Copy)]
pub struct WindowSnapshot<'a> {
    pub plans: &'a [PlanRef],
    pub costs: &'a [f64],
}

impl<'a> WindowSnapshot<'a> {
    pub fn new(plans: &'a [PlanRef], costs: &'a [f64]) -> Self {
        assert_eq!(plans.len(), costs.len(), "plans/costs must align");
        Self { plans, costs }
    }
}

/// Build the window's MVS instance: predicted benefits per (query,
/// candidate) pair and dry-run overheads per candidate. No catalog mutation
/// — candidate subqueries are *executed* to price their materialization,
/// but nothing is stored. Dry-runs go through `cache`, so candidates that
/// survive across re-optimization rounds (the common case under mild drift)
/// are priced once per catalog epoch.
pub fn build_window_instance(
    catalog: &Catalog,
    analysis: &WorkloadAnalysis,
    window: WindowSnapshot<'_>,
    estimator: &dyn CostEstimator,
    cache: &ExecCache,
) -> Result<MvsInstance, EngineError> {
    let WindowSnapshot { plans, costs } = window;
    let pricing = cache.pricing();

    let mut overheads = Vec::with_capacity(analysis.candidates.len());
    for cand in &analysis.candidates {
        let result = cache.run(catalog, &cand.plan)?;
        overheads.push(
            result.report.cost_dollars + pricing.storage_dollars(result.report.output_bytes),
        );
    }

    let nq = plans.len();
    let nc = analysis.candidates.len();
    let mut benefits = vec![vec![0.0; nc]; nq];
    // Score all (query, candidate) pairs in one estimate_batch call so a
    // batched estimator encodes each distinct plan once per dry-run round.
    let mut pairs_ix: Vec<(usize, usize)> = Vec::new();
    let mut inputs: Vec<FeatureInput> = Vec::new();
    for (i, matches) in analysis.query_matches.iter().enumerate() {
        for m in matches {
            let cand = &analysis.candidates[m.candidate];
            pairs_ix.push((i, m.candidate));
            inputs.push(FeatureInput {
                query: plans[i].clone(),
                view: cand.plan.clone(),
                tables: tables_meta(catalog, &plans[i], &cand.plan),
            });
        }
    }
    let estimates = estimator.estimate_batch(&inputs);
    for (&(i, cand), predicted_rewritten) in pairs_ix.iter().zip(estimates) {
        benefits[i][cand] = (costs[i] - predicted_rewritten).max(0.0);
    }

    Ok(MvsInstance {
        benefits,
        overheads,
        overlaps: analysis.overlap_pairs.clone(),
    })
}

/// Re-run selection on the window and diff against the live view set.
pub fn reoptimize(
    catalog: &Catalog,
    analysis: &WorkloadAnalysis,
    window: WindowSnapshot<'_>,
    estimator: &dyn CostEstimator,
    selector: &OnlineSelector,
    live_fps: &[Fingerprint],
    cache: &ExecCache,
) -> Result<ReoptPlan, EngineError> {
    let instance = build_window_instance(catalog, analysis, window, estimator, cache)?;
    let selection = selector.run(&instance);

    let mut plan = ReoptPlan {
        estimated_utility: selection.utility,
        ..ReoptPlan::default()
    };
    let mut selected_fps = Vec::with_capacity(analysis.candidates.len());
    for (j, cand) in analysis.candidates.iter().enumerate() {
        let fp = Fingerprint::of(&cand.canonical);
        selected_fps.push(fp);
        if !selection.z.get(j).copied().unwrap_or(false) {
            continue;
        }
        let expected_benefit: f64 = selection
            .y
            .iter()
            .enumerate()
            .filter(|(i, yi)| yi.get(j).copied().unwrap_or(false) && *i < instance.benefits.len())
            .map(|(i, _)| instance.benefits[i][j])
            .sum();
        if live_fps.contains(&fp) {
            plan.keep.push(fp);
        } else {
            plan.create.push(CandidateView {
                plan: cand.plan.clone(),
                canonical_fp: fp,
                expected_benefit,
                overhead: instance.overheads[j],
            });
        }
    }
    // Live views the new selection does not want (including views whose
    // candidate no longer even appears in the window).
    for &fp in live_fps {
        let still_selected = analysis
            .candidates
            .iter()
            .enumerate()
            .any(|(j, _)| selected_fps[j] == fp && selection.z.get(j).copied().unwrap_or(false));
        if !still_selected {
            plan.drop.push(fp);
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_cost::OptimizerEstimator;
    use av_engine::Pricing;
    use av_equiv::Analyzer;
    use av_workload::cloud::mini;

    fn cache() -> ExecCache {
        ExecCache::new(Pricing::paper_defaults())
    }

    fn analyzed(seed: u64) -> (av_workload::Workload, WorkloadAnalysis, Vec<PlanRef>, Vec<f64>) {
        let w = mini(seed);
        let plans = w.plans();
        let mut analyzer = Analyzer::new();
        analyzer.min_query_frequency = 2;
        let analysis = analyzer.analyze(&plans);
        let exec = av_engine::Executor::new(&w.catalog, Pricing::paper_defaults());
        let costs: Vec<f64> = plans.iter().map(|p| exec.cost(p).expect("costs")).collect();
        (w, analysis, plans, costs)
    }

    #[test]
    fn window_instance_is_well_formed() {
        let (w, analysis, plans, costs) = analyzed(31);
        let before = w.catalog.len();
        let est = OptimizerEstimator::default();
        let instance = build_window_instance(
            &w.catalog,
            &analysis,
            WindowSnapshot::new(&plans, &costs),
            &est,
            &cache(),
        )
        .expect("builds");
        assert_eq!(w.catalog.len(), before, "no catalog mutation");
        assert_eq!(instance.num_queries(), plans.len());
        assert_eq!(instance.num_candidates(), analysis.candidates.len());
        assert!(instance.overheads.iter().all(|&o| o > 0.0));
        // Benefits are only nonzero on matching pairs.
        for (i, row) in instance.benefits.iter().enumerate() {
            for (j, &b) in row.iter().enumerate() {
                let matched = analysis.query_matches[i].iter().any(|m| m.candidate == j);
                assert!(b >= 0.0);
                if !matched {
                    assert_eq!(b, 0.0, "non-match ({i},{j}) must carry no benefit");
                }
            }
        }
    }

    #[test]
    fn reopt_from_empty_creates_views() {
        let (w, analysis, plans, costs) = analyzed(32);
        let est = OptimizerEstimator::default();
        let plan = reoptimize(
            &w.catalog,
            &analysis,
            WindowSnapshot::new(&plans, &costs),
            &est,
            &OnlineSelector::IterView(IterViewConfig {
                iterations: 40,
                seed: 7,
                freeze_after: None,
            }),
            &[],
            &cache(),
        )
        .expect("reoptimizes");
        assert!(!plan.create.is_empty(), "mini workload selects some views");
        assert!(plan.drop.is_empty());
        assert!(plan.keep.is_empty());
        assert!(plan.estimated_utility > 0.0);
        // Positive utility means the selection as a whole pays for itself;
        // individual views may ride along at zero predicted benefit.
        assert!(plan.create.iter().any(|c| c.expected_benefit > 0.0));
        for c in &plan.create {
            assert!(c.expected_benefit >= 0.0);
            assert!(c.overhead > 0.0);
        }
    }

    #[test]
    fn reopt_is_incremental_against_live_set() {
        let (w, analysis, plans, costs) = analyzed(33);
        let est = OptimizerEstimator::default();
        let selector = OnlineSelector::IterView(IterViewConfig {
            iterations: 40,
            seed: 7,
            freeze_after: None,
        });
        let shared = cache();
        let first = reoptimize(
            &w.catalog,
            &analysis,
            WindowSnapshot::new(&plans, &costs),
            &est,
            &selector,
            &[],
            &shared,
        )
        .expect("first");
        let live: Vec<Fingerprint> = first.create.iter().map(|c| c.canonical_fp).collect();
        // Same window, same selector: the plan must be a no-op now.
        let second = reoptimize(
            &w.catalog,
            &analysis,
            WindowSnapshot::new(&plans, &costs),
            &est,
            &selector,
            &live,
            &shared,
        )
        .expect("second");
        assert!(second.is_noop(), "unchanged window => no-op plan");
        assert_eq!(second.keep.len(), live.len());
        // Round two dry-runs the identical candidate set at the same catalog
        // epoch, so every execution is a cache hit.
        let stats = shared.stats();
        assert_eq!(stats.hits, stats.misses, "second round must be all hits");
    }

    #[test]
    fn stale_live_views_are_dropped() {
        let (w, analysis, plans, costs) = analyzed(34);
        let est = OptimizerEstimator::default();
        // A fingerprint no candidate has: must land in `drop`.
        let ghost = Fingerprint::of(
            &av_plan::PlanBuilder::scan("__nonexistent__", "g").build(),
        );
        let plan = reoptimize(
            &w.catalog,
            &analysis,
            WindowSnapshot::new(&plans, &costs),
            &est,
            &OnlineSelector::IterView(IterViewConfig {
                iterations: 20,
                seed: 7,
                freeze_after: None,
            }),
            &[ghost],
            &cache(),
        )
        .expect("reoptimizes");
        assert!(plan.drop.contains(&ghost));
    }
}
