//! Workload drift detection.
//!
//! [`DriftDetector`] compares the window's candidate cost-mass distribution
//! (see [`crate::stream::WorkloadStream::candidate_mass`]) against a pinned
//! reference distribution using total-variation distance. Re-selection is
//! expensive, so the detector only fires when the shift exceeds a threshold,
//! and rebases its reference on every trigger so a single phase change
//! fires exactly once.

use av_plan::Fingerprint;
use std::collections::BTreeMap;

/// Tuning knobs for drift detection.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Total-variation distance in `[0, 1]` above which drift is declared.
    /// 0 fires on any change; 1 (or `f64::INFINITY`) never fires.
    pub threshold: f64,
    /// Minimum arrivals between two triggers (cooldown), so a noisy
    /// boundary between phases cannot fire repeatedly.
    pub min_queries_between: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 0.3,
            min_queries_between: 16,
        }
    }
}

/// A declared drift event.
#[derive(Debug, Clone, Copy)]
pub struct DriftReport {
    /// Arrival sequence number at which drift was declared.
    pub at_seq: u64,
    /// Measured total-variation distance from the reference window.
    pub distance: f64,
    /// The threshold that was exceeded.
    pub threshold: f64,
}

/// Window-over-window drift detector.
#[derive(Debug)]
pub struct DriftDetector {
    config: DriftConfig,
    /// The distribution the current view selection was made for. `None`
    /// until the first observation pins it.
    reference: Option<BTreeMap<Fingerprint, f64>>,
    last_trigger: Option<u64>,
}

impl DriftDetector {
    pub fn new(config: DriftConfig) -> DriftDetector {
        DriftDetector {
            config,
            reference: None,
            last_trigger: None,
        }
    }

    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Observe the current window's candidate mass at arrival `seq`.
    ///
    /// The first observation pins the reference and never triggers. Later
    /// observations return a [`DriftReport`] when the distance exceeds the
    /// threshold and the cooldown has elapsed; the reference is then rebased
    /// to the drifted distribution, so a completed phase shift triggers
    /// exactly once.
    pub fn observe(
        &mut self,
        seq: u64,
        mass: &BTreeMap<Fingerprint, f64>,
    ) -> Option<DriftReport> {
        let Some(reference) = &self.reference else {
            self.reference = Some(mass.clone());
            return None;
        };
        let distance = total_variation(reference, mass);
        if distance <= self.config.threshold {
            return None;
        }
        if let Some(last) = self.last_trigger {
            if seq.saturating_sub(last) < self.config.min_queries_between {
                return None;
            }
        }
        self.last_trigger = Some(seq);
        self.reference = Some(mass.clone());
        Some(DriftReport {
            at_seq: seq,
            distance,
            threshold: self.config.threshold,
        })
    }

    /// Pin the reference to `mass` without triggering — called after a
    /// re-optimization so subsequent drift is measured against the
    /// distribution the new selection was made for.
    pub fn rebase(&mut self, mass: &BTreeMap<Fingerprint, f64>) {
        self.reference = Some(mass.clone());
    }

    /// Distance of `mass` from the current reference (0 if unpinned).
    pub fn distance_from_reference(&self, mass: &BTreeMap<Fingerprint, f64>) -> f64 {
        match &self.reference {
            Some(r) => total_variation(r, mass),
            None => 0.0,
        }
    }
}

/// Total-variation distance between two non-negative mass maps after
/// normalization: `0.5 * Σ |p(k) − q(k)|` over the key union. Ranges over
/// `[0, 1]`; an empty map is treated as the zero distribution (distance 1
/// from any non-empty one, 0 from another empty one).
pub fn total_variation(
    a: &BTreeMap<Fingerprint, f64>,
    b: &BTreeMap<Fingerprint, f64>,
) -> f64 {
    let ta: f64 = a.values().sum();
    let tb: f64 = b.values().sum();
    match (ta > 0.0, tb > 0.0) {
        (false, false) => return 0.0,
        (false, true) | (true, false) => return 1.0,
        (true, true) => {}
    }
    let mut dist = 0.0;
    for (k, &va) in a {
        let vb = b.get(k).copied().unwrap_or(0.0);
        dist += (va / ta - vb / tb).abs();
    }
    for (k, &vb) in b {
        if !a.contains_key(k) {
            dist += (vb / tb).abs();
        }
    }
    0.5 * dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_plan::{Expr, Fingerprint, PlanBuilder};

    fn fp(table: &str) -> Fingerprint {
        let plan = PlanBuilder::scan(table, "t")
            .filter(Expr::col("t.a").eq(Expr::int(1)))
            .build();
        Fingerprint::of(&plan)
    }

    fn mass(entries: &[(Fingerprint, f64)]) -> BTreeMap<Fingerprint, f64> {
        entries.iter().copied().collect()
    }

    #[test]
    fn total_variation_bounds() {
        let p = mass(&[(fp("a"), 1.0), (fp("b"), 1.0)]);
        let q = mass(&[(fp("c"), 5.0)]);
        assert_eq!(total_variation(&p, &p), 0.0);
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-12, "disjoint supports");
        let empty = BTreeMap::new();
        assert_eq!(total_variation(&empty, &empty), 0.0);
        assert_eq!(total_variation(&p, &empty), 1.0);
    }

    #[test]
    fn scaling_does_not_count_as_drift() {
        // Same shape, 10x the cost: normalized distributions are identical.
        let p = mass(&[(fp("a"), 1.0), (fp("b"), 3.0)]);
        let q = mass(&[(fp("a"), 10.0), (fp("b"), 30.0)]);
        assert!(total_variation(&p, &q) < 1e-12);
    }

    #[test]
    fn no_drift_never_triggers() {
        let mut d = DriftDetector::new(DriftConfig {
            threshold: 0.2,
            min_queries_between: 0,
        });
        let stable = mass(&[(fp("a"), 2.0), (fp("b"), 1.0)]);
        for seq in 0..200 {
            // Costs wobble but the distribution stays fixed.
            let scaled: BTreeMap<_, _> = stable
                .iter()
                .map(|(&k, &v)| (k, v * (1.0 + (seq % 3) as f64)))
                .collect();
            assert!(d.observe(seq, &scaled).is_none(), "seq {seq} must not trigger");
        }
    }

    #[test]
    fn phase_shift_triggers_exactly_once() {
        let mut d = DriftDetector::new(DriftConfig {
            threshold: 0.3,
            min_queries_between: 4,
        });
        let phase_a = mass(&[(fp("a"), 4.0), (fp("b"), 1.0)]);
        let phase_b = mass(&[(fp("c"), 3.0), (fp("d"), 2.0)]);
        let mut triggers = Vec::new();
        for seq in 0..100 {
            let m = if seq < 50 { &phase_a } else { &phase_b };
            if let Some(r) = d.observe(seq, m) {
                triggers.push(r);
            }
        }
        assert_eq!(triggers.len(), 1, "one phase shift => one trigger");
        assert_eq!(triggers[0].at_seq, 50);
        assert!(triggers[0].distance > 0.3);
    }

    #[test]
    fn cooldown_suppresses_rapid_refires() {
        let mut d = DriftDetector::new(DriftConfig {
            threshold: 0.1,
            min_queries_between: 10,
        });
        let a = mass(&[(fp("a"), 1.0)]);
        let b = mass(&[(fp("b"), 1.0)]);
        assert!(d.observe(0, &a).is_none(), "first observation pins");
        assert!(d.observe(1, &b).is_some(), "flip triggers");
        // Oscillate every arrival. Reference is now `b`, so only the `a`
        // observations (even seqs) measure any distance; the cooldown from
        // the seq-1 trigger holds fire until seq 12.
        let mut next = None;
        for seq in 2..=12 {
            let m = if seq % 2 == 0 { &a } else { &b };
            if let Some(r) = d.observe(seq, m) {
                next = Some(r.at_seq);
                break;
            }
        }
        assert_eq!(next, Some(12));
    }

    #[test]
    fn rebase_resets_the_reference() {
        let mut d = DriftDetector::new(DriftConfig {
            threshold: 0.3,
            min_queries_between: 0,
        });
        let a = mass(&[(fp("a"), 1.0)]);
        let b = mass(&[(fp("b"), 1.0)]);
        d.observe(0, &a);
        d.rebase(&b);
        assert!(d.observe(1, &b).is_none(), "rebase pinned to b");
        assert!(d.observe(2, &a).is_some(), "a now counts as drift");
    }
}
