//! Adaptive view lifecycle: admission, eviction and query routing against a
//! byte budget.
//!
//! [`ViewLifecycleManager`] owns an `av-engine` [`ViewStore`] and a set of
//! *live* views. Candidates are admitted by benefit-per-byte score; when the
//! budget is exceeded, the lowest-scoring live views are evicted first — but
//! only while they score below the newcomer, so a strong incumbent is never
//! displaced by a weak arrival. Incoming queries are routed through live
//! views with `av-engine::rewrite`'s subtree rewriter, matching on
//! *canonical* fingerprints so a view admitted from one query's aliases
//! still rewrites structurally equivalent subtrees of other queries.

use av_engine::{
    rewrite_subtree_with_view, Catalog, EngineError, MaterializedView, Pricing, ViewId, ViewStore,
};
use av_equiv::canonicalize;
use av_plan::{enumerate_subqueries, Fingerprint, PlanRef};

/// Budget and admission knobs.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleConfig {
    /// Total bytes the live views may occupy.
    pub byte_budget: usize,
    /// Candidates scoring below this benefit-per-byte are rejected outright.
    pub min_benefit_per_byte: f64,
    /// Bytes any single tenant's views may occupy (multi-tenant serving:
    /// one tenant's hot workload must not crowd every other tenant out of
    /// the shared budget). Views admitted without an owner are exempt.
    pub tenant_byte_budget: usize,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            byte_budget: 64 * 1024,
            min_benefit_per_byte: 0.0,
            tenant_byte_budget: usize::MAX,
        }
    }
}

/// A currently materialized, routable view.
#[derive(Debug, Clone)]
pub struct LiveView {
    pub id: ViewId,
    /// Fingerprint of the canonicalized defining plan — the admission /
    /// routing / diffing key.
    pub canonical_fp: Fingerprint,
    /// Benefit-per-byte at admission time (eviction priority; lower goes
    /// first).
    pub score: f64,
    /// Expected total benefit (dollars over the selection window).
    pub expected_benefit: f64,
    /// Tenant this view is accounted to (`None` = shared/system view).
    pub owner: Option<String>,
}

/// Outcome of an admission attempt.
#[derive(Debug)]
pub enum AdmitOutcome {
    /// View materialized and live; lists any views evicted to make room.
    Admitted { id: ViewId, evicted: Vec<ViewId> },
    /// Scored below `min_benefit_per_byte`; nothing was materialized.
    RejectedScore { score: f64 },
    /// Could not fit within the budget without evicting better views.
    RejectedBudget { bytes: usize },
    /// The owning tenant's byte share is exhausted by views that outscore
    /// the newcomer.
    RejectedTenantBudget { tenant: String, bytes: usize },
}

/// Rewrite `plan` through a set of materialized views, outermost-first.
/// Returns the (possibly unchanged) plan and the number of subtree
/// replacements.
///
/// Each entry pairs a view's *canonical* defining fingerprint with its
/// materialized record; `catalog` must contain the views' stored tables.
/// This is the routing core shared by [`ViewLifecycleManager::route`]
/// (mutable online engine) and `av-serve`'s frozen deployment snapshots,
/// where it runs against an immutable `Arc<Catalog>`.
pub fn route_through_views(
    catalog: &Catalog,
    views: &[(Fingerprint, &MaterializedView)],
    plan: &PlanRef,
) -> (PlanRef, usize) {
    if views.is_empty() {
        return (plan.clone(), 0);
    }
    // Prefer larger views first so an outer replacement swallows inner
    // candidates (mirrors `rewrite_with_views`).
    let mut order: Vec<&(Fingerprint, &MaterializedView)> = views.iter().collect();
    order.sort_by_key(|(_, v)| std::cmp::Reverse(v.plan.node_count()));

    let mut current = plan.clone();
    let mut hits = 0;
    let cat_cols = |t: &str| catalog.table_columns(t);
    for (canonical_fp, view) in order {
        // Re-enumerate each round: a previous replacement changes the
        // remaining subtrees.
        for sub in enumerate_subqueries(&current) {
            if Fingerprint::of(&canonicalize(&sub.plan)) != *canonical_fp {
                continue;
            }
            let subtree_cols = sub.plan.output_columns(&cat_cols);
            let view_cols = match catalog.table(&view.table_name) {
                Some(t) => t.column_names.clone(),
                None => continue, // table dropped concurrently
            };
            if subtree_cols.len() != view_cols.len() {
                continue; // stale match
            }
            let (next, n) = rewrite_subtree_with_view(
                &current,
                sub.fingerprint,
                view,
                &subtree_cols,
                &view_cols,
            );
            if n > 0 {
                current = next;
                hits += n;
            }
        }
    }
    // Debug builds gate every routed plan: the semantic prover first —
    // `Proved` needs nothing more, `Refuted` means routing substituted a
    // view that does not contain the query (hard bug, panic with the
    // witness), and only `Unknown` drops to the schema-level check.
    #[cfg(debug_assertions)]
    if hits > 0 {
        let resolve = |t: &str| {
            views
                .iter()
                .find(|(_, v)| v.table_name == t)
                .map(|(_, v)| v.plan.clone())
        };
        match av_analyze::prove_rewrite(catalog, plan, &current, &resolve) {
            av_analyze::Verdict::Proved => {}
            av_analyze::Verdict::Refuted { witness } => {
                panic!("view routing produced a refuted rewrite: {witness}");
            }
            av_analyze::Verdict::Unknown { .. } => {
                if let Err(e) = av_analyze::verify_rewrite(catalog, plan, &current) {
                    panic!("view routing produced an invalid rewrite: {e}");
                }
            }
        }
    }
    (current, hits)
}

/// Manages the set of materialized views over time.
#[derive(Debug, Default)]
pub struct ViewLifecycleManager {
    config: LifecycleConfig,
    store: ViewStore,
    live: Vec<LiveView>,
}

impl ViewLifecycleManager {
    pub fn new(config: LifecycleConfig) -> ViewLifecycleManager {
        ViewLifecycleManager {
            config,
            store: ViewStore::new(),
            live: Vec::new(),
        }
    }

    pub fn config(&self) -> LifecycleConfig {
        self.config
    }

    /// Live views, admission order.
    pub fn live(&self) -> &[LiveView] {
        &self.live
    }

    /// Canonical fingerprints of the live set.
    pub fn live_fingerprints(&self) -> Vec<Fingerprint> {
        self.live.iter().map(|v| v.canonical_fp).collect()
    }

    /// Total bytes currently occupied by live views.
    pub fn live_bytes(&self) -> usize {
        self.live
            .iter()
            .filter_map(|l| self.store.view(l.id))
            .map(|v| v.byte_size)
            .sum()
    }

    /// Is a structurally equivalent view already live?
    pub fn has_live(&self, canonical_fp: Fingerprint) -> bool {
        self.live.iter().any(|v| v.canonical_fp == canonical_fp)
    }

    /// Bytes currently occupied by a tenant's views (`None` = unowned).
    pub fn live_bytes_of(&self, owner: Option<&str>) -> usize {
        self.live
            .iter()
            .filter(|l| l.owner.as_deref() == owner)
            .filter_map(|l| self.store.view(l.id))
            .map(|v| v.byte_size)
            .sum()
    }

    /// Try to admit a view defined by `plan` (whose canonicalized form has
    /// fingerprint `canonical_fp`) with the given expected benefit.
    ///
    /// The view is materialized first — its byte size is only known after
    /// execution — and torn down again if it cannot be admitted.
    pub fn admit(
        &mut self,
        catalog: &mut Catalog,
        plan: PlanRef,
        canonical_fp: Fingerprint,
        expected_benefit: f64,
        pricing: Pricing,
    ) -> Result<AdmitOutcome, EngineError> {
        self.admit_owned(catalog, plan, canonical_fp, expected_benefit, pricing, None)
    }

    /// [`ViewLifecycleManager::admit`] with tenant accounting: the view's
    /// bytes are charged against `owner`'s share
    /// ([`LifecycleConfig::tenant_byte_budget`]) in addition to the global
    /// budget. A tenant over its share may displace its *own* weaker views,
    /// never another tenant's.
    pub fn admit_owned(
        &mut self,
        catalog: &mut Catalog,
        plan: PlanRef,
        canonical_fp: Fingerprint,
        expected_benefit: f64,
        pricing: Pricing,
        owner: Option<&str>,
    ) -> Result<AdmitOutcome, EngineError> {
        if self.has_live(canonical_fp) {
            return Ok(AdmitOutcome::RejectedScore {
                score: f64::INFINITY,
            });
        }
        let id = self.store.materialize(catalog, plan, pricing)?;
        let bytes = self.store.view(id).expect("just materialized").byte_size;
        // An empty result still occupies a catalog slot; score it by a
        // 1-byte floor so the benefit ordering stays finite.
        let score = expected_benefit / bytes.max(1) as f64;

        if score < self.config.min_benefit_per_byte || expected_benefit <= 0.0 {
            self.store.drop_view(catalog, id);
            return Ok(AdmitOutcome::RejectedScore { score });
        }
        if bytes > self.config.byte_budget {
            self.store.drop_view(catalog, id);
            return Ok(AdmitOutcome::RejectedBudget { bytes });
        }
        if let Some(tenant) = owner {
            if bytes > self.config.tenant_byte_budget {
                self.store.drop_view(catalog, id);
                return Ok(AdmitOutcome::RejectedTenantBudget {
                    tenant: tenant.to_string(),
                    bytes,
                });
            }
        }

        let mut evicted = Vec::new();
        // Tenant share first: a tenant over budget may only displace its
        // own weaker views, so the failure mode stays contained to the
        // tenant that caused it.
        if let Some(tenant) = owner {
            while self.live_bytes_of(owner) + bytes > self.config.tenant_byte_budget {
                let weakest = self
                    .live
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.owner.as_deref() == owner)
                    .min_by(|(_, a), (_, b)| a.score.total_cmp(&b.score))
                    .map(|(i, v)| (i, v.score));
                match weakest {
                    Some((i, s)) if s < score => {
                        let victim = self.live.remove(i);
                        self.store.drop_view(catalog, victim.id);
                        evicted.push(victim.id);
                    }
                    _ => {
                        self.store.drop_view(catalog, id);
                        return Ok(AdmitOutcome::RejectedTenantBudget {
                            tenant: tenant.to_string(),
                            bytes,
                        });
                    }
                }
            }
        }

        // Evict lowest-scoring live views while over budget — but never one
        // scoring at or above the newcomer.
        while self.live_bytes() + bytes > self.config.byte_budget {
            let weakest = self
                .live
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.score.total_cmp(&b.score))
                .map(|(i, v)| (i, v.score));
            match weakest {
                Some((i, s)) if s < score => {
                    let victim = self.live.remove(i);
                    self.store.drop_view(catalog, victim.id);
                    evicted.push(victim.id);
                }
                _ => {
                    // Undo: remaining residents all outscore the newcomer.
                    // Any tenant-share evictions above stand — they were
                    // legitimate under the tenant policy.
                    self.store.drop_view(catalog, id);
                    return Ok(AdmitOutcome::RejectedBudget { bytes });
                }
            }
        }

        self.live.push(LiveView {
            id,
            canonical_fp,
            score,
            expected_benefit,
            owner: owner.map(|s| s.to_string()),
        });
        Ok(AdmitOutcome::Admitted { id, evicted })
    }

    /// Evict the live view with the given canonical fingerprint (no-op if
    /// not live). Returns the evicted id.
    pub fn evict(&mut self, catalog: &mut Catalog, canonical_fp: Fingerprint) -> Option<ViewId> {
        let i = self
            .live
            .iter()
            .position(|v| v.canonical_fp == canonical_fp)?;
        let victim = self.live.remove(i);
        self.store.drop_view(catalog, victim.id);
        Some(victim.id)
    }

    /// Rewrite `plan` through the live views, outermost-first. Returns the
    /// (possibly unchanged) plan and the number of subtree replacements.
    ///
    /// Matching is canonical: each of the plan's candidate subtrees is
    /// canonicalized and compared against live views' canonical
    /// fingerprints, then replaced positionally via the engine's subtree
    /// rewriter (which renames the view's stored columns back to the
    /// query's local aliases).
    pub fn route(&self, catalog: &Catalog, plan: &PlanRef) -> (PlanRef, usize) {
        let views: Vec<(Fingerprint, &MaterializedView)> = self
            .live
            .iter()
            .filter_map(|l| self.store.view(l.id).map(|v| (l.canonical_fp, v)))
            .collect();
        route_through_views(catalog, &views, plan)
    }

    /// The backing store (for inspection; all mutation goes through the
    /// manager).
    pub fn store(&self) -> &ViewStore {
        &self.store
    }

    /// Look up a live view's materialized record.
    pub fn view(&self, id: ViewId) -> Option<&MaterializedView> {
        self.store.view(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_engine::{Executor, Pricing};
    use av_plan::PlanBuilder;
    use av_workload::cloud::mini;

    /// A (query, shared-subtree) pair from the mini workload's analysis.
    fn shared_candidate() -> (av_workload::Workload, PlanRef, Fingerprint) {
        let w = mini(21);
        let plans = w.plans();
        let mut analyzer = av_equiv::Analyzer::new();
        analyzer.min_query_frequency = 2;
        let analysis = analyzer.analyze(&plans);
        let cand = analysis.candidates.first().expect("mini has candidates");
        let fp = Fingerprint::of(&cand.canonical);
        (w, cand.plan.clone(), fp)
    }

    #[test]
    fn admit_then_route_rewrites_matching_queries() {
        let (w, cand_plan, fp) = shared_candidate();
        let mut catalog = w.catalog.clone();
        let mut mgr = ViewLifecycleManager::new(LifecycleConfig {
            byte_budget: usize::MAX,
            min_benefit_per_byte: 0.0,
            tenant_byte_budget: usize::MAX,
        });
        let out = mgr
            .admit(&mut catalog, cand_plan, fp, 1.0, Pricing::paper_defaults())
            .expect("materializes");
        assert!(matches!(out, AdmitOutcome::Admitted { .. }));
        assert_eq!(mgr.live().len(), 1);

        let exec = Executor::new(&catalog, Pricing::paper_defaults());
        let mut total_hits = 0;
        for q in &w.plans() {
            let (rewritten, hits) = mgr.route(&catalog, q);
            if hits > 0 {
                total_hits += hits;
                // Routed queries must return identical rows.
                let orig = exec.run(q).expect("orig runs");
                let new = exec.run(&rewritten).expect("rewritten runs");
                assert_eq!(orig.batch, new.batch);
                assert!(
                    exec.cost(&rewritten).expect("cost") <= exec.cost(q).expect("cost") + 1e-12
                );
            }
        }
        assert!(total_hits >= 2, "a shared candidate must route >= 2 queries");
    }

    #[test]
    fn duplicate_admission_is_rejected() {
        let (w, cand_plan, fp) = shared_candidate();
        let mut catalog = w.catalog.clone();
        let mut mgr = ViewLifecycleManager::new(LifecycleConfig::default());
        mgr.admit(
            &mut catalog,
            cand_plan.clone(),
            fp,
            1.0,
            Pricing::paper_defaults(),
        )
        .expect("first");
        let out = mgr
            .admit(&mut catalog, cand_plan, fp, 1.0, Pricing::paper_defaults())
            .expect("second");
        assert!(matches!(out, AdmitOutcome::RejectedScore { .. }));
        assert_eq!(mgr.live().len(), 1);
    }

    #[test]
    fn nonpositive_benefit_is_rejected_and_table_dropped() {
        let (w, cand_plan, fp) = shared_candidate();
        let mut catalog = w.catalog.clone();
        let before = catalog.len();
        let mut mgr = ViewLifecycleManager::new(LifecycleConfig::default());
        let out = mgr
            .admit(&mut catalog, cand_plan, fp, -0.5, Pricing::paper_defaults())
            .expect("attempt");
        assert!(matches!(out, AdmitOutcome::RejectedScore { .. }));
        assert!(mgr.live().is_empty());
        assert_eq!(catalog.len(), before, "rejected view leaves no table");
    }

    #[test]
    fn budget_evicts_weakest_first_and_protects_incumbents() {
        // Two tiny single-table views over distinct tables so byte sizes are
        // comparable and both would fit alone.
        let w = mini(22);
        let mut catalog = w.catalog.clone();
        let table_names: Vec<String> = {
            let mut names: Vec<String> =
                catalog.table_names().map(|s| s.to_string()).collect();
            names.sort();
            names
        };
        // Project the first column of each table so the materialized
        // results are non-empty (a zero-byte view makes any budget moot).
        let mk = |catalog: &Catalog, t: &str| {
            let col = format!("x.{}", catalog.table(t).expect("exists").column_names[0]);
            PlanBuilder::scan(t, "x")
                .project(&[(col.as_str(), col.as_str())])
                .build()
        };
        let plan_a = mk(&catalog, &table_names[0]);
        let plan_b = mk(&catalog, &table_names[1]);
        let fp_a = Fingerprint::of(&canonicalize(&plan_a));
        let fp_b = Fingerprint::of(&canonicalize(&plan_b));
        assert_ne!(fp_a, fp_b);

        // Budget of one view's bytes (empty results share a size floor).
        let mut probe = ViewLifecycleManager::new(LifecycleConfig {
            byte_budget: usize::MAX,
            min_benefit_per_byte: 0.0,
            tenant_byte_budget: usize::MAX,
        });
        probe
            .admit(
                &mut catalog,
                plan_a.clone(),
                fp_a,
                1.0,
                Pricing::paper_defaults(),
            )
            .expect("probe");
        let one_view_bytes = probe.live_bytes();
        probe.evict(&mut catalog, fp_a);

        let mut mgr = ViewLifecycleManager::new(LifecycleConfig {
            byte_budget: one_view_bytes,
            min_benefit_per_byte: 0.0,
            tenant_byte_budget: usize::MAX,
        });
        mgr.admit(
            &mut catalog,
            plan_a.clone(),
            fp_a,
            1.0,
            Pricing::paper_defaults(),
        )
        .expect("a admitted");

        // A weaker candidate cannot displace the incumbent...
        let out = mgr
            .admit(
                &mut catalog,
                plan_b.clone(),
                fp_b,
                0.5,
                Pricing::paper_defaults(),
            )
            .expect("b attempt");
        assert!(matches!(out, AdmitOutcome::RejectedBudget { .. }));
        assert_eq!(mgr.live_fingerprints(), vec![fp_a]);

        // ...but a stronger one evicts it.
        let out = mgr
            .admit(&mut catalog, plan_b, fp_b, 2.0, Pricing::paper_defaults())
            .expect("b retry");
        match out {
            AdmitOutcome::Admitted { evicted, .. } => assert_eq!(evicted.len(), 1),
            other => panic!("expected admission, got {other:?}"),
        }
        assert_eq!(mgr.live_fingerprints(), vec![fp_b]);
        assert!(mgr.live_bytes() <= one_view_bytes);
    }

    #[test]
    fn tenant_share_contains_eviction_to_owner() {
        let w = mini(22);
        let mut catalog = w.catalog.clone();
        let table_names: Vec<String> = {
            let mut names: Vec<String> =
                catalog.table_names().map(|s| s.to_string()).collect();
            names.sort();
            names
        };
        let mk = |catalog: &Catalog, t: &str| {
            let col = format!("x.{}", catalog.table(t).expect("exists").column_names[0]);
            PlanBuilder::scan(t, "x")
                .project(&[(col.as_str(), col.as_str())])
                .build()
        };
        let plan_a = mk(&catalog, &table_names[0]);
        let plan_b = mk(&catalog, &table_names[1]);
        let fp_a = Fingerprint::of(&canonicalize(&plan_a));
        let fp_b = Fingerprint::of(&canonicalize(&plan_b));

        // Measure one view's bytes to size the tenant share.
        let mut probe = ViewLifecycleManager::new(LifecycleConfig {
            byte_budget: usize::MAX,
            min_benefit_per_byte: 0.0,
            tenant_byte_budget: usize::MAX,
        });
        probe
            .admit(
                &mut catalog,
                plan_a.clone(),
                fp_a,
                1.0,
                Pricing::paper_defaults(),
            )
            .expect("probe");
        let one_view_bytes = probe.live_bytes();
        probe.evict(&mut catalog, fp_a);

        // Global budget fits both; tenant share fits only one.
        let mut mgr = ViewLifecycleManager::new(LifecycleConfig {
            byte_budget: usize::MAX,
            min_benefit_per_byte: 0.0,
            tenant_byte_budget: one_view_bytes,
        });
        let out = mgr
            .admit_owned(
                &mut catalog,
                plan_a.clone(),
                fp_a,
                1.0,
                Pricing::paper_defaults(),
                Some("acme"),
            )
            .expect("a admitted");
        assert!(matches!(out, AdmitOutcome::Admitted { .. }));
        assert_eq!(mgr.live_bytes_of(Some("acme")), one_view_bytes);

        // A weaker view from the same tenant is turned away with the
        // tenant-specific rejection — the global budget had room.
        let out = mgr
            .admit_owned(
                &mut catalog,
                plan_b.clone(),
                fp_b,
                0.5,
                Pricing::paper_defaults(),
                Some("acme"),
            )
            .expect("b attempt");
        match out {
            AdmitOutcome::RejectedTenantBudget { tenant, .. } => assert_eq!(tenant, "acme"),
            other => panic!("expected tenant rejection, got {other:?}"),
        }

        // A stronger view from the same tenant displaces only that tenant's
        // weaker incumbent.
        let out = mgr
            .admit_owned(
                &mut catalog,
                plan_b.clone(),
                fp_b,
                2.0,
                Pricing::paper_defaults(),
                Some("acme"),
            )
            .expect("b retry");
        match out {
            AdmitOutcome::Admitted { evicted, .. } => assert_eq!(evicted.len(), 1),
            other => panic!("expected admission, got {other:?}"),
        }
        assert_eq!(mgr.live_fingerprints(), vec![fp_b]);

        // A different tenant is unaffected by acme's exhausted share.
        let out = mgr
            .admit_owned(
                &mut catalog,
                plan_a,
                fp_a,
                0.1,
                Pricing::paper_defaults(),
                Some("globex"),
            )
            .expect("other tenant");
        assert!(matches!(out, AdmitOutcome::Admitted { .. }));
        assert_eq!(mgr.live_bytes_of(Some("globex")), one_view_bytes);
    }
}
