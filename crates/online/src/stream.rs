//! Streaming workload ingestion with a sliding window.
//!
//! [`WorkloadStream`] keeps the most recent `window_size` arrivals together
//! with their measured execution cost, and exposes window-level statistics
//! (via `av-workload::stats`-shaped [`WorkloadStats`]) and the per-candidate
//! *cost mass* distribution that [`crate::drift::DriftDetector`] compares
//! window over window.

use av_equiv::{Analyzer, WorkloadAnalysis};
use av_plan::{Fingerprint, PlanRef};
use av_workload::stats::WorkloadStats;
use std::collections::{BTreeMap, VecDeque};

/// One query that arrived on the stream.
#[derive(Debug, Clone)]
pub struct ArrivedQuery {
    /// Monotonic arrival sequence number (0-based).
    pub seq: u64,
    pub plan: PlanRef,
    /// Measured (or estimated) unrewritten execution cost in dollars,
    /// used as the frequency weight in the drift signal.
    pub cost: f64,
}

/// Sliding window over the arriving workload.
#[derive(Debug)]
pub struct WorkloadStream {
    window: VecDeque<ArrivedQuery>,
    window_size: usize,
    total_seen: u64,
    /// Clusters must span at least this many distinct queries to count as
    /// candidates (mirrors the batch pipeline's setting of 2).
    pub min_query_frequency: usize,
}

impl WorkloadStream {
    pub fn new(window_size: usize) -> WorkloadStream {
        assert!(window_size > 0, "window_size must be positive");
        WorkloadStream {
            window: VecDeque::with_capacity(window_size),
            window_size,
            total_seen: 0,
            min_query_frequency: 2,
        }
    }

    /// Record one arrival; evicts the oldest entry once the window is full.
    /// Returns the arrival's sequence number.
    pub fn ingest(&mut self, plan: PlanRef, cost: f64) -> u64 {
        let seq = self.total_seen;
        self.total_seen += 1;
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(ArrivedQuery { seq, plan, cost });
        seq
    }

    /// Number of arrivals ever ingested (not just the window).
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Current window occupancy.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// True once the window holds `window_size` queries.
    pub fn is_full(&self) -> bool {
        self.window.len() == self.window_size
    }

    /// Plans currently in the window, oldest first.
    pub fn plans(&self) -> Vec<PlanRef> {
        self.window.iter().map(|a| a.plan.clone()).collect()
    }

    /// Measured costs currently in the window, aligned with [`plans`].
    ///
    /// [`plans`]: WorkloadStream::plans
    pub fn costs(&self) -> Vec<f64> {
        self.window.iter().map(|a| a.cost).collect()
    }

    /// Total unrewritten cost of the window.
    pub fn window_cost(&self) -> f64 {
        self.window.iter().map(|a| a.cost).sum()
    }

    /// Run the equivalence analysis over the current window.
    pub fn analyze(&self) -> WorkloadAnalysis {
        let mut analyzer = Analyzer::new();
        analyzer.min_query_frequency = self.min_query_frequency;
        analyzer.analyze(&self.plans())
    }

    /// The drift signal: for each candidate subquery (keyed by its canonical
    /// fingerprint), the total unrewritten cost of the window queries that
    /// could use it. Shifts in this distribution mean the *reusable* part of
    /// the workload changed — exactly when re-selection can pay off.
    pub fn candidate_mass(&self) -> BTreeMap<Fingerprint, f64> {
        let analysis = self.analyze();
        self.candidate_mass_from(&analysis)
    }

    /// Same as [`candidate_mass`], reusing an analysis already computed.
    ///
    /// [`candidate_mass`]: WorkloadStream::candidate_mass
    pub fn candidate_mass_from(&self, analysis: &WorkloadAnalysis) -> BTreeMap<Fingerprint, f64> {
        let mut mass: BTreeMap<Fingerprint, f64> = BTreeMap::new();
        for (i, matches) in analysis.query_matches.iter().enumerate() {
            let cost = self.window[i].cost;
            for m in matches {
                let fp = Fingerprint::of(&analysis.candidates[m.candidate].canonical);
                *mass.entry(fp).or_insert(0.0) += cost;
            }
        }
        mass
    }

    /// Table-I-style statistics for the current window (`projects`/`tables`
    /// are workload-level facts the stream does not know; pass them in).
    pub fn stats(&self, name: &str, projects: usize, tables: usize) -> WorkloadStats {
        let analysis = self.analyze();
        WorkloadStats {
            name: name.to_string(),
            projects,
            tables,
            queries: self.window.len(),
            subqueries: analysis.total_subqueries,
            equivalent_pairs: analysis.equivalent_pairs,
            candidate_subqueries: analysis.candidates.len(),
            associated_queries: analysis.associated_queries(),
            overlapping_pairs: analysis.overlap_pairs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_workload::cloud::mini;

    #[test]
    fn window_slides_and_counts() {
        let w = mini(7);
        let plans = w.plans();
        let mut s = WorkloadStream::new(4);
        for (i, p) in plans.iter().take(6).enumerate() {
            let seq = s.ingest(p.clone(), 1.0 + i as f64);
            assert_eq!(seq, i as u64);
        }
        assert_eq!(s.total_seen(), 6);
        assert_eq!(s.len(), 4);
        assert!(s.is_full());
        // Oldest two evicted: window holds arrivals 2..6.
        assert_eq!(s.costs(), vec![3.0, 4.0, 5.0, 6.0]);
        assert!((s.window_cost() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn analysis_matches_batch_pipeline_on_same_queries() {
        let w = mini(8);
        let plans = w.plans();
        let mut s = WorkloadStream::new(plans.len());
        for p in &plans {
            s.ingest(p.clone(), 1.0);
        }
        let stream_analysis = s.analyze();
        let mut analyzer = Analyzer::new();
        analyzer.min_query_frequency = 2;
        let batch_analysis = analyzer.analyze(&plans);
        assert_eq!(
            stream_analysis.candidates.len(),
            batch_analysis.candidates.len()
        );
        assert_eq!(
            stream_analysis.total_subqueries,
            batch_analysis.total_subqueries
        );
    }

    #[test]
    fn candidate_mass_weights_by_cost() {
        let w = mini(9);
        let plans = w.plans();
        let mut s = WorkloadStream::new(plans.len());
        for p in &plans {
            s.ingest(p.clone(), 2.0);
        }
        let mass = s.candidate_mass();
        assert!(!mass.is_empty(), "mini workload has shared subqueries");
        // Every mass entry is a positive multiple of the per-query cost.
        for (&fp, &m) in &mass {
            assert!(m >= 2.0, "mass of {fp:?} must cover >= 1 query");
            assert!((m / 2.0).fract().abs() < 1e-9);
        }
    }

    #[test]
    fn stats_report_window_shape() {
        let w = mini(10);
        let plans = w.plans();
        let mut s = WorkloadStream::new(plans.len());
        for p in &plans {
            s.ingest(p.clone(), 1.0);
        }
        let stats = s.stats("mini-window", w.num_projects, w.catalog.len());
        assert_eq!(stats.queries, plans.len());
        assert!(stats.candidate_subqueries > 0);
        assert!(stats.associated_queries > 0);
        assert!(!stats.render().is_empty());
    }
}
