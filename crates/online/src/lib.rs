//! # av-online — streaming workload ingestion and adaptive view lifecycle
//!
//! The batch pipeline (`av-core`) selects views once, for a workload known
//! up front. This crate runs the same machinery *online*: queries arrive one
//! at a time, a sliding window tracks the recent workload
//! ([`stream::WorkloadStream`]), a drift detector watches the window's
//! candidate cost-mass distribution ([`drift::DriftDetector`]), and when the
//! workload shifts, selection (IterView/RLView) is re-run on the window and
//! the live view set is patched incrementally
//! ([`reopt::reoptimize`] → [`lifecycle::ViewLifecycleManager`]).
//!
//! [`OnlineEngine`] ties the pieces together: every arrival is routed
//! through the live views (`av-engine::rewrite`), measured, ingested, and
//! periodically checked for drift. An [`av_trace::Tracer`] records
//! admissions, evictions, rewrite hits, drift triggers (as instant span
//! events) and per-phase spans/timings under `online.*` names, exportable
//! as a JSON snapshot or a chrome://tracing dump.

#![forbid(unsafe_code)]

pub mod drift;
pub mod lifecycle;
pub mod metrics;
pub mod reopt;
pub mod stream;

pub use drift::{DriftConfig, DriftDetector, DriftReport};
pub use lifecycle::{
    route_through_views, AdmitOutcome, LifecycleConfig, LiveView, ViewLifecycleManager,
};
pub use metrics::{Metrics, MetricsSnapshot};
pub use av_trace::Tracer as OnlineTracer;
pub use reopt::{reoptimize, CandidateView, OnlineSelector, ReoptPlan, WindowSnapshot};
pub use stream::{ArrivedQuery, WorkloadStream};

use av_cost::{tables_meta, CostEstimator, FeatureInput};
use av_engine::{Catalog, EngineError, ExecCache, Pricing};
use av_obs::{Residual, ResidualStore, ResidualSummary};
use av_plan::{Fingerprint, PlanRef};
use av_trace::Tracer;
use std::collections::BTreeMap;

/// Everything the online engine can be tuned with.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    pub pricing: Pricing,
    /// Sliding-window length (queries).
    pub window_size: usize,
    /// Drift is checked every `check_every` arrivals once the window is
    /// full (checking costs an equivalence analysis of the window).
    pub check_every: u64,
    pub drift: DriftConfig,
    pub lifecycle: LifecycleConfig,
    /// Selection algorithm used by (re-)optimization.
    pub selector: OnlineSelector,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            pricing: Pricing::paper_defaults(),
            window_size: 64,
            check_every: 8,
            drift: DriftConfig::default(),
            lifecycle: LifecycleConfig::default(),
            selector: OnlineSelector::default(),
        }
    }
}

/// What happened to one arrival.
#[derive(Debug, Clone, Copy)]
pub struct QueryOutcome {
    pub seq: u64,
    /// Cost of the query as submitted (no views).
    pub baseline_cost: f64,
    /// Cost actually paid (after routing through live views).
    pub actual_cost: f64,
    /// Subtree replacements made by routing.
    pub rewrite_hits: usize,
    /// Drift declared at this arrival, if any.
    pub drift: Option<DriftReport>,
    /// Whether a re-optimization ran (and its plan was applied).
    pub reoptimized: bool,
}

/// Cumulative cost accounting for a session.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineReport {
    pub queries: u64,
    /// Σ baseline (unrewritten) cost.
    pub baseline_cost: f64,
    /// Σ actually paid query cost.
    pub actual_cost: f64,
    /// Σ materialization overhead of every admitted view.
    pub view_overhead: f64,
    /// Views live right now.
    pub live_views: usize,
}

impl OnlineReport {
    /// Net dollars saved vs. running everything unrewritten:
    /// `baseline − actual − overhead`.
    pub fn net_saving(&self) -> f64 {
        self.baseline_cost - self.actual_cost - self.view_overhead
    }
}

/// The online system: ingest queries, route them through live views, adapt
/// the view set as the workload drifts.
pub struct OnlineEngine {
    config: OnlineConfig,
    catalog: Catalog,
    stream: WorkloadStream,
    drift: DriftDetector,
    lifecycle: ViewLifecycleManager,
    tracer: Tracer,
    estimator: Box<dyn CostEstimator>,
    /// Shared result cache: repeat arrivals of a window-resident query and
    /// re-optimization dry-runs are priced once per catalog epoch. Admit /
    /// evict bump the epoch, so routing changes invalidate it naturally.
    cache: ExecCache,
    /// Whether the initial (bootstrap) selection has run.
    bootstrapped: bool,
    report: OnlineReport,
    /// Estimated cost per window-query fingerprint, rebuilt after every
    /// re-optimization: `plan fp → (estimate, view canonical fp)`.
    estimates: BTreeMap<u64, (f64, Fingerprint)>,
    /// Estimator-residual stream: (estimate, measurement) for every routed
    /// arrival whose estimate is known.
    residuals: ResidualStore,
}

impl OnlineEngine {
    pub fn new(
        catalog: Catalog,
        estimator: Box<dyn CostEstimator>,
        config: OnlineConfig,
    ) -> OnlineEngine {
        let tracer = Tracer::new();
        OnlineEngine {
            catalog,
            stream: WorkloadStream::new(config.window_size),
            drift: DriftDetector::new(config.drift),
            lifecycle: ViewLifecycleManager::new(config.lifecycle),
            estimator,
            cache: ExecCache::new(config.pricing).with_tracer(tracer.clone()),
            tracer,
            bootstrapped: false,
            config,
            report: OnlineReport::default(),
            estimates: BTreeMap::new(),
            residuals: ResidualStore::new(4096),
        }
    }

    /// Replace the engine's tracer (e.g. with a shared one whose snapshot a
    /// harness wants to export, or a disabled one to suppress span
    /// recording). Call before ingesting: earlier telemetry stays on the
    /// old tracer. The execution cache is re-pointed at the same tracer.
    pub fn with_tracer(mut self, tracer: Tracer) -> OnlineEngine {
        self.cache = ExecCache::new(self.config.pricing).with_tracer(tracer.clone());
        self.tracer = tracer;
        self
    }

    /// Process one arriving query end to end: route it through the live
    /// views, measure both costs, feed the window, and — on the check
    /// cadence — detect drift and re-optimize.
    pub fn ingest(&mut self, plan: &PlanRef) -> Result<QueryOutcome, EngineError> {
        // 1. Route through live views and price both variants.
        let (routed, hits) = self
            .tracer
            .time("online.route", || self.lifecycle.route(&self.catalog, plan));

        let baseline_cost = self.cache.cost(&self.catalog, plan)?;
        let actual_cost = if hits > 0 {
            self.cache.cost(&self.catalog, &routed)?
        } else {
            baseline_cost
        };

        // Estimator-residual telemetry: a routed arrival whose estimate was
        // frozen at the last re-optimization contributes an
        // (estimated, measured) pair to the residual stream.
        if hits > 0 {
            if let Some((est, view_fp)) = self.estimates.get(&Fingerprint::of(plan).0).copied() {
                self.residuals.record(Residual {
                    plan_fp: Fingerprint::of(plan).0,
                    view_fp: view_fp.0,
                    root_op: plan.op_keyword(),
                    estimated: est,
                    measured: actual_cost,
                });
                self.tracer.metrics().inc("online.residuals_recorded");
            }
        }

        // 2. Window bookkeeping. The window stores the *baseline* cost:
        //    candidate benefits must be judged against unrewritten queries.
        let seq = self.stream.ingest(plan.clone(), baseline_cost);

        let metrics = self.tracer.metrics();
        metrics.inc("online.queries_ingested");
        if hits > 0 {
            metrics.inc("online.queries_rewritten");
            metrics.add("online.rewrite_hits", hits as u64);
        }
        metrics.observe("online.query_cost_baseline", baseline_cost);
        metrics.observe("online.query_cost_actual", actual_cost);
        self.report.queries += 1;
        self.report.baseline_cost += baseline_cost;
        self.report.actual_cost += actual_cost;

        // 3. Adaptation: bootstrap when the window first fills, then drift
        //    checks on the configured cadence.
        let mut drift_report = None;
        let mut reoptimized = false;
        if self.stream.is_full() {
            if !self.bootstrapped {
                self.bootstrapped = true;
                let analysis = self.stream.analyze();
                let mass = self.stream.candidate_mass_from(&analysis);
                self.reoptimize_and_apply(&analysis)?;
                self.drift.rebase(&mass);
                reoptimized = true;
            } else if (seq + 1).is_multiple_of(self.config.check_every.max(1)) {
                let tracer = self.tracer.clone();
                let (analysis, report) = tracer.time("online.drift_check", || {
                    let analysis = self.stream.analyze();
                    let mass = self.stream.candidate_mass_from(&analysis);
                    let report = self.drift.observe(seq, &mass);
                    (analysis, report)
                });
                drift_report = report;
                if drift_report.is_some() {
                    tracer.instant("online.drift_trigger");
                    tracer.metrics().inc("online.drift_triggers");
                    self.reoptimize_and_apply(&analysis)?;
                    reoptimized = true;
                }
            }
        }

        self.report.live_views = self.lifecycle.live().len();
        Ok(QueryOutcome {
            seq,
            baseline_cost,
            actual_cost,
            rewrite_hits: hits,
            drift: drift_report,
            reoptimized,
        })
    }

    /// Re-run selection on the current window and apply the incremental
    /// create/drop plan to the live set.
    fn reoptimize_and_apply(
        &mut self,
        analysis: &av_equiv::WorkloadAnalysis,
    ) -> Result<(), EngineError> {
        let tracer = self.tracer.clone();
        tracer.time("online.reopt", || {
            let plan = reoptimize(
                &self.catalog,
                analysis,
                WindowSnapshot::new(&self.stream.plans(), &self.stream.costs()),
                self.estimator.as_ref(),
                &self.config.selector,
                &self.lifecycle.live_fingerprints(),
                &self.cache,
            )?;
            let metrics = tracer.metrics();
            metrics.inc("online.reopt_runs");

            for fp in &plan.drop {
                if self.lifecycle.evict(&mut self.catalog, *fp).is_some() {
                    metrics.inc("online.views_evicted");
                }
            }
            for cand in &plan.create {
                let outcome = self.lifecycle.admit(
                    &mut self.catalog,
                    cand.plan.clone(),
                    cand.canonical_fp,
                    cand.expected_benefit,
                    self.config.pricing,
                )?;
                match outcome {
                    AdmitOutcome::Admitted { id, evicted } => {
                        metrics.inc("online.views_admitted");
                        metrics.add("online.views_evicted", evicted.len() as u64);
                        if let Some(v) = self.lifecycle.view(id) {
                            self.report.view_overhead += v.total_overhead();
                            metrics.observe("online.view_bytes", v.byte_size as f64);
                        }
                    }
                    AdmitOutcome::RejectedScore { .. }
                    | AdmitOutcome::RejectedBudget { .. }
                    | AdmitOutcome::RejectedTenantBudget { .. } => {
                        metrics.inc("online.admissions_rejected");
                    }
                }
            }

            // Rebuild the frozen estimate table against the new live set:
            // price every window query that routes through a view, keyed by
            // the query's submitted fingerprint.
            self.estimates.clear();
            for plan in &self.stream.plans() {
                let (routed, hits) = self.lifecycle.route(&self.catalog, plan);
                if hits == 0 {
                    continue;
                }
                let routed_tables = routed.base_tables();
                let fired = self.lifecycle.live().iter().find_map(|l| {
                    self.lifecycle
                        .view(l.id)
                        .filter(|v| routed_tables.contains(&v.table_name))
                        .map(|v| (l.canonical_fp, v.plan.clone()))
                });
                if let Some((view_fp, view_plan)) = fired {
                    let input = FeatureInput {
                        query: plan.clone(),
                        view: view_plan.clone(),
                        tables: tables_meta(&self.catalog, plan, &view_plan),
                    };
                    let est = self.estimator.estimate(&input);
                    self.estimates.insert(Fingerprint::of(plan).0, (est, view_fp));
                }
            }
            metrics.set_gauge("online.frozen_estimates", self.estimates.len() as f64);
            Ok(())
        })
    }

    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn lifecycle(&self) -> &ViewLifecycleManager {
        &self.lifecycle
    }

    pub fn stream(&self) -> &WorkloadStream {
        &self.stream
    }

    pub fn metrics(&self) -> &Metrics {
        self.tracer.metrics()
    }

    /// The engine's tracer: spans for routing, drift checks and
    /// re-optimization, plus instant `online.drift_trigger` events.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Hit/miss counters of the shared execution cache.
    pub fn cache_stats(&self) -> av_engine::CacheStats {
        self.cache.stats()
    }

    /// The estimator-residual stream (raw ring + q-error aggregates).
    pub fn residuals(&self) -> &ResidualStore {
        &self.residuals
    }

    /// Per-view / per-operator q-error summary of the residual stream.
    pub fn residual_summary(&self) -> ResidualSummary {
        self.residuals.summary()
    }

    /// JSON snapshot of the metrics registry.
    pub fn metrics_json(&self) -> String {
        self.tracer.metrics().to_json()
    }

    /// Cumulative cost accounting so far.
    pub fn report(&self) -> OnlineReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_cost::OptimizerEstimator;
    use av_select::IterViewConfig;
    use av_workload::cloud::mini;

    fn engine_for(w: &av_workload::Workload, window: usize, check_every: u64) -> OnlineEngine {
        OnlineEngine::new(
            w.catalog.clone(),
            Box::new(OptimizerEstimator::default()),
            OnlineConfig {
                pricing: Pricing::paper_defaults(),
                window_size: window,
                check_every,
                drift: DriftConfig {
                    threshold: 0.3,
                    min_queries_between: 8,
                },
                lifecycle: LifecycleConfig {
                    byte_budget: usize::MAX,
                    min_benefit_per_byte: 0.0,
                    tenant_byte_budget: usize::MAX,
                },
                selector: OnlineSelector::IterView(IterViewConfig {
                    iterations: 30,
                    seed: 5,
                    freeze_after: None,
                }),
            },
        )
    }

    #[test]
    fn bootstrap_admits_views_and_routes_later_arrivals() {
        let w = mini(51);
        let plans = w.plans();
        let mut eng = engine_for(&w, plans.len(), 4);
        // First pass fills the window; the last arrival bootstraps.
        let mut bootstrapped_at = None;
        for (i, p) in plans.iter().enumerate() {
            let out = eng.ingest(p).expect("ingests");
            if out.reoptimized && bootstrapped_at.is_none() {
                bootstrapped_at = Some(i);
            }
        }
        assert_eq!(
            bootstrapped_at,
            Some(plans.len() - 1),
            "bootstrap fires exactly when the window fills"
        );
        assert!(eng.metrics().counter("online.views_admitted") > 0);
        assert!(!eng.lifecycle().live().is_empty());

        // Second pass: the same queries should now hit live views.
        let mut hits = 0;
        for p in &plans {
            let out = eng.ingest(p).expect("ingests");
            hits += out.rewrite_hits;
            assert!(out.actual_cost <= out.baseline_cost + 1e-12);
        }
        assert!(hits > 0, "live views must route repeat queries");
        assert_eq!(eng.metrics().counter("online.rewrite_hits"), hits as u64);

        let report = eng.report();
        assert_eq!(report.queries, 2 * plans.len() as u64);
        assert!(report.actual_cost <= report.baseline_cost);
    }

    #[test]
    fn stable_workload_never_redrifts() {
        let w = mini(52);
        let plans = w.plans();
        let mut eng = engine_for(&w, plans.len(), 4);
        for _ in 0..3 {
            for p in &plans {
                eng.ingest(p).expect("ingests");
            }
        }
        assert_eq!(
            eng.metrics().counter("online.drift_triggers"),
            0,
            "replaying the same workload is not drift"
        );
        assert_eq!(
            eng.metrics().counter("online.reopt_runs"),
            1,
            "bootstrap only"
        );
    }

    #[test]
    fn metrics_snapshot_reflects_session() {
        let w = mini(53);
        let plans = w.plans();
        let mut eng = engine_for(&w, plans.len(), 4);
        for _ in 0..2 {
            for p in &plans {
                eng.ingest(p).expect("ingests");
            }
        }
        let text = eng.metrics_json();
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let counters = doc
            .as_obj()
            .and_then(|o| o.iter().find(|(k, _)| k == "counters"))
            .map(|(_, v)| v.clone())
            .expect("counters key");
        let get = |name: &str| {
            counters
                .as_obj()
                .and_then(|o| o.iter().find(|(k, _)| k == name))
                .and_then(|(_, v)| v.as_f64())
                .unwrap_or(0.0)
        };
        assert_eq!(get("online.queries_ingested"), (plans.len() * 2) as f64);
        assert!(get("online.views_admitted") >= 1.0);
        assert!(get("online.rewrite_hits") >= 1.0);
    }

    #[test]
    fn routed_arrivals_feed_the_residual_stream() {
        let w = mini(55);
        let plans = w.plans();
        let mut eng = engine_for(&w, plans.len(), 4);
        // Pass 1 fills the window and bootstraps (freezing estimates);
        // pass 2 routes repeats through the admitted views.
        for _ in 0..2 {
            for p in &plans {
                eng.ingest(p).expect("ingests");
            }
        }
        let summary = eng.residual_summary();
        assert!(summary.recorded > 0, "routed repeats must record residuals");
        assert!(!summary.per_view.is_empty(), "per-view aggregates populate");
        assert!(!summary.per_op.is_empty(), "per-op aggregates populate");
        let (total_q, total_degen) = summary
            .per_op
            .iter()
            .fold((0, 0), |(s, d), (_, a)| (s + a.samples, d + a.degenerate));
        assert_eq!(total_q + total_degen, summary.recorded);
        assert_eq!(
            eng.metrics().counter("online.residuals_recorded"),
            summary.recorded
        );
        let recent = eng.residuals().recent(8);
        assert!(!recent.is_empty());
        assert!(recent.iter().all(|r| r.measured > 0.0));
    }

    #[test]
    fn session_records_spans_and_timings() {
        let w = mini(54);
        let plans = w.plans();
        let mut eng = engine_for(&w, plans.len(), 4);
        for _ in 0..2 {
            for p in &plans {
                eng.ingest(p).expect("ingests");
            }
        }
        let snap = eng.tracer().snapshot();
        let names: std::collections::BTreeSet<&str> =
            snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains("online.route"), "routing spans: {names:?}");
        assert!(
            names.contains("online.reopt"),
            "bootstrap re-optimization span: {names:?}"
        );
        assert!(
            names.contains("exec.scan"),
            "cache-miss executions record operator spans: {names:?}"
        );
        // Phase timings accumulate alongside the spans.
        let route = eng.metrics().timing("online.route").expect("route timing");
        assert_eq!(route.count, 2 * plans.len() as u64);
        // Cache hit/miss counters flow through the shared tracer.
        let m = eng.metrics();
        assert_eq!(
            m.counter("engine.cache_hit") + m.counter("engine.cache_miss"),
            eng.cache_stats().hits + eng.cache_stats().misses
        );
    }
}
