//! Lightweight metrics registry for the online subsystem: counters,
//! histograms and per-phase timing accumulators, exportable as a JSON
//! snapshot.
//!
//! Everything is name-addressed and lazily created, so call sites stay
//! one-liners (`metrics.inc("views_admitted")`). The registry is plain
//! single-threaded state — the online loop is a single ingestion thread.

use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Histogram bucket upper bounds: powers of ten spanning the dollar costs
/// and byte sizes this system observes. Values above the last bound land in
/// a `+Inf` overflow bucket.
const BUCKET_BOUNDS: [f64; 13] = [
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3,
];

/// A fixed-bucket histogram with count/sum/min/max summary statistics.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKET_BOUNDS.len() + 1],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    pub fn observe(&mut self, value: f64) {
        let bucket = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            mean: self.mean(),
            // Only non-empty buckets are exported; `upper` is the bucket's
            // inclusive upper bound. The overflow bucket exports `f64::MAX`
            // (JSON has no +Inf literal).
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| BucketSnapshot {
                    upper: BUCKET_BOUNDS.get(i).copied().unwrap_or(f64::MAX),
                    count: c,
                })
                .collect(),
        }
    }
}

/// Accumulated wall-clock time of one named phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timing {
    pub count: u64,
    pub total_seconds: f64,
}

/// The registry. Create one per online session.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    timings: BTreeMap<String, Timing>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a counter by `by`.
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Histogram accessor (None if nothing was observed under that name).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Time a phase, accumulating wall-clock seconds under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_seconds(name, start.elapsed().as_secs_f64());
        out
    }

    /// Record an externally measured duration under a phase name.
    pub fn record_seconds(&mut self, name: &str, seconds: f64) {
        let t = self.timings.entry(name.to_string()).or_default();
        t.count += 1;
        t.total_seconds += seconds;
    }

    /// Immutable snapshot of everything, for export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            timings: self
                .timings
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        TimingSnapshot {
                            count: v.count,
                            total_seconds: v.total_seconds,
                            mean_seconds: if v.count == 0 {
                                0.0
                            } else {
                                v.total_seconds / v.count as f64
                            },
                        },
                    )
                })
                .collect(),
        }
    }

    /// Pretty-printed JSON snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot serializes")
    }
}

/// Serializable form of the registry.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub timings: BTreeMap<String, TimingSnapshot>,
}

#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub buckets: Vec<BucketSnapshot>,
}

#[derive(Debug, Clone, Serialize)]
pub struct BucketSnapshot {
    pub upper: f64,
    pub count: u64,
}

#[derive(Debug, Clone, Serialize)]
pub struct TimingSnapshot {
    pub count: u64,
    pub total_seconds: f64,
    pub mean_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.inc("a");
        m.add("a", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_summary_is_correct() {
        let mut m = Metrics::new();
        for v in [0.5, 1.5, 2.0] {
            m.observe("cost", v);
        }
        let h = m.histogram("cost").expect("exists");
        assert_eq!(h.count(), 3);
        assert!((h.mean() - (4.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn timings_record_phases() {
        let mut m = Metrics::new();
        let out = m.time("phase", || 7);
        assert_eq!(out, 7);
        m.record_seconds("phase", 0.25);
        let snap = m.snapshot();
        let t = &snap.timings["phase"];
        assert_eq!(t.count, 2);
        assert!(t.total_seconds >= 0.25);
    }

    #[test]
    fn json_snapshot_parses_and_has_fields() {
        let mut m = Metrics::new();
        m.inc("views_admitted");
        m.observe("query_cost", 0.002);
        m.record_seconds("route", 0.001);
        let text = m.to_json();
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let obj = doc.as_obj().expect("object");
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["counters", "histograms", "timings"]);
    }
}
