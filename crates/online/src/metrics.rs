//! Metrics for the online subsystem — now provided by [`av_trace`].
//!
//! This module used to hold its own single-threaded registry and histogram
//! implementation; both were absorbed into the workspace-wide `av-trace`
//! crate (which also fixed `Histogram::observe` to reject NaN instead of
//! corrupting `sum`). The names below are re-exported so existing
//! `av_online::metrics::*` / `av_online::Metrics` call sites keep working.
//!
//! Counter/histogram/timing names now follow the workspace convention
//! `subsystem.noun_verb`, e.g. `online.views_admitted`, `online.route`.

pub use av_trace::{
    BucketSnapshot, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot, Timing,
    TimingSnapshot,
};
