//! `cargo run -p av-analyze --bin lint` — the determinism lint alone.
//!
//! Scans `crates/*/src`, reports findings, and checks the panic-site
//! ratchet. `-- --write-baseline` regenerates
//! `crates/analyze/unwrap-baseline.txt` from the current counts instead of
//! checking it (use after converting panic sites to typed errors, so the
//! ratchet tightens).

use av_analyze::lint::{format_baseline, lint_repo, parse_baseline, ratchet_findings};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels below the repo root");
    let baseline_path = root.join("crates/analyze/unwrap-baseline.txt");

    let report = match lint_repo(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot scan repo: {e}");
            return ExitCode::FAILURE;
        }
    };

    if std::env::args().any(|a| a == "--write-baseline") {
        if let Err(e) = std::fs::write(&baseline_path, format_baseline(&report.unwrap_counts)) {
            eprintln!("lint: cannot write baseline: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "lint: baseline rewritten with {} file(s)",
            report.unwrap_counts.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = std::fs::read_to_string(&baseline_path)
        .map(|t| parse_baseline(&t))
        .unwrap_or_default();
    let mut findings = report.findings;
    findings.extend(ratchet_findings(&report.unwrap_counts, &baseline));
    for f in &findings {
        eprintln!("lint: {f}");
    }
    if findings.is_empty() {
        println!("lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
