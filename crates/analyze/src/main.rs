//! `cargo run -p av-analyze` — the full static-analysis gate.
//!
//! With no arguments, runs every pass and exits non-zero if any finding
//! survives:
//!
//! 1. the determinism lint over `crates/*/src` (plus the panic-site
//!    ratchet against `crates/analyze/unwrap-baseline.txt`),
//! 2. the NN graph checker over the Wide-Deep cost-model spec,
//! 3. the plan verifier + semantic rewrite prover over the full JOB
//!    workload (all 226 queries at `AV_JOB_SCALE`, default 0.05), every
//!    candidate the equivalence analyzer emits, and every view rewrite
//!    those candidates produce — the CI gate requires ≥95% of rewrites
//!    statically `Proved` and none `Refuted`,
//! 4. the lock-order analysis over `crates/{serve,engine,online}` —
//!    the acquired-while-held graph must be cycle-free with every
//!    planner/deployment boundary edge on the audited allowlist.
//!
//! Subcommands run a single pass: `av-analyze prove` (pass 3),
//! `av-analyze lockorder [--dot PATH]` (pass 4, optionally writing the
//! graph as DOT), `av-analyze lint` (pass 1).

use av_analyze::lint::{lint_repo, parse_baseline, ratchet_findings};
use av_analyze::{prove_rewrite, verify_plan, verify_rewrite, widedeep_spec, Verdict, LOCK_CRATES};
use av_engine::{rewrite_subtree_with_view, Catalog, Pricing, ViewStore};
use av_plan::{Fingerprint, PlanRef};
use std::path::Path;
use std::process::ExitCode;

fn repo_root() -> &'static Path {
    // crates/analyze/ → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels below the repo root")
}

fn find_subtree(plan: &PlanRef, fp: Fingerprint) -> Option<PlanRef> {
    if Fingerprint::of(plan) == fp {
        return Some(plan.clone());
    }
    plan.children().iter().find_map(|c| find_subtree(c, fp))
}

fn run_lint_pass(failures: &mut usize) {
    let root = repo_root();
    match lint_repo(root) {
        Ok(report) => {
            let baseline_path = root.join("crates/analyze/unwrap-baseline.txt");
            let baseline = std::fs::read_to_string(&baseline_path)
                .map(|t| parse_baseline(&t))
                .unwrap_or_default();
            let mut findings = report.findings;
            findings.extend(ratchet_findings(&report.unwrap_counts, &baseline));
            for f in &findings {
                eprintln!("lint: {f}");
            }
            *failures += findings.len();
            println!(
                "lint: {} finding(s) over crates/*/src",
                findings.len()
            );
        }
        Err(e) => {
            eprintln!("lint: cannot scan repo: {e}");
            *failures += 1;
        }
    }
}

fn run_nn_pass(failures: &mut usize) {
    // Representative Wide-Deep shapes: 10 plan features, 40-keyword vocab,
    // 6 operators of 4 tokens, 8-char strings, 12 schema keywords.
    let spec = widedeep_spec(10, 40, 6, 4, 8, 12);
    let findings = spec.check();
    for f in &findings {
        eprintln!("nncheck: {f}");
    }
    *failures += findings.len();
    println!("nncheck: {} finding(s) in the Wide-Deep spec", findings.len());
}

fn run_plan_pass(failures: &mut usize) {
    let scale: f64 = std::env::var("AV_JOB_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let w = av_workload::job::job_workload(scale, 7);
    let mut catalog: Catalog = w.catalog.clone();
    let plans = w.plans();
    println!(
        "plans: verifying {} JOB queries at scale {scale}",
        plans.len()
    );

    let mut bad = 0usize;
    for (i, p) in plans.iter().enumerate() {
        if let Err(e) = verify_plan(&catalog, p) {
            eprintln!("plans: query {i} rejected: {e}");
            bad += 1;
        }
    }

    let analysis = av_equiv::analyze_workload(&plans);
    for cand in &analysis.candidates {
        if let Err(e) = verify_plan(&catalog, &cand.plan) {
            eprintln!("plans: candidate {} rejected: {e}", cand.id);
            bad += 1;
        }
    }

    // Materialize every candidate and verify every rewrite it induces.
    let mut views = ViewStore::new();
    for cand in &analysis.candidates {
        if let Err(e) = views.materialize(&mut catalog, cand.plan.clone(), Pricing::paper_defaults())
        {
            eprintln!("plans: candidate {} failed to materialize: {e}", cand.id);
            bad += 1;
        }
    }
    let resolve = |t: &str| {
        views
            .views()
            .iter()
            .find(|v| v.table_name == t)
            .map(|v| v.plan.clone())
    };
    let mut rewrites = 0usize;
    let (mut proved, mut unknown, mut refuted) = (0usize, 0usize, 0usize);
    for (i, matches) in analysis.query_matches.iter().enumerate() {
        for m in matches {
            let Some(view) = views.view(av_engine::ViewId(m.candidate)) else {
                continue;
            };
            let Some(subtree) = find_subtree(&plans[i], m.subtree_fp) else {
                continue;
            };
            let cat_cols = |t: &str| catalog.table_columns(t);
            let subtree_cols = subtree.output_columns(&cat_cols);
            let Some(view_cols) = catalog.table(&view.table_name).map(|t| t.column_names.clone())
            else {
                continue;
            };
            if subtree_cols.len() != view_cols.len() {
                continue;
            }
            let (rewritten, n) = rewrite_subtree_with_view(
                &plans[i],
                m.subtree_fp,
                view,
                &subtree_cols,
                &view_cols,
            );
            if n == 0 {
                continue;
            }
            rewrites += 1;
            match prove_rewrite(&catalog, &plans[i], &rewritten, &resolve) {
                Verdict::Proved => proved += 1,
                Verdict::Refuted { witness } => {
                    eprintln!(
                        "plans: rewrite of query {i} with candidate {} REFUTED: {witness}",
                        m.candidate
                    );
                    refuted += 1;
                    bad += 1;
                }
                Verdict::Unknown { reason } => {
                    unknown += 1;
                    eprintln!(
                        "plans: rewrite of query {i} with candidate {} unproved ({reason}); \
                         falling back to schema check",
                        m.candidate
                    );
                    if let Err(e) = verify_rewrite(&catalog, &plans[i], &rewritten) {
                        eprintln!(
                            "plans: rewrite of query {i} with candidate {} rejected: {e}",
                            m.candidate
                        );
                        bad += 1;
                    }
                }
            }
        }
    }
    // The prover gate: ≥95% of rewrites must be statically proved (the
    // remainder may be Unknown; Refuted already counted as failures).
    if rewrites > 0 && proved * 100 < rewrites * 95 {
        eprintln!(
            "plans: only {proved}/{rewrites} rewrites statically proved (<95%)"
        );
        bad += 1;
    }
    println!(
        "plans: {} queries, {} candidates, {rewrites} rewrites \
         ({proved} proved / {unknown} unknown / {refuted} refuted), {bad} failure(s)",
        plans.len(),
        analysis.candidates.len()
    );
    *failures += bad;
}

fn run_lockorder_pass(failures: &mut usize, dot_path: Option<&str>) {
    let root = repo_root();
    match av_analyze::lockorder::analyze_repo(root, &LOCK_CRATES) {
        Ok(report) => {
            for f in &report.findings {
                eprintln!("lockorder: {f}");
            }
            *failures += report.findings.len();
            println!(
                "lockorder: {} lock(s), {} edge(s), {} finding(s) over crates/{{{}}}",
                report.locks.len(),
                report.edges.len(),
                report.findings.len(),
                LOCK_CRATES.join(",")
            );
            if let Some(path) = dot_path {
                if let Err(e) = std::fs::write(path, report.to_dot()) {
                    eprintln!("lockorder: cannot write {path}: {e}");
                    *failures += 1;
                } else {
                    println!("lockorder: graph written to {path}");
                }
            }
        }
        Err(e) => {
            eprintln!("lockorder: cannot scan repo: {e}");
            *failures += 1;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = 0usize;
    match args.first().map(String::as_str) {
        None => {
            run_lint_pass(&mut failures);
            run_nn_pass(&mut failures);
            run_plan_pass(&mut failures);
            run_lockorder_pass(&mut failures, None);
        }
        Some("prove") => run_plan_pass(&mut failures),
        Some("lockorder") => {
            let dot = match args.get(1).map(String::as_str) {
                Some("--dot") => match args.get(2) {
                    Some(p) => Some(p.as_str()),
                    None => {
                        eprintln!("av-analyze lockorder --dot requires a path");
                        return ExitCode::FAILURE;
                    }
                },
                Some(other) => {
                    eprintln!("av-analyze lockorder: unknown flag `{other}`");
                    return ExitCode::FAILURE;
                }
                None => None,
            };
            run_lockorder_pass(&mut failures, dot);
        }
        Some("lint") => run_lint_pass(&mut failures),
        Some(other) => {
            eprintln!(
                "av-analyze: unknown subcommand `{other}` \
                 (expected `prove`, `lockorder [--dot PATH]`, or `lint`)"
            );
            return ExitCode::FAILURE;
        }
    }
    if failures == 0 {
        println!("av-analyze: all passes clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("av-analyze: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
