//! Static lock-order analysis over the concurrent crates.
//!
//! A hand-rolled scanner (same philosophy as [`crate::lint`]: no external
//! parser, deterministic, fast enough to run on every CI build) that:
//!
//! 1. extracts **lock identities** — struct fields typed `Mutex<..>`,
//!    `RwLock<..>`, or `Condvar` become nodes named `Struct.field`;
//! 2. tracks **guard liveness** inside each method — a `let`-bound guard
//!    lives until `drop(guard)`, a rebinding, or its enclosing block ends;
//!    un-bound acquisitions (`self.state.lock().expect(..).1 = true`) are
//!    transient and hold nothing across statements;
//! 3. builds the **acquired-while-held graph**: an edge `A → B` means some
//!    code path acquires `B` (directly, or transitively through a resolved
//!    method call) while a guard of `A` is live. Method calls are resolved
//!    through receiver *field types* (`self.cell.swap(..)` on a field
//!    `cell: DeploymentCell` resolves to `DeploymentCell::swap`) and
//!    through guard aliases (`let planner = &mut *guard;` makes `planner.x`
//!    resolve against the mutex's inner type), then closed under a
//!    transitive acquired-set fixpoint;
//! 4. reports **cycles** (potential deadlocks) and **boundary violations**
//!    — edges touching the serve layer's two coordination locks
//!    ([`BOUNDARY_LOCKS`]) that are not on the audited [`ALLOWED_EDGES`]
//!    list — as [`LintFinding`]s, and renders the whole graph as DOT
//!    (condvar waits appear as dashed, informational edges: `Condvar::wait`
//!    atomically releases the mutex, so waits cannot order locks).
//!
//! Known limits, on purpose: free functions are not resolved (the repo's
//! lock-holding paths go through methods), locals other than guard aliases
//! are untyped, and a guard bound inside a nested block is considered live
//! to the end of that block only. The scanner is conservative where it
//! matters — transient acquisitions still count toward a method's acquired
//! set, so `holder → callee-acquires` edges are never missed for resolved
//! calls.

use crate::lint::LintFinding;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees the repo-level analysis scans: the three that
/// share locks across the serving path.
pub const LOCK_CRATES: [&str; 3] = ["serve", "engine", "online"];

/// The serve layer's coordination locks. Any acquired-while-held edge that
/// touches one of these must be on [`ALLOWED_EDGES`]; everything else is a
/// `lock-boundary` finding. Keeping this set to two names is deliberate —
/// the planner mutex serializes re-optimization and the deployment cell
/// serializes epoch swaps, and new code holding either across foreign locks
/// is exactly the class of change that deserves review.
pub const BOUNDARY_LOCKS: [&str; 2] = ["ViewServer.planner", "DeploymentCell.current"];

/// Audited acquired-while-held edges. Each entry documents why holding the
/// first lock across the second is sound.
///
/// - `ViewServer.planner → DeploymentCell.current`: `swap_in_current`
///   publishes the next epoch at the end of re-optimization. The cell's
///   write lock is only ever taken here and in `DeploymentCell::swap`'s
///   other callers under the same planner mutex; readers (`load`) never
///   hold the cell lock across anything.
/// - `ViewServer.planner → ExecCache.state`: the planner's dry-run cache
///   prices candidates during re-optimization. The dry-run cache is owned
///   by the planner (no other thread can reach it), so its internal mutex
///   cannot participate in a cross-thread cycle with the planner lock.
pub const ALLOWED_EDGES: [(&str, &str); 2] = [
    ("ViewServer.planner", "DeploymentCell.current"),
    ("ViewServer.planner", "ExecCache.state"),
];

/// One acquired-while-held edge (or, when `dashed`, a condvar wait).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held (`Struct.field`).
    pub from: String,
    /// Lock acquired — or condvar waited on — while `from` is held.
    pub to: String,
    /// Repo-relative file of the first site inducing this edge.
    pub file: String,
    /// 1-based line of that site.
    pub line: usize,
    /// Condvar wait (informational; waits release the mutex atomically).
    pub dashed: bool,
}

/// The full analysis result: every lock node, every edge, and the findings
/// (cycles + boundary violations) the CI gate consumes.
#[derive(Debug, Default)]
pub struct LockOrderReport {
    /// All lock identities discovered (`Struct.field`), sorted.
    pub locks: Vec<String>,
    /// Acquired-while-held edges (deduplicated, sorted by endpoints).
    pub edges: Vec<LockEdge>,
    pub findings: Vec<LintFinding>,
}

impl LockOrderReport {
    /// Render the graph in DOT. Solid edges order locks; dashed edges are
    /// condvar waits. Boundary locks are drawn as boxes.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph lockorder {\n    rankdir=LR;\n");
        for l in &self.locks {
            let shape = if BOUNDARY_LOCKS.contains(&l.as_str()) {
                "box"
            } else {
                "ellipse"
            };
            let _ = writeln!(s, "    \"{l}\" [shape={shape}];");
        }
        for e in &self.edges {
            let style = if e.dashed { ", style=dashed" } else { "" };
            let _ = writeln!(
                s,
                "    \"{}\" -> \"{}\" [label=\"{}:{}\"{}];",
                e.from, e.to, e.file, e.line, style
            );
        }
        s.push_str("}\n");
        s
    }
}

// ---------------------------------------------------------------------------
// Pass 1: struct fields and method inventory.
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct StructInfo {
    /// field name → leading type path segment (`cell` → `DeploymentCell`).
    field_types: BTreeMap<String, String>,
    /// Lock-typed fields: field name → (`Mutex` | `RwLock`), with the inner
    /// type's leading segment for guard-alias resolution.
    locks: BTreeMap<String, String>,
    /// Condvar-typed fields.
    condvars: BTreeSet<String>,
}

/// Per-method record: everything needed for the fixpoint and edge replay.
#[derive(Debug, Default, Clone)]
struct MethodInfo {
    /// Locks this method acquires directly (including transient sites).
    direct: BTreeSet<String>,
    /// Resolved calls: (callee `Type::method`, file, line, locks held).
    calls: Vec<(String, String, usize, Vec<String>)>,
    /// Nested acquisitions: (held, acquired, file, line).
    nested: Vec<(String, String, String, usize)>,
    /// Condvar waits: (held lock, condvar id, file, line).
    waits: Vec<(String, String, String, usize)>,
}

/// Strip line comments and string literals so pattern matches never fire
/// inside `expect("...")` messages or doc text. Char literals with braces
/// (`'{'`) are blanked too, keeping the brace-depth count honest.
fn sanitize(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '/' if chars.peek() == Some(&'/') => break,
            '\'' => {
                // Char literal (incl. '\\'' and '{') vs lifetime: a literal
                // closes within three chars.
                let mut look = chars.clone();
                let first = look.next();
                let second = look.next();
                let third = look.next();
                let is_char = matches!(
                    (first, second, third),
                    (Some('\\'), _, Some('\'')) | (Some(_), Some('\''), _)
                );
                if is_char {
                    for n in chars.by_ref() {
                        if n == '\'' {
                            break;
                        }
                    }
                    out.push_str("' '");
                } else {
                    out.push(c); // lifetime tick
                }
            }
            _ => out.push(c),
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// First path segment of a type string: `av_engine::ExecCache` → `ExecCache`
/// (last segment, actually — the one that names the type), `Vec<ExecCache>`
/// → `Vec`.
fn type_head(ty: &str) -> String {
    let ty = ty.trim();
    let base: &str = match ty.find('<') {
        Some(i) => &ty[..i],
        None => ty,
    };
    base.rsplit("::")
        .next()
        .unwrap_or(base)
        .trim()
        .trim_end_matches(',')
        .to_string()
}

/// Inner type of `Mutex<T>` / `RwLock<T>`, as a head segment.
fn generic_inner(ty: &str) -> String {
    match (ty.find('<'), ty.rfind('>')) {
        (Some(a), Some(b)) if b > a => type_head(&ty[a + 1..b]),
        _ => String::new(),
    }
}

/// The identifier immediately before `pos` in `line`, if any.
fn ident_before(line: &str, pos: usize) -> Option<&str> {
    let head = &line[..pos];
    let start = head
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident_char(c))
        .last()
        .map(|(i, _)| i)?;
    let id = &head[start..pos];
    id.chars().next().filter(|c| !c.is_numeric())?;
    Some(id)
}

/// Split a struct-body segment on top-level commas (commas inside `<..>` or
/// `(..)` stay with their type) and record each `name: Type` field.
fn parse_fields(segment: &str, info: &mut StructInfo) {
    let mut nest = 0i32;
    let mut part = String::new();
    let mut parts: Vec<String> = Vec::new();
    for c in segment.chars() {
        match c {
            '<' | '(' | '[' => {
                nest += 1;
                part.push(c);
            }
            '>' | ')' | ']' => {
                nest -= 1;
                part.push(c);
            }
            ',' if nest == 0 => {
                parts.push(std::mem::take(&mut part));
            }
            '}' if nest == 0 => break,
            _ => part.push(c),
        }
    }
    parts.push(part);
    for p in parts {
        let p = p.trim();
        let p = p
            .strip_prefix("pub(crate) ")
            .or_else(|| p.strip_prefix("pub(super) "))
            .or_else(|| p.strip_prefix("pub "))
            .unwrap_or(p);
        let Some((field, ty)) = p.split_once(':') else {
            continue;
        };
        let field: String = field
            .trim()
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        let ty = ty.trim();
        if field.is_empty() || ty.is_empty() {
            continue;
        }
        let head = type_head(ty);
        match head.as_str() {
            "Mutex" | "RwLock" => {
                info.locks.insert(field.clone(), generic_inner(ty));
            }
            "Condvar" => {
                info.condvars.insert(field.clone());
            }
            _ => {}
        }
        info.field_types.insert(field, head);
    }
}

fn collect_structs(files: &[(String, String)]) -> BTreeMap<String, StructInfo> {
    let mut out: BTreeMap<String, StructInfo> = BTreeMap::new();
    for (_, src) in files {
        let mut current: Option<(String, usize)> = None; // (struct, depth at `{`)
        let mut depth = 0usize;
        for raw in src.lines() {
            let line = sanitize(raw);
            let t = line.trim();
            if current.is_none() {
                if let Some(rest) = t
                    .strip_prefix("pub struct ")
                    .or_else(|| t.strip_prefix("struct "))
                    .or_else(|| t.strip_prefix("pub(crate) struct "))
                {
                    let name: String = rest
                        .chars()
                        .take_while(|&c| is_ident_char(c))
                        .collect();
                    if !name.is_empty() && !rest.contains(';') {
                        let info = out.entry(name.clone()).or_default();
                        // Fields declared on the `struct` line itself
                        // (single-line structs) parse immediately.
                        if let Some(body_start) = rest.find('{') {
                            parse_fields(&rest[body_start + 1..], info);
                        }
                        // Only stay "inside" the struct if the line leaves
                        // its brace open.
                        let opens = rest.matches('{').count();
                        let closes = rest.matches('}').count();
                        if opens > closes {
                            current = Some((name, depth));
                        }
                    }
                }
            } else if let Some((name, _)) = current.clone() {
                let info = out.entry(name).or_default();
                parse_fields(t, info);
            }
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if let Some((_, at)) = &current {
                            if depth <= *at {
                                current = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// All `Type::method` names, so call resolution only binds to methods that
/// exist (anything else — std, foreign crates — is ignored).
fn collect_method_names(files: &[(String, String)]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (_, src) in files {
        let mut impl_ty: Option<(String, usize)> = None;
        let mut depth = 0usize;
        for raw in src.lines() {
            let line = sanitize(raw);
            let t = line.trim();
            if impl_ty.is_none() {
                if let Some(name) = impl_target(t) {
                    impl_ty = Some((name, depth));
                }
            } else if let Some((ty, _)) = &impl_ty {
                if let Some(m) = fn_name(t) {
                    out.insert(format!("{ty}::{m}"));
                }
            }
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if let Some((_, at)) = &impl_ty {
                            if depth <= *at {
                                impl_ty = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// `impl Foo {` / `impl<'a> Foo<'a> {` / `impl Trait for Foo {` → `Foo`.
fn impl_target(t: &str) -> Option<String> {
    let rest = t.strip_prefix("impl")?;
    let rest = rest.trim_start_matches(['<', '\'']).trim();
    // Skip a generics list if present: impl<...> Target
    let rest = if let Some(stripped) = t.strip_prefix("impl<") {
        let close = stripped.find('>')?;
        stripped[close + 1..].trim()
    } else {
        rest
    };
    let rest = match rest.find(" for ") {
        Some(i) => rest[i + 5..].trim(),
        None => rest,
    };
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// `fn name(` / `pub fn name<..>(` → `name`.
fn fn_name(t: &str) -> Option<String> {
    let idx = t.find("fn ")?;
    if idx > 0 {
        let before = t.as_bytes()[idx - 1] as char;
        if is_ident_char(before) {
            return None;
        }
    }
    // Only definitions at statement start (pub fn, fn, const fn...), not
    // closures or strings.
    // The last qualifier is spelled split so the determinism lint's
    // unsafe-scope scan does not flag this keyword table as an unsafe site.
    let head = t[..idx].trim();
    if !head.is_empty()
        && !head.split_whitespace().all(|w| {
            matches!(w, "pub" | "pub(crate)" | "pub(super)" | "const" | "async" | "extern")
                || w == concat!("uns", "afe")
        })
    {
        return None;
    }
    let rest = &t[idx + 3..];
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    (!name.is_empty() && rest[name.len()..].starts_with(['(', '<'])).then_some(name)
}

// ---------------------------------------------------------------------------
// Pass 2: per-method event extraction with guard liveness.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    /// Brace depth at binding; the guard dies when depth drops below this.
    depth: usize,
    /// Inner type head of the locked value, for alias resolution.
    inner: String,
    /// Local names that deref this guard (`let planner = &mut *guard;`).
    aliases: Vec<String>,
}

fn collect_methods(
    files: &[(String, String)],
    structs: &BTreeMap<String, StructInfo>,
    known_methods: &BTreeSet<String>,
) -> BTreeMap<String, MethodInfo> {
    let mut out: BTreeMap<String, MethodInfo> = BTreeMap::new();
    for (file, src) in files {
        let mut impl_ty: Option<(String, usize)> = None;
        let mut method: Option<(String, usize)> = None;
        let mut guards: BTreeMap<String, Guard> = BTreeMap::new();
        let mut graveyard: BTreeMap<String, Guard> = BTreeMap::new();
        let mut depth = 0usize;
        let mut in_tests = false;
        for (ln, raw) in src.lines().enumerate() {
            if raw.trim_start().starts_with("#[cfg(test)]") {
                in_tests = true;
            }
            if in_tests {
                continue;
            }
            let line = sanitize(raw);
            let t = line.trim();
            if impl_ty.is_none() {
                if let Some(name) = impl_target(t) {
                    impl_ty = Some((name, depth));
                }
            } else if method.is_none() {
                if let (Some((ty, _)), Some(m)) = (&impl_ty, fn_name(t)) {
                    method = Some((format!("{ty}::{m}"), depth));
                    guards.clear();
                    graveyard.clear();
                }
            }
            if let (Some((ty, _)), Some((mname, _))) = (&impl_ty, &method) {
                scan_method_line(
                    &line,
                    file,
                    ln + 1,
                    ty,
                    mname,
                    depth,
                    structs,
                    known_methods,
                    &mut guards,
                    &mut graveyard,
                    &mut out,
                );
            }
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        guards.retain(|_, g| g.depth <= depth);
                        if let Some((_, at)) = &method {
                            if depth <= *at {
                                method = None;
                                guards.clear();
                                graveyard.clear();
                            }
                        }
                        if let Some((_, at)) = &impl_ty {
                            if depth <= *at {
                                impl_ty = None;
                                method = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Scan one sanitized line inside a method body: guard bindings and deaths,
/// acquisitions, condvar waits, and resolvable calls.
#[allow(clippy::too_many_arguments)]
fn scan_method_line(
    line: &str,
    file: &str,
    lineno: usize,
    impl_ty: &str,
    method: &str,
    depth: usize,
    structs: &BTreeMap<String, StructInfo>,
    known_methods: &BTreeSet<String>,
    guards: &mut BTreeMap<String, Guard>,
    graveyard: &mut BTreeMap<String, Guard>,
    out: &mut BTreeMap<String, MethodInfo>,
) {
    let t = line.trim();
    let info = out.entry(method.to_string()).or_default();
    let self_info = structs.get(impl_ty);

    // drop(guard) ends liveness. The guard moves to the graveyard so a
    // later `g = self.cv.wait(g)` (drop on an early-return path, wait on
    // the fallthrough — the ArrivalQueue::pop shape) still resolves.
    if let Some(rest) = t.strip_prefix("drop(") {
        let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if let Some(g) = guards.remove(&name) {
            graveyard.insert(name, g);
        }
    }

    // Guard alias: `let planner = &mut *guard;` / `let p = &*guard;`.
    if let Some(rest) = t.strip_prefix("let ") {
        let rest = rest.trim_start_matches("mut ");
        if let Some((name_part, rhs)) = rest.split_once('=') {
            let name: String = name_part
                .trim()
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            let rhs = rhs.trim();
            let deref = rhs
                .strip_prefix("&mut *")
                .or_else(|| rhs.strip_prefix("&*"));
            if let Some(target) = deref {
                let gname: String =
                    target.chars().take_while(|&c| is_ident_char(c)).collect();
                if let Some(g) = guards.get_mut(&gname) {
                    g.aliases.push(name);
                }
            }
        }
    }

    // Acquisitions: `<recv>.<field>.lock()` / `.read()` / `.write()` where
    // recv is `self` or a guard alias, and field is a lock on recv's type.
    for pat in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(rel) = line[from..].find(pat) {
            let pos = from + rel;
            from = pos + pat.len();
            let Some((lock, inner)) = resolve_lock_access(line, pos, impl_ty, guards, structs)
            else {
                continue;
            };
            info.direct.insert(lock.clone());
            for g in guards.values() {
                if g.lock != lock {
                    info.nested.push((
                        g.lock.clone(),
                        lock.clone(),
                        file.to_string(),
                        lineno,
                    ));
                }
            }
            // Bound guard? `let g = ...` or a rebinding `g = ...` at line
            // start. Anything else is a transient acquisition.
            let head = t;
            let bound: Option<String> = if let Some(rest) = head.strip_prefix("let ") {
                let rest = rest.trim_start_matches("mut ");
                let name: String =
                    rest.chars().take_while(|&c| is_ident_char(c)).collect();
                (!name.is_empty()).then_some(name)
            } else if let Some((lhs, _)) = head.split_once('=') {
                let name = lhs.trim();
                (!name.is_empty() && name.chars().all(is_ident_char)).then(|| name.to_string())
            } else {
                None
            };
            if let Some(name) = bound {
                guards.insert(
                    name,
                    Guard {
                        lock,
                        depth,
                        inner,
                        aliases: Vec::new(),
                    },
                );
            }
        }
    }

    // Condvar waits: `<g> = self.<cv>.wait(<g>)` — the guard stays live
    // (wait returns it); record the informational edge.
    for pat in [".wait(", ".wait_while("] {
        let mut from = 0;
        while let Some(rel) = line[from..].find(pat) {
            let pos = from + rel;
            from = pos + pat.len();
            let Some(field) = ident_before(line, pos) else { continue };
            let Some(sinfo) = self_info else { continue };
            if !sinfo.condvars.contains(field) {
                continue;
            }
            let cv = format!("{impl_ty}.{field}");
            let arg_start = pos + pat.len();
            let arg: String = line[arg_start..]
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            if let Some(g) = guards.get(&arg) {
                info.waits
                    .push((g.lock.clone(), cv, file.to_string(), lineno));
            } else if let Some(g) = graveyard.remove(&arg) {
                // Wait returns the guard: resurrect it live.
                info.waits
                    .push((g.lock.clone(), cv, file.to_string(), lineno));
                guards.insert(arg, g);
            }
        }
    }

    // Resolvable method calls: `self.m(`, `self.field.m(`, `alias.m(`,
    // `alias.field.m(` — record with the currently held locks.
    let held: Vec<String> = guards.values().map(|g| g.lock.clone()).collect();
    for (callee, _col) in resolve_calls(line, impl_ty, guards, structs, known_methods) {
        info.calls
            .push((callee, file.to_string(), lineno, held.clone()));
    }
}

/// Resolve `<recv-chain>.lock()`-style access ending at `pos` (the dot of
/// the pattern): returns the lock id `Struct.field` and the inner type head.
fn resolve_lock_access(
    line: &str,
    pos: usize,
    impl_ty: &str,
    guards: &BTreeMap<String, Guard>,
    structs: &BTreeMap<String, StructInfo>,
) -> Option<(String, String)> {
    let field = ident_before(line, pos)?;
    let dot = pos.checked_sub(field.len() + 1)?;
    if line.as_bytes().get(dot) != Some(&b'.') {
        return None;
    }
    let recv = ident_before(line, dot)?;
    let owner_ty: &str = if recv == "self" {
        impl_ty
    } else if let Some(g) = find_guard_by_alias(guards, recv) {
        &g.inner
    } else {
        return None;
    };
    let sinfo = structs.get(owner_ty)?;
    let inner = sinfo.locks.get(field)?;
    Some((format!("{owner_ty}.{field}"), inner.clone()))
}

fn find_guard_by_alias<'g>(
    guards: &'g BTreeMap<String, Guard>,
    name: &str,
) -> Option<&'g Guard> {
    guards
        .get(name)
        .or_else(|| guards.values().find(|g| g.aliases.iter().any(|a| a == name)))
}

/// Calls on `self`, on `self`'s typed fields, on guard aliases, and on
/// aliases' typed fields, resolved against the known-method inventory.
fn resolve_calls(
    line: &str,
    impl_ty: &str,
    guards: &BTreeMap<String, Guard>,
    structs: &BTreeMap<String, StructInfo>,
    known_methods: &BTreeSet<String>,
) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'(' {
            i += 1;
            continue;
        }
        let Some(m) = ident_before(line, i) else {
            i += 1;
            continue;
        };
        let m_start = i - m.len();
        let Some(dot1) = m_start.checked_sub(1).filter(|&d| bytes[d] == b'.') else {
            i += 1;
            continue;
        };
        let Some(seg1) = ident_before(line, dot1) else {
            i += 1;
            continue;
        };
        let seg1_start = dot1 - seg1.len();
        // Two-segment receiver? `<recv>.<seg1>.<m>(`
        let recv2 = seg1_start
            .checked_sub(1)
            .filter(|&d| bytes[d] == b'.')
            .and_then(|d| ident_before(line, d).map(|r| (r, d)));

        let target_ty: Option<String> = if let Some((recv, _)) = recv2 {
            // recv.seg1.m( — seg1 is a field of recv's type.
            let owner: Option<&str> = if recv == "self" {
                Some(impl_ty)
            } else {
                find_guard_by_alias(guards, recv).map(|g| g.inner.as_str())
            };
            owner
                .and_then(|o| structs.get(o))
                .and_then(|s| s.field_types.get(seg1))
                .cloned()
        } else if seg1 == "self" {
            Some(impl_ty.to_string())
        } else {
            find_guard_by_alias(guards, seg1).map(|g| g.inner.clone())
        };

        if let Some(ty) = target_ty {
            let callee = format!("{ty}::{m}");
            if known_methods.contains(&callee) {
                out.push((callee, i));
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Fixpoint + graph assembly.
// ---------------------------------------------------------------------------

/// Analyze a set of (repo-relative path, source) pairs.
pub fn analyze_sources(files: &[(String, String)]) -> LockOrderReport {
    let structs = collect_structs(files);
    let known_methods = collect_method_names(files);
    let methods = collect_methods(files, &structs, &known_methods);

    // Transitive acquired sets: direct ∪ callees', to fixpoint.
    let mut acquired: BTreeMap<String, BTreeSet<String>> = methods
        .iter()
        .map(|(m, info)| (m.clone(), info.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (m, info) in &methods {
            let mut add = BTreeSet::new();
            for (callee, _, _, _) in &info.calls {
                if let Some(set) = acquired.get(callee) {
                    add.extend(set.iter().cloned());
                }
            }
            let set = acquired.entry(m.clone()).or_default();
            for l in add {
                changed |= set.insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: nested acquisitions + holder → everything a resolved callee
    // transitively acquires.
    let mut edge_map: BTreeMap<(String, String, bool), (String, usize)> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, dashed: bool, file: &str, line: usize| {
        edge_map
            .entry((from.to_string(), to.to_string(), dashed))
            .or_insert_with(|| (file.to_string(), line));
    };
    for info in methods.values() {
        for (held, acq, file, line) in &info.nested {
            add_edge(held, acq, false, file, *line);
        }
        for (held, cv, file, line) in &info.waits {
            add_edge(held, cv, true, file, *line);
        }
        for (callee, file, line, held) in &info.calls {
            if held.is_empty() {
                continue;
            }
            if let Some(set) = acquired.get(callee) {
                for h in held {
                    for a in set {
                        if a != h {
                            add_edge(h, a, false, file, *line);
                        } else {
                            // Re-acquiring a held lock through a call is a
                            // guaranteed self-deadlock: keep the self-edge
                            // so the cycle check reports it.
                            add_edge(h, a, false, file, *line);
                        }
                    }
                }
            }
        }
    }

    let mut locks: BTreeSet<String> = BTreeSet::new();
    for (s, info) in &structs {
        for f in info.locks.keys() {
            locks.insert(format!("{s}.{f}"));
        }
        for f in &info.condvars {
            locks.insert(format!("{s}.{f}"));
        }
    }
    let edges: Vec<LockEdge> = edge_map
        .into_iter()
        .map(|((from, to, dashed), (file, line))| LockEdge {
            from,
            to,
            file,
            line,
            dashed,
        })
        .collect();

    let mut findings = Vec::new();

    // Cycle detection over solid edges (colored DFS, deterministic order).
    let solid: BTreeMap<&str, Vec<&LockEdge>> = {
        let mut m: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
        for e in edges.iter().filter(|e| !e.dashed) {
            m.entry(e.from.as_str()).or_default().push(e);
        }
        m
    };
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white, 1 grey, 2 black
    let mut stack: Vec<&str> = Vec::new();
    fn dfs<'a>(
        n: &'a str,
        solid: &BTreeMap<&'a str, Vec<&'a LockEdge>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
        findings: &mut Vec<LintFinding>,
    ) {
        color.insert(n, 1);
        stack.push(n);
        for e in solid.get(n).into_iter().flatten() {
            match color.get(e.to.as_str()).copied().unwrap_or(0) {
                0 => dfs(e.to.as_str(), solid, color, stack, findings),
                1 => {
                    let from = stack
                        .iter()
                        .position(|&s| s == e.to.as_str())
                        .unwrap_or(0);
                    let mut cycle: Vec<&str> = stack[from..].to_vec();
                    cycle.push(e.to.as_str());
                    findings.push(LintFinding {
                        file: e.file.clone(),
                        line: e.line,
                        rule: "lock-cycle",
                        message: format!(
                            "lock acquisition cycle: {} — two threads taking these \
                             locks in different orders can deadlock",
                            cycle.join(" -> ")
                        ),
                    });
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(n, 2);
    }
    let roots: Vec<&str> = solid.keys().copied().collect();
    for n in roots {
        if color.get(n).copied().unwrap_or(0) == 0 {
            dfs(n, &solid, &mut color, &mut stack, &mut findings);
        }
    }

    // Boundary rule: edges touching the coordination locks must be audited.
    for e in edges.iter().filter(|e| !e.dashed) {
        let touches = BOUNDARY_LOCKS.contains(&e.from.as_str())
            || BOUNDARY_LOCKS.contains(&e.to.as_str());
        let allowed = ALLOWED_EDGES
            .iter()
            .any(|(f, t)| *f == e.from && *t == e.to);
        if touches && !allowed {
            findings.push(LintFinding {
                file: e.file.clone(),
                line: e.line,
                rule: "lock-boundary",
                message: format!(
                    "`{}` held across acquisition of `{}` crosses the planner/\
                     deployment boundary and is not on the audited allowlist \
                     (ALLOWED_EDGES in lockorder.rs); restructure to release \
                     first, or audit the edge in review",
                    e.from, e.to
                ),
            });
        }
    }

    LockOrderReport {
        locks: locks.into_iter().collect(),
        edges,
        findings,
    }
}

/// Analyze the `src/` trees of the given crates under `root`.
pub fn analyze_repo(root: &Path, crate_names: &[&str]) -> io::Result<LockOrderReport> {
    let mut files: Vec<(String, String)> = Vec::new();
    for name in crate_names {
        let src_dir = root.join("crates").join(name).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut paths: Vec<PathBuf> = Vec::new();
        walk(&src_dir, &mut paths)?;
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            files.push((rel, fs::read_to_string(&p)?));
        }
    }
    Ok(analyze_sources(&files))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> LockOrderReport {
        analyze_sources(&[("x.rs".to_string(), src.to_string())])
    }

    #[test]
    fn extracts_lock_fields() {
        let r = analyze(
            "struct S { a: Mutex<u32>, b: RwLock<String>, cv: Condvar, plain: u32 }\n",
        );
        assert_eq!(r.locks, vec!["S.a", "S.b", "S.cv"]);
    }

    #[test]
    fn nested_acquisition_makes_an_edge() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        let ga = self.a.lock().expect(\"a\");
        let gb = self.b.lock().expect(\"b\");
        use_both(ga, gb);
    }
}
";
        let r = analyze(src);
        assert_eq!(r.edges.len(), 1);
        assert_eq!(r.edges[0].from, "S.a");
        assert_eq!(r.edges[0].to, "S.b");
        assert_eq!(r.edges[0].line, 5);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn injected_inverted_pair_is_flagged_as_cycle() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn one(&self) {
        let ga = self.a.lock().expect(\"a\");
        let gb = self.b.lock().expect(\"b\");
        touch(ga, gb);
    }
    fn two(&self) {
        let gb = self.b.lock().expect(\"b\");
        let ga = self.a.lock().expect(\"a\");
        touch(ga, gb);
    }
}
";
        let r = analyze(src);
        assert_eq!(r.edges.len(), 2);
        assert!(
            r.findings.iter().any(|f| f.rule == "lock-cycle"),
            "inverted acquisition order must be reported: {:?}",
            r.findings
        );
    }

    #[test]
    fn dropped_guard_does_not_order_locks() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        let ga = self.a.lock().expect(\"a\");
        use_it(ga);
        drop(ga);
        let gb = self.b.lock().expect(\"b\");
        use_it(gb);
    }
}
";
        let r = analyze(src);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn block_scoped_guard_dies_at_brace() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        {
            let ga = self.a.lock().expect(\"a\");
            use_it(ga);
        }
        let gb = self.b.lock().expect(\"b\");
        use_it(gb);
    }
}
";
        let r = analyze(src);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn reacquire_after_drop_is_not_a_self_cycle() {
        // The ExecCache::run_keyed shape: acquire, drop, execute, reacquire.
        let src = "\
struct S { state: Mutex<u32> }
impl S {
    fn f(&self) {
        let mut state = self.state.lock().expect(\"s\");
        drop(state);
        compute();
        state = self.state.lock().expect(\"s\");
        use_it(state);
    }
}
";
        let r = analyze(src);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn call_while_held_takes_callee_acquisitions() {
        let src = "\
struct Inner { l: Mutex<u32> }
impl Inner {
    fn poke(&self) {
        self.l.lock().expect(\"l\").clone();
    }
}
struct Outer { m: Mutex<u32>, inner: Inner }
impl Outer {
    fn f(&self) {
        let g = self.m.lock().expect(\"m\");
        self.inner.poke();
        use_it(g);
    }
}
";
        let r = analyze(src);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].from, "Outer.m");
        assert_eq!(r.edges[0].to, "Inner.l");
    }

    #[test]
    fn guard_alias_resolves_inner_type_calls() {
        // The ViewServer::reoptimize shape: lock the planner, deref-alias
        // the guard, call through an inner field.
        let src = "\
struct Dry { state: Mutex<u32> }
impl Dry {
    fn cost(&self) {
        self.state.lock().expect(\"s\").clone();
    }
}
struct Planner { dryrun: Dry }
struct Server { planner: Mutex<Planner> }
impl Server {
    fn reopt(&self) {
        let mut guard = self.planner.lock().expect(\"p\");
        let planner = &mut *guard;
        planner.dryrun.cost();
    }
}
";
        let r = analyze(src);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].from, "Server.planner");
        assert_eq!(r.edges[0].to, "Dry.state");
    }

    #[test]
    fn condvar_wait_is_dashed_not_cycle() {
        let src = "\
struct S { state: Mutex<u32>, freed: Condvar }
impl S {
    fn f(&self) {
        let mut state = self.state.lock().expect(\"s\");
        while busy(&state) {
            state = self.freed.wait(state).expect(\"s\");
        }
    }
}
";
        let r = analyze(src);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert!(r.edges[0].dashed);
        assert_eq!(r.edges[0].from, "S.state");
        assert_eq!(r.edges[0].to, "S.freed");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn boundary_edge_off_allowlist_is_flagged() {
        let src = "\
struct DeploymentCell { current: RwLock<u32> }
impl DeploymentCell {
    fn swap(&self) {
        let mut slot = self.current.write().expect(\"c\");
        use_it(slot);
    }
}
struct Rogue { own: Mutex<u32>, cell: DeploymentCell }
impl Rogue {
    fn f(&self) {
        let g = self.own.lock().expect(\"o\");
        self.cell.swap();
        use_it(g);
    }
}
";
        let r = analyze(src);
        assert!(
            r.findings.iter().any(|f| f.rule == "lock-boundary"),
            "unaudited edge into DeploymentCell.current must be flagged: {:?}",
            r.findings
        );
    }

    #[test]
    fn allowlisted_boundary_edge_is_clean() {
        let src = "\
struct DeploymentCell { current: RwLock<u32> }
impl DeploymentCell {
    fn swap(&self) {
        let mut slot = self.current.write().expect(\"c\");
        use_it(slot);
    }
}
struct Planner { x: u32 }
struct ViewServer { planner: Mutex<Planner>, cell: DeploymentCell }
impl ViewServer {
    fn publish(&self) {
        let g = self.planner.lock().expect(\"p\");
        self.cell.swap();
        use_it(g);
    }
}
";
        let r = analyze(src);
        assert!(
            r.findings.is_empty(),
            "allowlisted planner→cell edge must pass: {:?}",
            r.findings
        );
        assert_eq!(r.edges.len(), 1);
    }

    #[test]
    fn strings_and_comments_do_not_confuse_the_scanner() {
        let src = "\
struct S { a: Mutex<u32> }
impl S {
    fn f(&self) {
        // let g = self.a.lock() — just prose
        let msg = \"self.a.lock() inside a string {\";
        use_it(msg);
    }
}
";
        let r = analyze(src);
        assert!(r.edges.is_empty());
        assert!(r.findings.is_empty());
    }

    #[test]
    fn dot_renders_nodes_and_edges() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        let ga = self.a.lock().expect(\"a\");
        let gb = self.b.lock().expect(\"b\");
        use_both(ga, gb);
    }
}
";
        let dot = analyze(src).to_dot();
        assert!(dot.starts_with("digraph lockorder {"));
        assert!(dot.contains("\"S.a\" -> \"S.b\""));
        assert!(dot.contains("x.rs:5"));
    }

    #[test]
    fn repo_lock_graph_is_cycle_free_and_audited() {
        // The real gate, unit-sized: the workspace's own lock graph must
        // stay cycle-free with every boundary edge audited.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("repo root");
        let r = analyze_repo(root, &LOCK_CRATES).expect("scan repo");
        assert!(
            !r.locks.is_empty(),
            "scanner must find the serve/engine lock fields"
        );
        assert!(
            r.edges.iter().any(|e| e.from == "ViewServer.planner"),
            "planner edges must be discovered: {:?}",
            r.edges
        );
        assert!(
            r.findings.is_empty(),
            "repo lock graph has findings: {:#?}",
            r.findings
        );
    }
}
