//! Determinism lint: a hand-rolled source scanner (no external parser)
//! over `crates/*/src`.
//!
//! The rules:
//!
//! 1. **unordered-iteration** — iterating a `HashMap`/`HashSet` binding
//!    whose results feed anything order-sensitive. A flagged line is
//!    exempt when an order-insensitive or ordering consumer (`.sum()`,
//!    `.count()`, `.len()`, min/max, `all`/`any`/`fold`, a `sort`, or a
//!    collect back into a hash/BTree container) appears on the same line
//!    or within the next few lines, or when the site carries an explicit
//!    `det-lint: allow` marker.
//! 2. **wall-clock** — `SystemTime::now` or `Instant::now` in library
//!    code. Reproduction runs must be replayable; wall-clock reads belong
//!    in binaries (paths under a `bin/` directory or a `main.rs`, which
//!    this rule skips) or behind `av-trace`'s `Clock` trait, whose single
//!    sanctioned call site carries a `det-lint: allow` marker. A short
//!    explicit allowlist (`WALL_CLOCK_ALLOWED_FILES`) exempts library
//!    files whose job *is* timing — currently only `av-serve`'s load
//!    generator; the rule ratchets at zero everywhere else.
//! 3. **unwrap-ratchet** — the count of `.unwrap(` calls per file in
//!    non-test code may only go *down* relative to the committed baseline
//!    (`crates/analyze/unwrap-baseline.txt`).
//! 4. **unsafe-scope** — the `unsafe` keyword (and `allow(unsafe_code)`
//!    opt-ins) anywhere except the audited allowlist
//!    (`UNSAFE_ALLOWED_FILES`): `av-nn`'s SIMD kernels, `av-sched`'s
//!    task pointer, and `av-trace`'s TSC clock fast path.
//!    `forbid`/`deny(unsafe_code)` attributes are of course fine —
//!    the rule exists precisely so those stay the default everywhere else.
//! 5. **hot-path-alloc** — files on the `HOT_PATH_FILES` list (currently
//!    `av-obs`'s flight-recorder module) bracket their per-query record
//!    paths with `// hot-path: begin` / `// hot-path: end` comment
//!    markers. Inside a region, allocation (`format!`, `String::`,
//!    `vec![`, `Box::new`, `.collect(`, container inserts, …), lock
//!    acquisition (`.lock(`) and raw wall-clock types are findings: the
//!    record path is called once per served query under concurrency, and
//!    its wait-freedom claim is only as good as this invariant. A listed
//!    file with no region at all is itself a finding — the markers are
//!    the contract, not decoration.
//! 6. **raw-spawn** — `thread::spawn`, `thread::scope`, or
//!    `thread::Builder` in library code. Query-time parallelism goes
//!    through `av-sched`'s shared morsel pool; ad-hoc OS threads bypass its
//!    admission-coupled elastic DOP and its telemetry, and re-introduce the
//!    per-query spawn overhead the pool exists to amortize. Binaries and
//!    test code are exempt (same carve-outs as `wall-clock`), plus a short
//!    allowlist (`RAW_SPAWN_ALLOWED_FILES`): the scheduler's own worker
//!    threads and the load generator's closed-loop clients.
//!
//! Test code is skipped: everything below a `#[cfg(test)]` attribute, and
//! any path containing a `tests` or `benches` directory.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding, with a stable rule name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Everything the repo scan produces: per-line findings plus the per-file
/// panic-site counts the ratchet compares against its baseline.
pub struct LintReport {
    pub findings: Vec<LintFinding>,
    /// Repo-relative path → `.unwrap(` count in non-test code.
    pub unwrap_counts: BTreeMap<String, usize>,
}

// Pattern strings are assembled from pieces so this file does not trip its
// own scanner, and cached in `OnceLock`s so the assembly happens once per
// process, not once per scanned file.
fn wall_clock_patterns() -> &'static [String; 2] {
    static PATTERNS: std::sync::OnceLock<[String; 2]> = std::sync::OnceLock::new();
    PATTERNS.get_or_init(|| {
        [
            format!("SystemTime{}", "::now"),
            format!("Instant{}", "::now"),
        ]
    })
}

/// Binaries may read the wall clock (to time benchmarks, stamp manifests):
/// anything under a `bin/` directory or a crate's `main.rs`.
fn is_binary_path(file: &str) -> bool {
    file.ends_with("/main.rs")
        || file == "main.rs"
        || file.split('/').any(|seg| seg == "bin")
}

/// Library files with a standing wall-clock exemption. This list is the
/// whole scope — the rule stays zero-ratchet everywhere else, so adding a
/// file here is a reviewed decision, not a drive-by.
///
/// `crates/serve/src/loadgen.rs`: the serving load generator's entire
/// purpose is measuring real request latency under concurrency; an injected
/// `Clock` would measure the mock, not the system. Results feed
/// `BENCH_serve.json`, never replayed artifacts.
const WALL_CLOCK_ALLOWED_FILES: [&str; 1] = ["crates/serve/src/loadgen.rs"];

fn is_wall_clock_allowed_file(file: &str) -> bool {
    WALL_CLOCK_ALLOWED_FILES
        .iter()
        .any(|allowed| file == *allowed || file.ends_with(&format!("/{allowed}")))
}

/// Raw OS-thread entry points, assembled from pieces like the patterns
/// above so the scanner does not trip on its own source. `thread::Builder`
/// is included: it is the same capability with a name attached, and the
/// pool's workers (the one sanctioned user) live on the allowlist anyway.
fn raw_spawn_patterns() -> &'static [String; 3] {
    static PATTERNS: std::sync::OnceLock<[String; 3]> = std::sync::OnceLock::new();
    PATTERNS.get_or_init(|| {
        [
            format!("thread{}", "::spawn"),
            format!("thread{}", "::scope"),
            format!("thread{}", "::Builder"),
        ]
    })
}

/// Library files allowed to start OS threads directly. The whole scope of
/// the exemption — everywhere else, parallel work goes through the shared
/// `av-sched` pool, so adding a file here is a reviewed decision.
///
/// `crates/sched/src/pool.rs`: the pool itself — its persistent workers
/// are the threads everything else borrows, and `run_scoped` keeps the
/// legacy scoped-spawn baseline alive for paired benchmarks.
///
/// `crates/serve/src/loadgen.rs`: closed-loop load-generator clients model
/// independent *sessions*, not query-internal parallelism; running them on
/// the pool would have the system under test share threads with the load
/// that is measuring it.
const RAW_SPAWN_ALLOWED_FILES: [&str; 2] =
    ["crates/sched/src/pool.rs", "crates/serve/src/loadgen.rs"];

fn is_raw_spawn_allowed_file(file: &str) -> bool {
    RAW_SPAWN_ALLOWED_FILES
        .iter()
        .any(|allowed| file == *allowed || file.ends_with(&format!("/{allowed}")))
}

fn unwrap_pattern() -> &'static str {
    static PAT: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    PAT.get_or_init(|| format!(".unw{}(", "rap"))
}

// Assembled from pieces like the patterns above, so this scanner's own
// source stays clean under its own rules.
fn unsafe_keyword() -> &'static str {
    static KW: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    KW.get_or_init(|| format!("uns{}", "afe"))
}

fn unsafe_optin_pattern() -> &'static str {
    static PAT: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    PAT.get_or_init(|| format!("allow({}_code)", unsafe_keyword()))
}

/// The rule identifier, leaked once: findings carry `&'static str` rule
/// names, and spelling this one as a literal would trip the scanner on its
/// own source.
fn unsafe_rule_name() -> &'static str {
    static NAME: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    NAME.get_or_init(|| format!("{}-scope", unsafe_keyword()))
}

/// Library files allowed to contain `unsafe`. This list is the whole
/// scope — everything else ratchets at zero, so extending it is a reviewed
/// decision, not a drive-by.
///
/// `crates/nn/src/simd.rs`: the `core::arch` AVX2+FMA kernels. Intrinsics
/// are inherently `unsafe fn`; the module confines them behind safe
/// dispatchers whose slice-length `debug_assert`s state the contract, and
/// the property suite pins them bitwise to safe scalar references.
///
/// `crates/sched/src/task.rs`: the pool's lifetime-erased task pointer
/// (one transmute to `'static`, sound because `Pool::run` blocks on the
/// completion latch before the borrow ends). The module doc states the
/// invariant; everything else in `av-sched` stays `deny`-clean.
///
/// `crates/trace/src/clock.rs`: the invariant-TSC fast path
/// (`_rdtsc`/`__cpuid` intrinsics — no memory effects, `unsafe` only
/// because they are target-specific). Confined to the `tsc` submodule;
/// the rest of `av-trace` stays `deny`-clean.
const UNSAFE_ALLOWED_FILES: [&str; 3] = [
    "crates/nn/src/simd.rs",
    "crates/sched/src/task.rs",
    "crates/trace/src/clock.rs",
];

fn is_unsafe_allowed_file(file: &str) -> bool {
    UNSAFE_ALLOWED_FILES
        .iter()
        .any(|allowed| file == *allowed || file.ends_with(&format!("/{allowed}")))
}

/// Does `line` use the `unsafe` keyword (not the `unsafe_code` attribute
/// name, which `forbid`/`deny` attributes legitimately mention)?
fn uses_unsafe_keyword(line: &str) -> bool {
    let kw = unsafe_keyword();
    let mut from = 0;
    while let Some(rel) = line[from..].find(kw) {
        let pos = from + rel;
        from = pos + kw.len();
        let before_ok = line[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        let after_ok = line[pos + kw.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

const ALLOW_MARKER: &str = "det-lint: allow";

/// Library files whose hot regions the `hot-path-alloc` rule audits. As
/// with the other allowlists, this list is the whole scope — region
/// markers in unlisted files are inert comments.
///
/// `crates/obs/src/recorder.rs`: the flight recorder's `record` path runs
/// once per served query and claims wait-freedom; an allocation, lock, or
/// wall-clock read inside it would silently void that claim.
const HOT_PATH_FILES: [&str; 1] = ["crates/obs/src/recorder.rs"];

fn is_hot_path_file(file: &str) -> bool {
    HOT_PATH_FILES
        .iter()
        .any(|audited| file == *audited || file.ends_with(&format!("/{audited}")))
}

/// Region brackets, matched anywhere in a comment line.
const HOT_PATH_BEGIN: &str = "hot-path: begin";
const HOT_PATH_END: &str = "hot-path: end";

/// Constructs forbidden inside a hot region: heap allocation, growable
/// containers, locks. Dotted method patterns are self-bounding (the `.`
/// keeps `.lock(` from firing on `unlock(`); identifier-led patterns go
/// through [`contains_bounded`] so `Vec::` does not fire on `MyVec::`.
const HOT_PATH_FORBIDDEN: [&str; 13] = [
    "format!",
    "String::",
    ".to_string(",
    ".to_owned(",
    "vec![",
    "Vec::",
    "Box::new",
    "HashMap::",
    "BTreeMap::",
    ".collect(",
    ".push(",
    ".insert(",
    ".lock(",
];

/// Raw wall-clock types are forbidden in hot regions even without a
/// `::now` call — constructing or holding one there is already a design
/// smell the region contract rejects. Assembled from pieces so the
/// wall-clock rule's own patterns stay the only literal spellings.
fn hot_path_clock_tokens() -> &'static [String; 2] {
    static TOKENS: std::sync::OnceLock<[String; 2]> = std::sync::OnceLock::new();
    TOKENS.get_or_init(|| [format!("Inst{}", "ant"), format!("System{}", "Time")])
}

/// Match a hot-path pattern with the right boundary rule for its shape.
fn hot_path_hit(line: &str, pat: &str) -> bool {
    if pat.starts_with(|c: char| is_ident_char(c)) {
        contains_bounded(line, pat)
    } else {
        line.contains(pat)
    }
}

/// Consumers that make hash-order irrelevant (order-insensitive folds) or
/// that restore an order (sorts, ordered re-collection).
const ORDER_SAFE: [&str; 14] = [
    ".sum()",
    ".sum::<",
    ".count()",
    ".len()",
    ".min(",
    ".max(",
    ".min_by",
    ".max_by",
    ".all(",
    ".any(",
    ".fold(",
    ".product()",
    "sort",
    "BTree",
];

/// Hash-container re-collection is also order-safe.
const ORDER_SAFE_COLLECT: [&str; 4] = [
    "collect::<HashMap",
    "collect::<HashSet",
    "collect::<std::collections::HashMap",
    "collect::<std::collections::HashSet",
];

/// How many lines after a flagged iteration we look for an order-safe
/// consumer (covers `let mut v: Vec<_> = m.keys().collect();` followed by
/// a `v.sort();` a couple of lines later).
const WINDOW: usize = 4;

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The identifier ending at the end of `s`, if any.
fn trailing_ident(s: &str) -> Option<&str> {
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident_char(c))
        .last()
        .map(|(i, _)| i)?;
    let ident = &s[start..end];
    ident.chars().next().filter(|c| !c.is_numeric())?;
    Some(ident)
}

/// Identifiers this line binds to a `HashMap`/`HashSet` (let-bindings,
/// struct fields, fn params).
fn hash_bound_idents(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for marker in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(rel) = line[from..].find(marker) {
            let pos = from + rel;
            from = pos + marker.len();
            let before = line[..pos].trim_end();
            // `name: HashMap<..>` or `name = HashMap::new()`.
            let Some(head) = before
                .strip_suffix(':')
                .or_else(|| before.strip_suffix('='))
            else {
                continue;
            };
            if let Some(ident) = trailing_ident(head.trim_end()) {
                if !matches!(ident, "mut" | "pub" | "let" | "in" | "dyn" | "impl") {
                    out.push(ident.to_string());
                }
            }
        }
    }
    out
}

/// Does `line` iterate `ident` (a tracked hash container)?
fn iterates(line: &str, ident: &str) -> bool {
    let methods = [".keys()", ".values()", ".values_mut()", ".iter()", ".iter_mut()", ".into_iter()", ".drain("];
    for m in methods {
        let pat = format!("{ident}{m}");
        if contains_bounded(line, &pat) {
            return true;
        }
    }
    // `for x in &ident {` / `in ident` / `in &self.ident` / `in &s.ident`:
    // take the place expression after ` in `, strip borrows, and see
    // whether its final path segment is the tracked ident.
    let mut from = 0;
    while let Some(rel) = line[from..].find(" in ") {
        let pos = from + rel + 4;
        from = pos;
        let rest = line[pos..].trim_start();
        let rest = rest.strip_prefix('&').unwrap_or(rest);
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let expr: String = rest
            .chars()
            .take_while(|&c| is_ident_char(c) || c == '.')
            .collect();
        if expr == ident || expr.ends_with(&format!(".{ident}")) {
            return true;
        }
    }
    false
}

/// Substring match where the character before the match is not part of a
/// longer identifier (so `map.keys()` matches inside `self.map.keys()` but
/// ident `ap` does not match `map`).
fn contains_bounded(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = line[from..].find(pat) {
        let pos = from + rel;
        from = pos + pat.len();
        let before_ok = line[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok {
            return true;
        }
    }
    false
}

fn window_is_order_safe(lines: &[&str], at: usize) -> bool {
    let end = (at + WINDOW).min(lines.len());
    lines[at..end].iter().any(|l| {
        ORDER_SAFE.iter().any(|p| l.contains(p))
            || ORDER_SAFE_COLLECT.iter().any(|p| l.contains(p))
            || l.contains(ALLOW_MARKER)
    })
}

/// Lines of `src` before the first `#[cfg(test)]` attribute — the region
/// the lint applies to. Comment lines (incl. doc examples) are blanked:
/// they are not executable, so nothing in them is a finding.
fn non_test_lines(src: &str) -> Vec<&str> {
    src.lines()
        .take_while(|l| !l.trim_start().starts_with("#[cfg(test)]"))
        .map(|l| if l.trim_start().starts_with("//") { "" } else { l })
        .collect()
}

/// Scan one file's source for unordered-iteration and wall-clock findings.
/// `file` is used verbatim in the findings.
pub fn lint_source(file: &str, src: &str) -> Vec<LintFinding> {
    let lines = non_test_lines(src);
    // Region markers live in comment lines, which `non_test_lines` blanks;
    // keep the unblanked text for marker detection only.
    let raw: Vec<&str> = src
        .lines()
        .take_while(|l| !l.trim_start().starts_with("#[cfg(test)]"))
        .collect();
    let wall_clock = wall_clock_patterns();
    let clock_exempt = is_binary_path(file) || is_wall_clock_allowed_file(file);
    let raw_spawn = raw_spawn_patterns();
    let spawn_exempt = is_binary_path(file) || is_raw_spawn_allowed_file(file);
    let unsafe_exempt = is_unsafe_allowed_file(file);
    let unsafe_optin = unsafe_optin_pattern();
    let hot_file = is_hot_path_file(file);
    let clock_tokens = hot_path_clock_tokens();
    let mut in_hot_region = false;
    let mut hot_regions = 0usize;
    let mut findings = Vec::new();
    let mut tracked: Vec<String> = Vec::new();

    for (i, line) in lines.iter().enumerate() {
        if hot_file {
            if raw[i].contains(HOT_PATH_END) {
                in_hot_region = false;
            } else if raw[i].contains(HOT_PATH_BEGIN) {
                in_hot_region = true;
                hot_regions += 1;
            } else if in_hot_region && !raw[i].contains(ALLOW_MARKER) {
                let hit = HOT_PATH_FORBIDDEN
                    .iter()
                    .copied()
                    .chain(clock_tokens.iter().map(|s| s.as_str()))
                    .find(|p| hot_path_hit(line, p));
                if let Some(pat) = hit {
                    findings.push(LintFinding {
                        file: file.to_string(),
                        line: i + 1,
                        rule: "hot-path-alloc",
                        message: format!(
                            "`{pat}` inside a hot-path region; the record path must stay \
                             allocation-, lock- and wall-clock-free — move the work to \
                             the dump path or mark `// {ALLOW_MARKER}: <reason>`"
                        ),
                    });
                }
            }
        }
        // No inline allow-marker for this rule: the file allowlist is the
        // only exemption, so every new unsafe site is a reviewed decision.
        if !unsafe_exempt && (uses_unsafe_keyword(line) || line.contains(unsafe_optin)) {
            findings.push(LintFinding {
                file: file.to_string(),
                line: i + 1,
                rule: unsafe_rule_name(),
                message: format!(
                    "{} code outside the audited allowlist; keep it confined to \
                     the listed kernel/scheduler modules or extend \
                     UNSAFE_ALLOWED_FILES in review",
                    unsafe_keyword()
                ),
            });
        }
        if !clock_exempt && !line.contains(ALLOW_MARKER) {
            if let Some(pat) = wall_clock.iter().find(|p| line.contains(p.as_str())) {
                findings.push(LintFinding {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "wall-clock",
                    message: format!(
                        "{pat} in library code breaks replayability; route time through \
                         av-trace's Clock trait or move the read into a binary"
                    ),
                });
            }
        }
        if !spawn_exempt && !line.contains(ALLOW_MARKER) {
            if let Some(pat) = raw_spawn.iter().find(|p| line.contains(p.as_str())) {
                findings.push(LintFinding {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "raw-spawn",
                    message: format!(
                        "{pat} in library code bypasses the shared av-sched pool \
                         (elastic DOP, steal/queue telemetry, amortized spawn cost); \
                         submit morsels via av_sched::global().run or extend \
                         RAW_SPAWN_ALLOWED_FILES in review"
                    ),
                });
            }
        }
        for ident in hash_bound_idents(line) {
            if !tracked.contains(&ident) {
                tracked.push(ident);
            }
        }
        let hit = tracked.iter().find(|id| iterates(line, id));
        if let Some(ident) = hit {
            if !window_is_order_safe(&lines, i) {
                findings.push(LintFinding {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "unordered-iteration",
                    message: format!(
                        "iteration over hash container `{ident}` with no ordering or \
                         order-insensitive consumer nearby; sort it, switch to BTreeMap, \
                         or mark `// {ALLOW_MARKER}: <reason>`"
                    ),
                });
            }
        }
    }
    if hot_file && hot_regions == 0 {
        findings.push(LintFinding {
            file: file.to_string(),
            line: 0,
            rule: "hot-path-alloc",
            message: format!(
                "file is on the hot-path audit list but declares no \
                 `// {HOT_PATH_BEGIN}` region; bracket the record path so the \
                 invariant is machine-checked"
            ),
        });
    }
    if hot_file && in_hot_region {
        findings.push(LintFinding {
            file: file.to_string(),
            line: 0,
            rule: "hot-path-alloc",
            message: format!(
                "unterminated hot-path region (missing `// {HOT_PATH_END}`)"
            ),
        });
    }
    findings
}

/// Count panic sites (`.unwrap(`) in the non-test region of `src`.
pub fn count_unwraps(src: &str) -> usize {
    let pat = unwrap_pattern();
    non_test_lines(src)
        .iter()
        .map(|l| l.matches(&pat).count())
        .sum()
}

fn is_lintable(path: &Path) -> bool {
    if path.extension().is_none_or(|e| e != "rs") {
        return false;
    }
    !path
        .components()
        .any(|c| matches!(c.as_os_str().to_str(), Some("tests" | "benches" | "target")))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if is_lintable(&p) {
            out.push(p);
        }
    }
    Ok(())
}

/// Scan every `crates/*/src` tree under `root` (the repo root).
pub fn lint_repo(root: &Path) -> io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    crate_dirs.sort();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }

    let mut findings = Vec::new();
    let mut unwrap_counts = BTreeMap::new();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&rel, &src));
        let n = count_unwraps(&src);
        if n > 0 {
            unwrap_counts.insert(rel, n);
        }
    }
    Ok(LintReport {
        findings,
        unwrap_counts,
    })
}

/// Parse a baseline file (`<count> <path>` per line, `#` comments).
pub fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((count, path)) = line.split_once(' ') {
            if let Ok(n) = count.parse::<usize>() {
                out.insert(path.trim().to_string(), n);
            }
        }
    }
    out
}

/// Serialize counts in the baseline format (stable order).
pub fn format_baseline(counts: &BTreeMap<String, usize>) -> String {
    let mut s = String::from(
        "# Panic-site ratchet: `<count> <path>` of unwrap calls allowed in\n\
         # non-test code. Counts may only decrease; regenerate with\n\
         # `cargo run -p av-analyze --bin lint -- --write-baseline`.\n",
    );
    for (path, n) in counts {
        s.push_str(&format!("{n} {path}\n"));
    }
    s
}

/// Ratchet check: every file's current count must be ≤ its baseline
/// (absent = 0).
pub fn ratchet_findings(
    counts: &BTreeMap<String, usize>,
    baseline: &BTreeMap<String, usize>,
) -> Vec<LintFinding> {
    counts
        .iter()
        .filter(|(path, &n)| n > baseline.get(*path).copied().unwrap_or(0))
        .map(|(path, &n)| LintFinding {
            file: path.clone(),
            line: 0,
            rule: "unwrap-ratchet",
            message: format!(
                "{n} panic site(s), baseline allows {}; convert to typed errors \
                 or tighten the baseline",
                baseline.get(path).copied().unwrap_or(0)
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsorted_hash_iteration_feeding_a_vec_is_flagged() {
        let src = "\
fn f() {
    let m: HashMap<String, u32> = HashMap::new();
    let v: Vec<&String> = m.keys().collect();
    use_it(v);
    other();
    other();
}
";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unordered-iteration");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn sorted_iteration_is_exempt() {
        let src = "\
fn f() {
    let m: HashMap<String, u32> = HashMap::new();
    let mut v: Vec<&String> = m.keys().collect();
    v.sort_unstable();
}
";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn order_insensitive_fold_is_exempt() {
        let src = "\
fn f(m: HashMap<String, u32>) -> u32 {
    m.values().sum()
}
";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_is_exempt() {
        let src = "\
fn f(m: HashMap<String, u32>) {
    for k in m.keys() { // det-lint: allow — order logged nowhere
        side_effect(k);
    }
}
";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn for_loop_over_hash_field_is_flagged() {
        let src = "\
struct S { tables: HashMap<String, u32> }
fn f(s: &S, out: &mut Vec<String>) {
    for (k, _) in &s.tables {
        out.push(k.clone());
    }
    done();
    done();
}
";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn recollecting_into_a_hash_container_is_exempt() {
        let src = "\
fn f(m: HashMap<String, u32>) -> HashMap<String, u32> {
    m.into_iter().map(|(k, v)| (k, v + 1)).collect::<HashMap<_, _>>()
}
";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_read_is_flagged() {
        let src = format!("fn f() {{ let t = SystemTime{}(); }}\n", "::now");
        let f = lint_source("x.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn instant_read_is_flagged_in_library_code() {
        let src = format!("fn f() {{ let t = Instant{}(); }}\n", "::now");
        let f = lint_source("crates/x/src/lib.rs", &src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn wall_clock_reads_in_binaries_are_exempt() {
        let src = format!(
            "fn main() {{ let a = Instant{0}(); let b = SystemTime{0}(); }}\n",
            "::now"
        );
        assert!(lint_source("crates/bench/src/bin/exec_bench.rs", &src).is_empty());
        assert!(lint_source("crates/x/src/main.rs", &src).is_empty());
    }

    #[test]
    fn wall_clock_allowlist_is_scoped_to_serve_loadgen() {
        let src = format!("fn measure() {{ let t = Instant{}(); }}\n", "::now");
        // The load generator's latency reads are sanctioned...
        assert!(lint_source("crates/serve/src/loadgen.rs", &src).is_empty());
        assert!(lint_source("/abs/repo/crates/serve/src/loadgen.rs", &src).is_empty());
        // ...but the exemption does not leak to the rest of the crate, to
        // similarly named files elsewhere, or to other library code.
        for file in [
            "crates/serve/src/server.rs",
            "crates/serve/src/deployment.rs",
            "crates/online/src/loadgen.rs",
            "crates/serve2/src/loadgen.rs",
        ] {
            let f = lint_source(file, &src);
            assert_eq!(f.len(), 1, "{file} must still be flagged: {f:?}");
            assert_eq!(f[0].rule, "wall-clock");
        }
    }

    #[test]
    fn marked_clock_trait_call_site_is_exempt() {
        let src = format!(
            "fn now() {{ origin: Instant{}(), // det-lint: allow — Clock trait\n}}\n",
            "::now"
        );
        assert!(lint_source("crates/trace/src/clock.rs", &src).is_empty());
    }

    #[test]
    fn unsafe_keyword_is_flagged_outside_allowlist() {
        let kw = unsafe_keyword();
        for src in [
            format!("fn f() {{ {kw} {{ core_op(); }} }}\n"),
            format!("{kw} fn g() {{}}\n"),
            format!("#![allow({kw}_code)]\n"),
        ] {
            let f = lint_source("crates/engine/src/exec.rs", &src);
            assert_eq!(f.len(), 1, "{src:?} -> {f:?}");
            assert_eq!(f[0].rule, "unsafe-scope");
            assert_eq!(f[0].line, 1);
        }
    }

    #[test]
    fn unsafe_scope_allowlist_is_exactly_the_audited_modules() {
        let kw = unsafe_keyword();
        let src = format!("{kw} fn kernel() {{}}\n");
        for allowed in [
            "crates/nn/src/simd.rs",
            "crates/sched/src/task.rs",
            "crates/trace/src/clock.rs",
        ] {
            assert!(lint_source(allowed, &src).is_empty(), "{allowed}");
            assert!(lint_source(&format!("/abs/repo/{allowed}"), &src).is_empty());
        }
        // No leaking to sibling files, binaries, or similarly named paths.
        for file in [
            "crates/nn/src/tensor.rs",
            "crates/bench/src/bin/nn_bench.rs",
            "crates/engine/src/simd.rs",
            "crates/sched/src/pool.rs",
            "crates/trace/src/span.rs",
        ] {
            let f = lint_source(file, &src);
            assert_eq!(f.len(), 1, "{file} must still be flagged: {f:?}");
            assert_eq!(f[0].rule, "unsafe-scope");
        }
    }

    #[test]
    fn forbidding_unsafe_is_not_a_finding() {
        let kw = unsafe_keyword();
        let src = format!("#![forbid({kw}_code)]\n#![deny({kw}_code)]\nfn safe() {{}}\n");
        assert!(lint_source("crates/engine/src/lib.rs", &src).is_empty());
    }

    #[test]
    fn raw_spawn_is_flagged_in_library_code() {
        for entry in ["::spawn", "::scope", "::Builder"] {
            let src = format!("fn f() {{ std::thread{entry}(work); }}\n");
            let f = lint_source("crates/engine/src/exec.rs", &src);
            assert_eq!(f.len(), 1, "{entry} -> {f:?}");
            assert_eq!(f[0].rule, "raw-spawn");
            assert_eq!(f[0].line, 1);
        }
    }

    #[test]
    fn raw_spawn_allowlist_is_the_pool_and_the_load_generator() {
        let src = format!("fn f() {{ std::thread{}(work); }}\n", "::spawn");
        for allowed in ["crates/sched/src/pool.rs", "crates/serve/src/loadgen.rs"] {
            assert!(lint_source(allowed, &src).is_empty(), "{allowed}");
            assert!(lint_source(&format!("/abs/repo/{allowed}"), &src).is_empty());
        }
        // The exemption does not leak to sibling files or lookalike paths.
        for file in [
            "crates/sched/src/task.rs",
            "crates/serve/src/server.rs",
            "crates/engine/src/par.rs",
            "crates/online/src/loadgen.rs",
        ] {
            let f = lint_source(file, &src);
            assert_eq!(f.len(), 1, "{file} must still be flagged: {f:?}");
            assert_eq!(f[0].rule, "raw-spawn");
        }
    }

    #[test]
    fn raw_spawn_in_binaries_and_tests_is_exempt() {
        let src = format!("fn main() {{ std::thread{}(work); }}\n", "::scope");
        assert!(lint_source("crates/bench/src/bin/serve_bench.rs", &src).is_empty());
        assert!(lint_source("crates/x/src/main.rs", &src).is_empty());
        let test_src = format!(
            "fn f() {{}}\n#[cfg(test)]\nmod t {{ fn g() {{ std::thread{}(work); }} }}\n",
            "::spawn"
        );
        assert!(lint_source("crates/engine/src/exec.rs", &test_src).is_empty());
    }

    #[test]
    fn raw_spawn_allow_marker_exempts_a_line() {
        let src = format!(
            "fn f() {{ std::thread{}(work); // det-lint: allow — reviewed one-off\n}}\n",
            "::spawn"
        );
        assert!(lint_source("crates/engine/src/exec.rs", &src).is_empty());
    }

    const HOT_FILE: &str = "crates/obs/src/recorder.rs";

    fn hot_wrapped(body: &str) -> String {
        format!("// hot-path: begin\nfn record() {{\n{body}}}\n// hot-path: end\n")
    }

    #[test]
    fn hot_region_flags_allocations_and_locks() {
        for bad in [
            "    let s = format!(\"q{}\", seq);\n",
            "    let mut v = Vec::with_capacity(4);\n",
            "    let s = String::new();\n",
            "    let b = Box::new(rec);\n",
            "    out.push(seq);\n",
            "    self.slots.lock().expect(\"poisoned\");\n",
            "    map.insert(seq, rec);\n",
            "    let all = iter.collect();\n",
            "    let t: Instant = deadline;\n",
        ] {
            let src = hot_wrapped(bad);
            let f: Vec<_> = lint_source(HOT_FILE, &src)
                .into_iter()
                .filter(|f| f.rule == "hot-path-alloc")
                .collect();
            assert_eq!(f.len(), 1, "{bad:?} -> {f:?}");
            assert_eq!(f[0].line, 3, "{bad:?}");
        }
    }

    #[test]
    fn hot_rule_ignores_code_outside_regions() {
        // The dump path may allocate freely; only bracketed regions are
        // audited. One empty region keeps the file's region floor satisfied.
        let src = format!(
            "{}fn dump() {{ let v: Vec<u64> = names.iter().map(decode).collect(); }}\n",
            hot_wrapped("    let seq = next.fetch_add(1, SeqCst);\n")
        );
        assert!(lint_source(HOT_FILE, &src).is_empty());
    }

    #[test]
    fn hot_file_without_any_region_is_flagged() {
        let src = "fn record() { let x = 1; }\n";
        let f = lint_source(HOT_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-path-alloc");
        assert_eq!(f[0].line, 0);
        assert!(f[0].message.contains("no"), "{}", f[0].message);
    }

    #[test]
    fn unterminated_hot_region_is_flagged() {
        let src = "// hot-path: begin\nfn record() { let x = 1; }\n";
        let f = lint_source(HOT_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-path-alloc");
        assert!(f[0].message.contains("unterminated"));
    }

    #[test]
    fn hot_rule_is_scoped_to_the_audit_list() {
        // Identical markers + allocation elsewhere are inert comments.
        let src = hot_wrapped("    let s = format!(\"x\");\n");
        for file in [
            "crates/engine/src/cache.rs",
            "crates/obs/src/lib.rs",
            "crates/serve/src/server.rs",
        ] {
            assert!(lint_source(file, &src).is_empty(), "{file}");
        }
        // ...while the audited path is flagged whether relative or absolute.
        assert_eq!(lint_source(HOT_FILE, &src).len(), 1);
        assert_eq!(
            lint_source(&format!("/abs/repo/{HOT_FILE}"), &src).len(),
            1
        );
    }

    #[test]
    fn hot_region_allow_marker_exempts_a_line() {
        let src = hot_wrapped(
            "    scratch.push(seq); // det-lint: allow — fixed-capacity, pre-reserved\n",
        );
        assert!(lint_source(HOT_FILE, &src).is_empty());
    }

    #[test]
    fn dotted_hot_patterns_fire_after_identifiers() {
        // Regression: `.push(` follows an identifier (`items`), which a
        // leading-boundary check would wrongly treat as part of a longer
        // name and skip.
        let src = hot_wrapped("    self.items.push(rec);\n");
        assert_eq!(lint_source(HOT_FILE, &src).len(), 1);
        // Identifier-led patterns still respect the leading boundary.
        let src = hot_wrapped("    let v = SmallVec::of(rec);\n");
        assert!(lint_source(HOT_FILE, &src).is_empty());
        // `unlock(` is not `.lock(`.
        let src = hot_wrapped("    guard.unlock();\n");
        assert!(lint_source(HOT_FILE, &src).is_empty());
    }

    #[test]
    fn the_real_recorder_passes_its_own_audit() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../obs/src/recorder.rs");
        let src = std::fs::read_to_string(&path).expect("recorder source");
        assert!(
            src.contains(HOT_PATH_BEGIN),
            "recorder must declare its hot regions"
        );
        let f = lint_source(HOT_FILE, &src);
        assert!(f.is_empty(), "recorder hot path must stay clean: {f:?}");
    }

    #[test]
    fn test_module_is_skipped() {
        let src = "\
fn f() {}
#[cfg(test)]
mod tests {
    fn g(m: HashMap<u8, u8>) { let v: Vec<_> = m.keys().collect(); use_it(v); }
}
";
        assert!(lint_source("x.rs", src).is_empty());
        assert_eq!(count_unwraps("fn f() {}\n#[cfg(test)]\nmod t { fn g() { x.unw\u{0072}ap(); } }"), 0);
    }

    #[test]
    fn pattern_strings_are_cached_per_process() {
        // Each accessor hands back the same allocation on every call — the
        // assembly cost is paid once, not once per scanned file.
        assert!(std::ptr::eq(unwrap_pattern(), unwrap_pattern()));
        assert!(std::ptr::eq(unsafe_keyword(), unsafe_keyword()));
        assert!(std::ptr::eq(unsafe_optin_pattern(), unsafe_optin_pattern()));
        assert!(std::ptr::eq(wall_clock_patterns(), wall_clock_patterns()));
        assert!(std::ptr::eq(hot_path_clock_tokens(), hot_path_clock_tokens()));
        assert!(std::ptr::eq(raw_spawn_patterns(), raw_spawn_patterns()));
    }

    #[test]
    fn unwrap_ratchet_counts_and_compares() {
        let pat = unwrap_pattern();
        let src = format!("fn f() {{ a{pat}); b{pat}); }}\n");
        assert_eq!(count_unwraps(&src), 2);
        let mut counts = BTreeMap::new();
        counts.insert("a.rs".to_string(), 2);
        let mut baseline = BTreeMap::new();
        baseline.insert("a.rs".to_string(), 2);
        assert!(ratchet_findings(&counts, &baseline).is_empty());
        baseline.insert("a.rs".to_string(), 1);
        let f = ratchet_findings(&counts, &baseline);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unwrap-ratchet");
    }

    #[test]
    fn baseline_roundtrips() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/a/src/x.rs".to_string(), 3);
        counts.insert("crates/b/src/y.rs".to_string(), 1);
        let text = format_baseline(&counts);
        assert_eq!(parse_baseline(&text), counts);
    }
}
