//! The plan verifier: structural checks plus full schema inference, and
//! the rewrite-substitution check used on every view rewrite.

use crate::schema::{infer_schema, Schema};
use av_engine::Catalog;
use av_plan::{check_structure, PlanError, PlanNode};

/// Verify a plan end to end: structural well-formedness, then bottom-up
/// schema/type inference against the catalog. Returns the root schema.
pub fn verify_plan(catalog: &Catalog, plan: &PlanNode) -> Result<Schema, PlanError> {
    check_structure(plan)?;
    infer_schema(catalog, plan)
}

/// Verify a view rewrite: the rewritten plan must itself verify, and its
/// output schema (names *and* types, positionally) must equal the original
/// plan's — i.e. the substituted view covers every column its consumers
/// require, with the right types.
pub fn verify_rewrite(
    catalog: &Catalog,
    original: &PlanNode,
    rewritten: &PlanNode,
) -> Result<Schema, PlanError> {
    let orig = verify_plan(catalog, original)?;
    let new = verify_plan(catalog, rewritten)?;
    if orig.len() != new.len() {
        // Name the first position where the schemas diverge so a failure
        // in a 226-query workload points at the offending column, not just
        // the counts.
        let first_diff = orig
            .iter()
            .zip(&new)
            .position(|((on, ot), (nn, nt))| on != nn || ot != nt)
            .unwrap_or_else(|| orig.len().min(new.len()));
        return Err(PlanError::ArityMismatch {
            context: format!("rewrite output schema (first divergence at column {first_diff})"),
            expected: orig.len(),
            actual: new.len(),
        });
    }
    for (i, ((on, ot), (nn, nt))) in orig.iter().zip(&new).enumerate() {
        if on != nn || ot != nt {
            return Err(PlanError::TypeMismatch {
                context: format!("rewrite output column {i} ({on})"),
                left: format!("{on}: {}", ot.keyword()),
                right: format!("{nn}: {}", nt.keyword()),
            });
        }
    }
    Ok(new)
}

/// Adapter with the engine's [`av_engine::PreflightFn`] signature.
fn preflight(catalog: &Catalog, plan: &PlanNode) -> Result<(), String> {
    verify_plan(catalog, plan).map(|_| ()).map_err(|e| e.to_string())
}

/// Install the verifier as the engine's pre-dispatch gate (see
/// `av_engine::preflight`): every subsequent `Executor::run` in this
/// process verifies its plan before touching any data. Returns `true` iff
/// this call installed the gate.
pub fn install_engine_gate() -> bool {
    av_engine::install_preflight(preflight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_engine::{Catalog, Column, ColumnType, Executor, Pricing, Table, ViewStore};
    use av_plan::{Expr, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "users",
                vec![
                    ("id", Column::Int((0..20).collect())),
                    ("score", Column::Float((0..20).map(|i| i as f64).collect())),
                    ("name", Column::str((0..20).map(|i| format!("u{i}")).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c.add_table(
            Table::new(
                "acts",
                vec![
                    ("uid", Column::Int((0..30).map(|i| i % 20).collect())),
                    ("kind", Column::str((0..30).map(|i| format!("k{}", i % 3)).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c
    }

    fn joined() -> PlanBuilder {
        PlanBuilder::scan("users", "u")
            .join(PlanBuilder::scan("acts", "a"), &[("u.id", "a.uid")])
    }

    #[test]
    fn valid_join_aggregate_verifies_with_types() {
        let plan = joined()
            .filter(Expr::col("a.kind").eq(Expr::str("k1")))
            .count_star(&["u.name"], "cnt")
            .build();
        let schema = verify_plan(&catalog(), &plan).expect("verifies");
        assert_eq!(
            schema,
            vec![
                ("u.name".to_string(), ColumnType::Str),
                ("cnt".to_string(), ColumnType::Int),
            ]
        );
    }

    #[test]
    fn unknown_table_rejected() {
        let plan = PlanBuilder::scan("ghost", "g").build();
        let err = verify_plan(&catalog(), &plan).expect_err("rejects");
        assert_eq!(err.code(), "unknown-table");
    }

    #[test]
    fn renamed_column_rejected_as_unbound() {
        let plan = PlanBuilder::scan("users", "u")
            .filter(Expr::col("u.idd").eq(Expr::int(1)))
            .build();
        let err = verify_plan(&catalog(), &plan).expect_err("rejects");
        assert_eq!(err.code(), "unbound-column");
        assert!(err.to_string().contains("u.idd"));
    }

    #[test]
    fn string_vs_int_comparison_rejected() {
        let plan = PlanBuilder::scan("users", "u")
            .filter(Expr::col("u.name").eq(Expr::int(3)))
            .build();
        let err = verify_plan(&catalog(), &plan).expect_err("rejects");
        assert_eq!(err.code(), "type-mismatch");
    }

    #[test]
    fn string_join_key_against_int_rejected() {
        let plan = PlanBuilder::scan("users", "u")
            .join(PlanBuilder::scan("acts", "a"), &[("u.name", "a.uid")])
            .build();
        let err = verify_plan(&catalog(), &plan).expect_err("rejects");
        assert_eq!(err.code(), "type-mismatch");
    }

    #[test]
    fn dropped_join_key_rejected_as_unbound() {
        let plan = PlanBuilder::scan("users", "u")
            .join(PlanBuilder::scan("acts", "a"), &[("u.id", "a.gone")])
            .build();
        let err = verify_plan(&catalog(), &plan).expect_err("rejects");
        assert_eq!(err.code(), "unbound-column");
        assert!(err.to_string().contains("a.gone"));
    }

    #[test]
    fn sum_over_string_rejected() {
        let plan = PlanBuilder::scan("users", "u")
            .aggregate(
                &[],
                vec![av_plan::AggExpr {
                    func: av_plan::AggFunc::Sum,
                    input: Some("u.name".into()),
                    output: "s".into(),
                }],
            )
            .build();
        let err = verify_plan(&catalog(), &plan).expect_err("rejects");
        assert_eq!(err.code(), "bad-aggregate");
    }

    #[test]
    fn string_predicate_rejected_as_non_boolean() {
        let plan = PlanBuilder::scan("users", "u")
            .filter(Expr::col("u.name"))
            .build();
        let err = verify_plan(&catalog(), &plan).expect_err("rejects");
        assert_eq!(err.code(), "non-boolean-predicate");
    }

    #[test]
    fn whatever_the_engine_accepts_the_verifier_accepts() {
        // Cross-check on a small family of plans: if the executor runs a
        // plan, verification must pass too (the verifier is sound w.r.t.
        // the engine, never stricter on valid plans).
        let cat = catalog();
        let exec = Executor::new(&cat, Pricing::paper_defaults());
        let plans = vec![
            joined().build(),
            joined().project(&[("u.name", "n"), ("a.kind", "k")]).build(),
            joined()
                .filter(Expr::col("u.score").cmp(av_plan::CmpOp::Gt, Expr::int(5)))
                .count_star(&["a.kind"], "c")
                .build(),
        ];
        for p in plans {
            exec.run(&p).expect("engine runs");
            verify_plan(&cat, &p).expect("verifier agrees");
        }
    }

    #[test]
    fn rewrite_with_materialized_view_verifies() {
        let mut cat = catalog();
        let mut store = ViewStore::new();
        let sub = PlanBuilder::scan("acts", "a")
            .filter(Expr::col("a.kind").eq(Expr::str("k1")))
            .project(&[("a.uid", "a.uid"), ("a.kind", "a.kind")])
            .build();
        let query = PlanBuilder::from_plan(sub.clone())
            .count_star(&["a.kind"], "cnt")
            .build();
        store
            .materialize(&mut cat, sub, Pricing::paper_defaults())
            .expect("materializes");
        let view = &store.views()[0];
        let (rewritten, n) = av_engine::rewrite_with_view(&query, view);
        assert_eq!(n, 1);
        verify_rewrite(&cat, &query, &rewritten).expect("rewrite verifies");
    }

    #[test]
    fn mismatch_errors_name_the_column_position() {
        let cat = catalog();
        let orig = PlanBuilder::scan("users", "u")
            .project(&[("u.id", "u.id"), ("u.name", "u.name")])
            .build();
        let renamed = PlanBuilder::scan("users", "u")
            .project(&[("u.id", "u.id"), ("u.name", "nm")])
            .build();
        let err = verify_rewrite(&cat, &orig, &renamed).expect_err("rejects");
        assert_eq!(err.code(), "type-mismatch");
        assert!(err.to_string().contains("column 1"), "{err}");

        let narrow = PlanBuilder::scan("users", "u")
            .project(&[("u.id", "u.id")])
            .build();
        let err = verify_rewrite(&cat, &orig, &narrow).expect_err("rejects");
        assert_eq!(err.code(), "arity-mismatch");
        assert!(err.to_string().contains("column 1"), "{err}");
    }

    #[test]
    fn schema_changing_substitution_rejected() {
        // Splice a view whose stored schema does NOT cover the consumer's
        // required columns: the aggregate above references a.kind, but the
        // view only stores a.uid.
        let mut cat = catalog();
        let mut store = ViewStore::new();
        let narrow = PlanBuilder::scan("acts", "a")
            .filter(Expr::col("a.kind").eq(Expr::str("k1")))
            .project(&[("a.uid", "a.uid")])
            .build();
        store
            .materialize(&mut cat, narrow, Pricing::paper_defaults())
            .expect("materializes");
        let view = &store.views()[0];

        let wide_sub = PlanBuilder::scan("acts", "a")
            .filter(Expr::col("a.kind").eq(Expr::str("k1")))
            .project(&[("a.uid", "a.uid"), ("a.kind", "a.kind")])
            .build();
        let query = PlanBuilder::from_plan(wide_sub.clone())
            .count_star(&["a.kind"], "cnt")
            .build();
        // Force the splice as if the narrow view matched the wide subtree.
        let bad = av_plan::PlanNode::Aggregate {
            input: av_plan::PlanNode::TableScan {
                table: view.table_name.clone(),
                alias: String::new(),
            }
            .into_ref(),
            group_by: vec!["a.kind".into()],
            aggs: vec![av_plan::AggExpr {
                func: av_plan::AggFunc::Count,
                input: None,
                output: "cnt".into(),
            }],
        };
        let err = verify_rewrite(&cat, &query, &bad).expect_err("rejects");
        assert_eq!(err.code(), "unbound-column");
    }
}
