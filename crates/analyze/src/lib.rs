//! `av-analyze` — static verification for the AutoView reproduction.
//!
//! Three passes, each usable as a library and wired into a binary:
//!
//! - **Plan verifier** ([`verify_plan`] / [`verify_rewrite`]): structural
//!   checks plus bottom-up typed schema inference over the logical plan IR,
//!   mirroring `av-engine`'s runtime semantics. Rejects unbound columns,
//!   type-mismatched predicates and join keys, aggregates over incompatible
//!   inputs, and view-rewrite substitutions whose output schema does not
//!   cover the consumers' required columns. [`install_engine_gate`] hooks
//!   it in front of every `Executor::run` in the process.
//! - **NN graph checker** ([`nncheck::GraphSpec`]): symbolic shape/dtype
//!   inference over the `av-nn` operator vocabulary, catching dimension
//!   mismatches before any flop runs, dead (gradient-unreachable)
//!   parameters, and `log`/`sqrt` domain hazards.
//! - **Determinism lint** ([`lint`]): a hand-rolled scanner over
//!   `crates/*/src` flagging unordered hash-container iteration that feeds
//!   order-sensitive consumers, wall-clock reads in library code, and a
//!   per-file panic-site ratchet.
//!
//! Binaries: `cargo run -p av-analyze` runs all passes plus full JOB
//! workload verification; `cargo run -p av-analyze --bin lint` runs the
//! determinism lint alone.

#![forbid(unsafe_code)]

pub mod containment;
pub mod lint;
pub mod lockorder;
pub mod nncheck;
pub mod schema;
pub mod verify;

pub use containment::{prove_rewrite, Verdict, ViewDef};
pub use lockorder::{LockEdge, LockOrderReport, ALLOWED_EDGES, BOUNDARY_LOCKS, LOCK_CRATES};
pub use nncheck::{widedeep_spec, GraphSpec, NnFinding};
pub use schema::{infer_schema, type_of_expr, Schema};
pub use verify::{install_engine_gate, verify_plan, verify_rewrite};
