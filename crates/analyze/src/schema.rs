//! Bottom-up typed schema inference over logical plans.
//!
//! Every operator's output schema is derived from its children against a
//! catalog, and every expression is type-checked along the way. The rules
//! mirror the executor's runtime semantics (`av-engine`): qualification of
//! scan columns by alias, pass-through of stored view columns under an
//! empty alias, numeric truthiness of predicates, and the aggregate output
//! types the hash aggregator actually produces.

use av_engine::{Catalog, ColumnType};
use av_plan::expr::ArithOp;
use av_plan::{AggFunc, Expr, PlanError, PlanNode};

/// An inferred output schema: column names with their types, in output
/// order.
pub type Schema = Vec<(String, ColumnType)>;

/// Type of an expression. `None` means "unknown" (a NULL literal), which
/// unifies with everything — mirroring SQL's untyped NULL.
pub type ExprType = Option<ColumnType>;

/// Infer the output schema of `plan` against `catalog`, rejecting unbound
/// columns, type-mismatched predicates / join keys / arithmetic, and
/// aggregates over incompatible inputs.
pub fn infer_schema(catalog: &Catalog, plan: &PlanNode) -> Result<Schema, PlanError> {
    match plan {
        PlanNode::TableScan { table, alias } => {
            let t = catalog.table(table).ok_or_else(|| PlanError::UnknownTable {
                table: table.clone(),
            })?;
            Ok(t.column_names
                .iter()
                .zip(&t.column_types)
                .map(|(c, &ty)| {
                    // Empty alias = materialized-view scan: stored names
                    // already carry the defining plan's qualification.
                    let name = if alias.is_empty() {
                        c.clone()
                    } else {
                        format!("{alias}.{c}")
                    };
                    (name, ty)
                })
                .collect())
        }
        PlanNode::Filter { input, predicate } => {
            let schema = infer_schema(catalog, input)?;
            let ty = type_of_expr(&schema, predicate, "Filter")?;
            if ty == Some(ColumnType::Str) {
                return Err(PlanError::NonBooleanPredicate {
                    context: format!("Filter predicate {predicate}"),
                });
            }
            Ok(schema)
        }
        PlanNode::Project { input, exprs } => {
            let schema = infer_schema(catalog, input)?;
            let mut out = Schema::with_capacity(exprs.len());
            for p in exprs {
                let ty = type_of_expr(&schema, &p.expr, "Project")?;
                // An untyped (pure NULL) projection defaults to Int, the
                // engine's representation of NULL-only columns.
                out.push((p.alias.clone(), ty.unwrap_or(ColumnType::Int)));
            }
            Ok(out)
        }
        PlanNode::Join {
            left, right, on, ..
        } => {
            let ls = infer_schema(catalog, left)?;
            let rs = infer_schema(catalog, right)?;
            for (lk, rk) in on {
                let lt = lookup(&ls, lk).ok_or_else(|| PlanError::UnboundColumn {
                    column: lk.clone(),
                    operator: "Join",
                    available: names(&ls),
                })?;
                let rt = lookup(&rs, rk).ok_or_else(|| PlanError::UnboundColumn {
                    column: rk.clone(),
                    operator: "Join",
                    available: names(&rs),
                })?;
                if !comparable(Some(lt), Some(rt)) {
                    return Err(PlanError::TypeMismatch {
                        context: format!("Join key {lk} = {rk}"),
                        left: lt.keyword().into(),
                        right: rt.keyword().into(),
                    });
                }
            }
            let mut out = ls;
            out.extend(rs);
            // Ambiguous names make downstream binding (first match wins)
            // silently positional — reject them.
            for i in 1..out.len() {
                if out[..i].iter().any(|(n, _)| n == &out[i].0) {
                    return Err(PlanError::DuplicateColumn {
                        column: out[i].0.clone(),
                        operator: "Join",
                    });
                }
            }
            Ok(out)
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let schema = infer_schema(catalog, input)?;
            let mut out = Schema::with_capacity(group_by.len() + aggs.len());
            for g in group_by {
                let ty = lookup(&schema, g).ok_or_else(|| PlanError::UnboundColumn {
                    column: g.clone(),
                    operator: "Aggregate",
                    available: names(&schema),
                })?;
                out.push((g.clone(), ty));
            }
            for a in aggs {
                let in_ty = match &a.input {
                    Some(c) => Some(lookup(&schema, c).ok_or_else(|| PlanError::UnboundColumn {
                        column: c.clone(),
                        operator: "Aggregate",
                        available: names(&schema),
                    })?),
                    None => None,
                };
                let out_ty = agg_output_type(a.func, in_ty).ok_or_else(|| {
                    PlanError::BadAggregate {
                        agg: a.to_string(),
                        reason: format!(
                            "{} cannot consume a {} column",
                            a.func.keyword(),
                            in_ty.map_or("?", |t| t.keyword())
                        ),
                    }
                })?;
                out.push((a.output.clone(), out_ty));
            }
            Ok(out)
        }
    }
}

/// Output type of an aggregate, or `None` if the function cannot consume
/// the input type. Mirrors the engine's finalizer: COUNT → Int, SUM/AVG →
/// Float (and numeric-only), MIN/MAX preserve the input type.
fn agg_output_type(func: AggFunc, input: ExprType) -> Option<ColumnType> {
    match func {
        AggFunc::Count => Some(ColumnType::Int),
        AggFunc::Sum | AggFunc::Avg => match input {
            Some(ColumnType::Str) => None,
            _ => Some(ColumnType::Float),
        },
        AggFunc::Min | AggFunc::Max => Some(input.unwrap_or(ColumnType::Int)),
    }
}

/// Infer an expression's type over `schema`, checking every sub-expression.
pub fn type_of_expr(
    schema: &Schema,
    expr: &Expr,
    operator: &'static str,
) -> Result<ExprType, PlanError> {
    match expr {
        Expr::Column(c) => match lookup(schema, c) {
            Some(ty) => Ok(Some(ty)),
            None => Err(PlanError::UnboundColumn {
                column: c.clone(),
                operator,
                available: names(schema),
            }),
        },
        Expr::Literal(v) => Ok(match v {
            av_plan::Value::Int(_) => Some(ColumnType::Int),
            av_plan::Value::Float(_) => Some(ColumnType::Float),
            av_plan::Value::Str(_) => Some(ColumnType::Str),
            av_plan::Value::Null => None,
        }),
        Expr::Cmp { op, left, right } => {
            let lt = type_of_expr(schema, left, operator)?;
            let rt = type_of_expr(schema, right, operator)?;
            if !comparable(lt, rt) {
                return Err(PlanError::TypeMismatch {
                    context: format!("{}({left}, {right})", op.keyword()),
                    left: type_name(lt),
                    right: type_name(rt),
                });
            }
            Ok(Some(ColumnType::Int))
        }
        Expr::And(v) | Expr::Or(v) => {
            for e in v {
                let ty = type_of_expr(schema, e, operator)?;
                if ty == Some(ColumnType::Str) {
                    return Err(PlanError::NonBooleanPredicate {
                        context: format!("connective operand {e}"),
                    });
                }
            }
            Ok(Some(ColumnType::Int))
        }
        Expr::Not(e) => {
            let ty = type_of_expr(schema, e, operator)?;
            if ty == Some(ColumnType::Str) {
                return Err(PlanError::NonBooleanPredicate {
                    context: format!("NOT({e})"),
                });
            }
            Ok(Some(ColumnType::Int))
        }
        Expr::Arith { op, left, right } => {
            let lt = type_of_expr(schema, left, operator)?;
            let rt = type_of_expr(schema, right, operator)?;
            if lt == Some(ColumnType::Str) || rt == Some(ColumnType::Str) {
                return Err(PlanError::TypeMismatch {
                    context: format!("{}({left}, {right})", op.keyword()),
                    left: type_name(lt),
                    right: type_name(rt),
                });
            }
            Ok(
                if lt == Some(ColumnType::Int)
                    && rt == Some(ColumnType::Int)
                    && !matches!(op, ArithOp::Div)
                {
                    Some(ColumnType::Int)
                } else {
                    Some(ColumnType::Float)
                },
            )
        }
    }
}

/// Numbers compare with numbers, strings with strings, NULL with anything.
fn comparable(a: ExprType, b: ExprType) -> bool {
    match (a, b) {
        (None, _) | (_, None) => true,
        (Some(ColumnType::Str), Some(ColumnType::Str)) => true,
        (Some(ColumnType::Str), _) | (_, Some(ColumnType::Str)) => false,
        _ => true,
    }
}

fn lookup(schema: &Schema, name: &str) -> Option<ColumnType> {
    schema.iter().find(|(n, _)| n == name).map(|&(_, ty)| ty)
}

fn names(schema: &Schema) -> Vec<String> {
    schema.iter().map(|(n, _)| n.clone()).collect()
}

fn type_name(t: ExprType) -> String {
    t.map_or("Null", |t| t.keyword()).to_string()
}
