//! Static shape checking of `av-nn` computation graphs.
//!
//! `av_nn::Graph` is an eager tape: building a mis-shaped graph panics in
//! the middle of a forward pass. [`GraphSpec`] is the symbolic twin — the
//! same operator vocabulary (matmul, add, add_row, slice_cols, conv3x1,
//! norm_rows, ...) with *shapes only*, so an architecture can be verified
//! before a single flop runs. On top of shape inference it detects
//! parameters the loss gradient can never reach, and domain hazards
//! (`log`/`sqrt` fed by inputs that are not bounded away from their
//! singular points).

use std::fmt;

/// Node handle inside a [`GraphSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecId(usize);

#[derive(Debug, Clone)]
enum SpecOp {
    Input,
    Param { param: usize },
    /// Gather `count` rows from an embedding-table param.
    Embed { param: usize },
    MatMul(SpecId, SpecId),
    Add(SpecId, SpecId),
    Sub(SpecId, SpecId),
    Mul(SpecId, SpecId),
    AddRow(SpecId, SpecId),
    Scale(SpecId),
    Relu(SpecId),
    Sigmoid(SpecId),
    Tanh(SpecId),
    ConcatCols(Vec<SpecId>),
    ConcatRows(Vec<SpecId>),
    // Start/len are captured at construction time (shape already reflects
    // them); kept in the op for Debug output only.
    #[allow(dead_code)]
    SliceCols(SpecId, usize, usize),
    MeanRows(SpecId),
    MeanAll(SpecId),
    Conv3x1 { x: SpecId, w: SpecId, b: SpecId },
    NormRows { x: SpecId, gamma: SpecId, beta: SpecId },
    /// Elementwise natural log — singular at 0.
    Log(SpecId),
    /// Elementwise square root — singular (gradient) at 0, NaN below.
    Sqrt(SpecId),
    /// Elementwise `max(x, floor)` — the canonical domain guard.
    ClampMin(SpecId, f64),
}

struct SpecNode {
    op: SpecOp,
    shape: (usize, usize),
}

/// One finding from [`GraphSpec::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnFinding {
    /// Operand shapes are incompatible with the operator.
    ShapeMismatch { node: usize, detail: String },
    /// A declared parameter is unreachable from the output: its gradient
    /// is identically zero and it silently never trains.
    DeadParam { name: String },
    /// `log`/`sqrt` applied to an input not bounded away from the
    /// singularity by a guard (sigmoid, clamp, ...).
    DomainHazard { node: usize, detail: String },
    /// No output was declared, so nothing constrains the graph.
    NoOutput,
}

impl fmt::Display for NnFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnFinding::ShapeMismatch { node, detail } => {
                write!(f, "shape mismatch at node {node}: {detail}")
            }
            NnFinding::DeadParam { name } => {
                write!(f, "dead parameter {name}: gradient-unreachable from the output")
            }
            NnFinding::DomainHazard { node, detail } => {
                write!(f, "domain hazard at node {node}: {detail}")
            }
            NnFinding::NoOutput => write!(f, "graph has no declared output"),
        }
    }
}

/// Symbolic computation-graph specification with shape inference.
#[derive(Default)]
pub struct GraphSpec {
    nodes: Vec<SpecNode>,
    params: Vec<(String, (usize, usize))>,
    /// Param index → first node that reads it (if any).
    findings: Vec<NnFinding>,
    output: Option<SpecId>,
}

impl GraphSpec {
    /// Empty spec.
    pub fn new() -> GraphSpec {
        GraphSpec::default()
    }

    fn push(&mut self, op: SpecOp, shape: (usize, usize)) -> SpecId {
        self.nodes.push(SpecNode { op, shape });
        SpecId(self.nodes.len() - 1)
    }

    fn mismatch(&mut self, node: usize, detail: String) {
        self.findings.push(NnFinding::ShapeMismatch { node, detail });
    }

    fn shape(&self, id: SpecId) -> (usize, usize) {
        self.nodes[id.0].shape
    }

    /// A constant input of the given shape.
    pub fn input(&mut self, rows: usize, cols: usize) -> SpecId {
        self.push(SpecOp::Input, (rows, cols))
    }

    /// A named trainable parameter of the given shape.
    pub fn param(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> SpecId {
        self.params.push((name.into(), (rows, cols)));
        let param = self.params.len() - 1;
        self.push(SpecOp::Param { param }, (rows, cols))
    }

    /// Gather `count` rows from a `vocab×dim` embedding-table parameter.
    pub fn embed(
        &mut self,
        name: impl Into<String>,
        vocab: usize,
        dim: usize,
        count: usize,
    ) -> SpecId {
        self.params.push((name.into(), (vocab, dim)));
        let param = self.params.len() - 1;
        self.push(SpecOp::Embed { param }, (count, dim))
    }

    /// Matrix product `a × b`.
    pub fn matmul(&mut self, a: SpecId, b: SpecId) -> SpecId {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        if ac != br {
            let n = self.nodes.len();
            self.mismatch(n, format!("matmul {ar}x{ac} × {br}x{bc}"));
        }
        self.push(SpecOp::MatMul(a, b), (ar, bc))
    }

    fn elementwise(&mut self, a: SpecId, b: SpecId, what: &str) -> (usize, usize) {
        let sa = self.shape(a);
        let sb = self.shape(b);
        if sa != sb {
            let n = self.nodes.len();
            self.mismatch(
                n,
                format!("{what} {}x{} vs {}x{}", sa.0, sa.1, sb.0, sb.1),
            );
        }
        sa
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: SpecId, b: SpecId) -> SpecId {
        let s = self.elementwise(a, b, "add");
        self.push(SpecOp::Add(a, b), s)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: SpecId, b: SpecId) -> SpecId {
        let s = self.elementwise(a, b, "sub");
        self.push(SpecOp::Sub(a, b), s)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: SpecId, b: SpecId) -> SpecId {
        let s = self.elementwise(a, b, "mul");
        self.push(SpecOp::Mul(a, b), s)
    }

    /// Broadcast-add a `1×c` row to every row of an `r×c` node.
    pub fn add_row(&mut self, x: SpecId, row: SpecId) -> SpecId {
        let (xr, xc) = self.shape(x);
        let (rr, rc) = self.shape(row);
        if rr != 1 || rc != xc {
            let n = self.nodes.len();
            self.mismatch(n, format!("add_row {xr}x{xc} + {rr}x{rc}"));
        }
        self.push(SpecOp::AddRow(x, row), (xr, xc))
    }

    /// Scalar multiple (shape-preserving).
    pub fn scale(&mut self, x: SpecId) -> SpecId {
        let s = self.shape(x);
        self.push(SpecOp::Scale(x), s)
    }

    /// ReLU.
    pub fn relu(&mut self, x: SpecId) -> SpecId {
        let s = self.shape(x);
        self.push(SpecOp::Relu(x), s)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: SpecId) -> SpecId {
        let s = self.shape(x);
        self.push(SpecOp::Sigmoid(x), s)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: SpecId) -> SpecId {
        let s = self.shape(x);
        self.push(SpecOp::Tanh(x), s)
    }

    /// Elementwise natural log (domain-checked, see [`GraphSpec::check`]).
    pub fn log(&mut self, x: SpecId) -> SpecId {
        let s = self.shape(x);
        self.push(SpecOp::Log(x), s)
    }

    /// Elementwise square root (domain-checked).
    pub fn sqrt(&mut self, x: SpecId) -> SpecId {
        let s = self.shape(x);
        self.push(SpecOp::Sqrt(x), s)
    }

    /// Elementwise `max(x, floor)` — guards a following `log`/`sqrt`.
    pub fn clamp_min(&mut self, x: SpecId, floor: f64) -> SpecId {
        let s = self.shape(x);
        self.push(SpecOp::ClampMin(x, floor), s)
    }

    /// Column-wise concatenation (equal row counts).
    pub fn concat_cols(&mut self, parts: &[SpecId]) -> SpecId {
        let rows = parts.first().map_or(0, |&p| self.shape(p).0);
        let mut cols = 0;
        for &p in parts {
            let (r, c) = self.shape(p);
            if r != rows {
                let n = self.nodes.len();
                self.mismatch(n, format!("concat_cols rows {r} vs {rows}"));
            }
            cols += c;
        }
        self.push(SpecOp::ConcatCols(parts.to_vec()), (rows, cols))
    }

    /// Row-wise concatenation (equal column counts).
    pub fn concat_rows(&mut self, parts: &[SpecId]) -> SpecId {
        let cols = parts.first().map_or(0, |&p| self.shape(p).1);
        let mut rows = 0;
        for &p in parts {
            let (r, c) = self.shape(p);
            if c != cols {
                let n = self.nodes.len();
                self.mismatch(n, format!("concat_rows cols {c} vs {cols}"));
            }
            rows += r;
        }
        self.push(SpecOp::ConcatRows(parts.to_vec()), (rows, cols))
    }

    /// Columns `[start, start+len)` of `x`.
    pub fn slice_cols(&mut self, x: SpecId, start: usize, len: usize) -> SpecId {
        let (r, c) = self.shape(x);
        if start + len > c {
            let n = self.nodes.len();
            self.mismatch(n, format!("slice_cols [{start}, {start}+{len}) of {r}x{c}"));
        }
        self.push(SpecOp::SliceCols(x, start, len), (r, len))
    }

    /// Column means: `r×c → 1×c`.
    pub fn mean_rows(&mut self, x: SpecId) -> SpecId {
        let (_, c) = self.shape(x);
        self.push(SpecOp::MeanRows(x), (1, c))
    }

    /// Grand mean: `r×c → 1×1`.
    pub fn mean_all(&mut self, x: SpecId) -> SpecId {
        self.push(SpecOp::MeanAll(x), (1, 1))
    }

    /// Depthwise 3×1 convolution: `x r×c`, `w 3×c`, `b 1×c` → `r×c`.
    pub fn conv3x1(&mut self, x: SpecId, w: SpecId, b: SpecId) -> SpecId {
        let (xr, xc) = self.shape(x);
        let sw = self.shape(w);
        let sb = self.shape(b);
        if sw != (3, xc) || sb != (1, xc) {
            let n = self.nodes.len();
            self.mismatch(
                n,
                format!(
                    "conv3x1 over {xr}x{xc} needs w 3x{xc} (got {}x{}) and b 1x{xc} (got {}x{})",
                    sw.0, sw.1, sb.0, sb.1
                ),
            );
        }
        self.push(SpecOp::Conv3x1 { x, w, b }, (xr, xc))
    }

    /// Per-column normalization with learned `gamma`/`beta` (`1×c` each).
    pub fn norm_rows(&mut self, x: SpecId, gamma: SpecId, beta: SpecId) -> SpecId {
        let (xr, xc) = self.shape(x);
        let sg = self.shape(gamma);
        let sb = self.shape(beta);
        if sg != (1, xc) || sb != (1, xc) {
            let n = self.nodes.len();
            self.mismatch(
                n,
                format!(
                    "norm_rows over {xr}x{xc} needs gamma/beta 1x{xc} (got {}x{} / {}x{})",
                    sg.0, sg.1, sb.0, sb.1
                ),
            );
        }
        self.push(SpecOp::NormRows { x, gamma, beta }, (xr, xc))
    }

    /// Declare the graph's output (the node the loss is taken from).
    pub fn set_output(&mut self, id: SpecId) {
        self.output = Some(id);
    }

    /// Inferred shape of a node.
    pub fn shape_of(&self, id: SpecId) -> (usize, usize) {
        self.shape(id)
    }

    /// An unrolled single-layer LSTM over `steps` (each `1×input`),
    /// returning the final `1×hidden` state. The cell is modeled unrolled
    /// into primitive ops with fused `[i|f|g|o]` gate matrices — the same
    /// recurrence `av_nn::Lstm` computes, whose runtime tape collapses each
    /// step into one fused `LstmCell` node (shape-equivalent at the
    /// `1×hidden` output; the fused node's packed `[h|c|tanh(c)]` state is
    /// an execution detail the symbolic twin does not need to mirror).
    pub fn lstm(
        &mut self,
        name: &str,
        input: usize,
        hidden: usize,
        steps: &[SpecId],
    ) -> SpecId {
        let wx = self.param(format!("{name}.wx"), input, 4 * hidden);
        let wh = self.param(format!("{name}.wh"), hidden, 4 * hidden);
        let b = self.param(format!("{name}.b"), 1, 4 * hidden);
        let mut h = self.input(1, hidden);
        let mut c = self.input(1, hidden);
        for &x in steps {
            let xg = self.matmul(x, wx);
            let hg = self.matmul(h, wh);
            let s = self.add(xg, hg);
            let gates = self.add_row(s, b);
            let i = self.slice_cols(gates, 0, hidden);
            let f = self.slice_cols(gates, hidden, hidden);
            let gg = self.slice_cols(gates, 2 * hidden, hidden);
            let o = self.slice_cols(gates, 3 * hidden, hidden);
            let i = self.sigmoid(i);
            let f = self.sigmoid(f);
            let gg = self.tanh(gg);
            let o = self.sigmoid(o);
            let fc = self.mul(f, c);
            let ig = self.mul(i, gg);
            c = self.add(fc, ig);
            let tc = self.tanh(c);
            h = self.mul(o, tc);
        }
        h
    }

    /// A linear layer `x(r×in) × W(in×out) + b(1×out)`.
    pub fn linear(&mut self, name: &str, x: SpecId, in_dim: usize, out_dim: usize) -> SpecId {
        let w = self.param(format!("{name}.w"), in_dim, out_dim);
        let b = self.param(format!("{name}.b"), 1, out_dim);
        let xw = self.matmul(x, w);
        self.add_row(xw, b)
    }

    /// Run all checks: shape findings collected during construction, dead
    /// (gradient-unreachable) parameters, and `log`/`sqrt` domain hazards.
    pub fn check(&self) -> Vec<NnFinding> {
        let mut out = self.findings.clone();
        let Some(output) = self.output else {
            out.push(NnFinding::NoOutput);
            return out;
        };

        // Reachability walk from the output.
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack = vec![output.0];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut reachable[i], true) {
                continue;
            }
            for dep in self.deps(i) {
                stack.push(dep.0);
            }
        }
        let mut live_params = vec![false; self.params.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            match n.op {
                SpecOp::Param { param } | SpecOp::Embed { param } => live_params[param] = true,
                _ => {}
            }
        }
        for (p, (name, _)) in self.params.iter().enumerate() {
            if !live_params[p] {
                out.push(NnFinding::DeadParam { name: name.clone() });
            }
        }

        // Domain hazards: log/sqrt whose operand is not a guard.
        for (i, n) in self.nodes.iter().enumerate() {
            let (kind, x) = match n.op {
                SpecOp::Log(x) => ("log", x),
                SpecOp::Sqrt(x) => ("sqrt", x),
                _ => continue,
            };
            if !self.guarded(x, kind) {
                out.push(NnFinding::DomainHazard {
                    node: i,
                    detail: format!(
                        "{kind} input is not bounded away from its singularity \
                         (guard with clamp_min or a sigmoid)"
                    ),
                });
            }
        }
        out
    }

    /// True iff node `x` is guaranteed inside `kind`'s domain:
    /// `log` needs a strictly positive input, `sqrt` a non-negative one.
    fn guarded(&self, x: SpecId, kind: &str) -> bool {
        match self.nodes[x.0].op {
            SpecOp::Sigmoid(_) => true, // (0, 1)
            SpecOp::ClampMin(_, floor) => {
                if kind == "log" {
                    floor > 0.0
                } else {
                    floor >= 0.0
                }
            }
            SpecOp::Relu(_) => kind == "sqrt", // [0, ∞): fine for sqrt, not log
            _ => false,
        }
    }

    fn deps(&self, i: usize) -> Vec<SpecId> {
        match &self.nodes[i].op {
            SpecOp::Input | SpecOp::Param { .. } | SpecOp::Embed { .. } => vec![],
            SpecOp::MatMul(a, b)
            | SpecOp::Add(a, b)
            | SpecOp::Sub(a, b)
            | SpecOp::Mul(a, b)
            | SpecOp::AddRow(a, b) => vec![*a, *b],
            SpecOp::Scale(a)
            | SpecOp::Relu(a)
            | SpecOp::Sigmoid(a)
            | SpecOp::Tanh(a)
            | SpecOp::SliceCols(a, _, _)
            | SpecOp::MeanRows(a)
            | SpecOp::MeanAll(a)
            | SpecOp::Log(a)
            | SpecOp::Sqrt(a)
            | SpecOp::ClampMin(a, _) => vec![*a],
            SpecOp::ConcatCols(v) | SpecOp::ConcatRows(v) => v.clone(),
            SpecOp::Conv3x1 { x, w, b } => vec![*x, *w, *b],
            SpecOp::NormRows { x, gamma, beta } => vec![*x, *gamma, *beta],
        }
    }
}

/// Spec of the full Wide-Deep cost model (paper Fig. 5, default config:
/// `embed_dim` 12, LSTM hiddens 16/16, `wide_dim` 8), mirroring
/// `av_cost::WideDeep::forward` operator for operator for a representative
/// input (`ops` operator rows of `toks` tokens each, one encoded string of
/// `chars` characters, `schema_kws` schema keywords).
pub fn widedeep_spec(
    num_features: usize,
    vocab: usize,
    ops: usize,
    toks: usize,
    chars: usize,
    schema_kws: usize,
) -> GraphSpec {
    let nd = 12; // embed_dim
    let (h1, h2) = (16, 16); // lstm1_hidden, lstm2_hidden
    let wide_dim = 8;
    let dr = num_features + nd + 2 * h2;

    let mut g = GraphSpec::new();

    // Wide part.
    let dc = g.input(1, num_features);
    let dw = g.linear("wide", dc, num_features, wide_dim);

    // Schema keyword embedding, average-pooled.
    let schema_emb = g.embed("kw_embed", vocab, nd, schema_kws);
    let dm = g.mean_rows(schema_emb);

    // String encoder params are shared across both plan encoders.
    let char_w = g.param("conv1.w", 3, nd);
    let char_b = g.param("conv1.b", 1, nd);
    let bn1_g = g.param("bn1.gamma", 1, nd);
    let bn1_b = g.param("bn1.beta", 1, nd);
    let conv2_w = g.param("conv2.w", 3, nd);
    let conv2_b = g.param("conv2.b", 1, nd);
    let bn2_g = g.param("bn2.gamma", 1, nd);
    let bn2_b = g.param("bn2.beta", 1, nd);

    let encode_plan = |g: &mut GraphSpec, which: &str| {
        let mut op_vecs = Vec::with_capacity(ops);
        for _ in 0..ops {
            let mut tok_vecs = Vec::with_capacity(toks);
            // One string token per row through the char-CNN (Fig. 6), the
            // rest keyword embeddings.
            let emb = g.embed("char_embed", 128, nd, chars);
            let c1 = g.conv3x1(emb, char_w, char_b);
            let b1 = g.norm_rows(c1, bn1_g, bn1_b);
            let r1 = g.relu(b1);
            let c2 = g.conv3x1(r1, conv2_w, conv2_b);
            let b2 = g.norm_rows(c2, bn2_g, bn2_b);
            let r2 = g.relu(b2);
            tok_vecs.push(g.mean_rows(r2));
            for _ in 1..toks.max(2) {
                tok_vecs.push(g.embed("kw_embed", vocab, nd, 1));
            }
            op_vecs.push(g.lstm(&format!("lstm1.{which}"), nd, h1, &tok_vecs));
        }
        g.lstm(&format!("lstm2.{which}"), h1, h2, &op_vecs)
    };
    let de_q = encode_plan(&mut g, "q");
    let de_v = encode_plan(&mut g, "v");

    let dr_node = g.concat_cols(&[dc, dm, de_q, de_v]);

    // Two ResNet blocks.
    let h = g.linear("fc1", dr_node, dr, dr);
    let h = g.relu(h);
    let h = g.linear("fc2", h, dr, dr);
    let h = g.relu(h);
    let z1 = g.add(dr_node, h);
    let h = g.linear("fc3", z1, dr, dr);
    let h = g.relu(h);
    let h = g.linear("fc4", h, dr, dr);
    let h = g.relu(h);
    let z2 = g.add(z1, h);

    let merged = g.concat_cols(&[dw, z2]);
    let h = g.linear("fc5", merged, wide_dim + dr, 16);
    let h = g.relu(h);
    let out = g.linear("fc6", h, 16, 1);
    g.set_output(out);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widedeep_spec_checks_clean() {
        let g = widedeep_spec(10, 40, 6, 4, 8, 12);
        let findings = g.check();
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn dimension_mismatch_detected() {
        let mut g = GraphSpec::new();
        let x = g.input(1, 10);
        let w = g.param("w", 11, 4); // wrong: 10-wide input vs 11-tall weight
        let y = g.matmul(x, w);
        g.set_output(y);
        let findings = g.check();
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, NnFinding::ShapeMismatch { .. })),
            "got {findings:?}"
        );
    }

    #[test]
    fn dead_parameter_detected() {
        let mut g = GraphSpec::new();
        let x = g.input(1, 4);
        let live = g.linear("live", x, 4, 2);
        let _orphan = g.param("orphan", 4, 4); // never used
        g.set_output(live);
        let findings = g.check();
        assert_eq!(
            findings,
            vec![NnFinding::DeadParam {
                name: "orphan".into()
            }]
        );
    }

    #[test]
    fn disconnected_branch_parameter_is_dead() {
        let mut g = GraphSpec::new();
        let x = g.input(1, 4);
        let main = g.linear("main", x, 4, 1);
        // A whole computed branch that never reaches the output.
        let side = g.linear("side", x, 4, 3);
        let _side2 = g.relu(side);
        g.set_output(main);
        let findings = g.check();
        let dead: Vec<&NnFinding> = findings
            .iter()
            .filter(|f| matches!(f, NnFinding::DeadParam { .. }))
            .collect();
        assert_eq!(dead.len(), 2, "side.w and side.b: {findings:?}");
    }

    #[test]
    fn unclamped_log_flagged_and_guarded_log_passes() {
        let mut g = GraphSpec::new();
        let x = g.input(1, 4);
        let h = g.linear("l", x, 4, 4);
        let bad = g.log(h); // h can be ≤ 0
        let out = g.mean_all(bad);
        g.set_output(out);
        assert!(
            g.check()
                .iter()
                .any(|f| matches!(f, NnFinding::DomainHazard { .. })),
        );

        let mut g = GraphSpec::new();
        let x = g.input(1, 4);
        let h = g.linear("l", x, 4, 4);
        let safe = g.clamp_min(h, 1e-6);
        let ok = g.log(safe);
        let out = g.mean_all(ok);
        g.set_output(out);
        assert!(g.check().is_empty());
    }

    #[test]
    fn relu_guards_sqrt_but_not_log() {
        let mut g = GraphSpec::new();
        let x = g.input(1, 4);
        let h = g.relu(x);
        let s = g.sqrt(h);
        let l = g.log(h);
        let sum = g.add(s, l);
        let out = g.mean_all(sum);
        g.set_output(out);
        let findings = g.check();
        assert_eq!(
            findings.len(),
            1,
            "only the log should be flagged: {findings:?}"
        );
    }

    #[test]
    fn no_output_is_a_finding() {
        let mut g = GraphSpec::new();
        let _ = g.input(1, 1);
        assert!(g.check().contains(&NnFinding::NoOutput));
    }

    #[test]
    fn spec_shapes_agree_with_the_real_autograd_graph() {
        // Build the same tiny model symbolically and eagerly; the spec's
        // inferred output shape must match what av-nn actually produces.
        use av_nn::{Graph, Linear, Lstm, ParamStore, Tensor};

        let (input, hidden, steps) = (5, 7, 3);

        let mut spec = GraphSpec::new();
        let xs: Vec<SpecId> = (0..steps).map(|_| spec.input(1, input)).collect();
        let h = spec.lstm("lstm", input, hidden, &xs);
        let y = spec.linear("out", h, hidden, 2);
        spec.set_output(y);
        assert!(spec.check().is_empty());

        let mut store = ParamStore::with_seed(3);
        let lstm = Lstm::new(&mut store, input, hidden);
        let lin = Linear::new(&mut store, hidden, 2);
        let mut g = Graph::new();
        let xs: Vec<_> = (0..steps).map(|_| g.input(Tensor::zeros(1, input))).collect();
        let h = lstm.forward_with(&mut g, &store, &xs);
        let out = lin.forward_with(&mut g, &store, h);
        assert_eq!(spec.shape_of(y), g.value(out).shape());
    }
}
