//! Semantic rewrite prover: decide, without executing anything, whether a
//! view-rewritten plan computes the same result as the original.
//!
//! [`prove_rewrite`] inlines every materialized-view scan back into its
//! defining plan (so both sides range over base tables only), then
//! normalizes each side into a *block* normal form:
//!
//! - **sources** — the base-table scans (and nested aggregate sub-blocks),
//!   alias-free, in a canonical order;
//! - **join equivalence classes** — the union-find closure of inner-join
//!   `on` pairs and `col = col` filter atoms;
//! - **predicate domains** — per equivalence class, an interval/point
//!   abstraction of the conjunctive `col ⋈ literal` atoms
//!   ([`Domain`]: eq/ne point sets plus lower/upper bounds);
//! - **opaque atoms** — every other conjunct (disjunctions, arithmetic,
//!   non-equality column comparisons), compared syntactically after class
//!   canonicalization;
//! - **output / aggregate signature** — positional output expressions with
//!   every column replaced by its class root, plus the group-by +
//!   aggregate-function shape.
//!
//! Comparing the two normal forms yields a three-valued [`Verdict`]:
//!
//! - `Proved` — the forms are equal: the rewrite returns identical results
//!   on every database instance.
//! - `Refuted { witness }` — a concrete separating fact was found (a value
//!   one predicate admits and the other rejects, a dropped join edge, a
//!   different aggregate); the rewrite is wrong on some instance.
//! - `Unknown { reason }` — neither; callers fall back to the existing
//!   `verify_rewrite` schema check / sampled execution.
//!
//! `Refuted` is only ever returned with evidence (a separating value found
//! by probing both domains, or a structural difference that changes results
//! on some instance); soundness of that direction is what lets debug gates
//! panic on it. Syntactic differences that *might* still be equivalent
//! (e.g. differing disjunctions) stay `Unknown`.

use av_engine::{Catalog, ColumnType};
use av_equiv::canonicalize;
use av_plan::{AggFunc, CmpOp, Expr, Fingerprint, JoinType, PlanNode, PlanRef, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Outcome of a containment proof attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The rewritten plan provably computes the original's result.
    Proved,
    /// The rewrite is provably wrong; `witness` describes a separating
    /// instance (a value or structural difference that changes results).
    Refuted { witness: String },
    /// The prover cannot decide; fall back to the execution-based check.
    Unknown { reason: String },
}

impl Verdict {
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved)
    }

    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted { .. })
    }

    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Proved => "proved",
            Verdict::Refuted { .. } => "refuted",
            Verdict::Unknown { .. } => "unknown",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Proved => write!(f, "proved"),
            Verdict::Refuted { witness } => write!(f, "refuted: {witness}"),
            Verdict::Unknown { reason } => write!(f, "unknown: {reason}"),
        }
    }
}

/// Resolves a materialized view's stored table name to its defining plan.
pub type ViewDef<'a> = &'a dyn Fn(&str) -> Option<PlanRef>;

/// Prove that `rewritten` computes the same result as `original`.
///
/// `view_def` maps a view's stored-table name (the `__view_N` table a
/// rewrite scans with an empty alias) back to the view's defining plan, so
/// the proof ranges over base tables only. An unresolvable view scan yields
/// `Unknown`, never `Refuted`.
pub fn prove_rewrite(
    catalog: &Catalog,
    original: &PlanRef,
    rewritten: &PlanRef,
    view_def: ViewDef,
) -> Verdict {
    let orig = match inline_views(original, view_def, 0) {
        Ok(p) => p,
        Err(reason) => return Verdict::Unknown { reason },
    };
    let rewr = match inline_views(rewritten, view_def, 0) {
        Ok(p) => p,
        Err(reason) => return Verdict::Unknown { reason },
    };
    // Fast path: after inlining, canonical structural equality is already a
    // proof (alias renames, predicate permutations, flipped comparisons).
    if Fingerprint::of(&canonicalize(&orig)) == Fingerprint::of(&canonicalize(&rewr)) {
        return Verdict::Proved;
    }
    let a = match normalize_plan(catalog, &orig) {
        Ok(b) => collapse_trivial(b),
        Err(reason) => return Verdict::Unknown { reason },
    };
    let b = match normalize_plan(catalog, &rewr) {
        Ok(b) => collapse_trivial(b),
        Err(reason) => return Verdict::Unknown { reason },
    };
    compare_blocks(catalog, &a, &b)
}

// ---------------------------------------------------------------------------
// View inlining
// ---------------------------------------------------------------------------

fn inline_views(plan: &PlanRef, view_def: ViewDef, depth: usize) -> Result<PlanRef, String> {
    if depth > 8 {
        return Err("view inlining exceeded depth 8 (self-referential view?)".into());
    }
    Ok(match plan.as_ref() {
        PlanNode::TableScan { table, alias } => {
            if alias.is_empty() {
                // Empty alias is the materialized-view scan convention.
                let def = view_def(table)
                    .ok_or_else(|| format!("view scan `{table}` has no known defining plan"))?;
                return inline_views(&def, view_def, depth + 1);
            }
            plan.clone()
        }
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: inline_views(input, view_def, depth)?,
            predicate: predicate.clone(),
        }
        .into_ref(),
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: inline_views(input, view_def, depth)?,
            exprs: exprs.clone(),
        }
        .into_ref(),
        PlanNode::Join {
            left,
            right,
            on,
            join_type,
        } => PlanNode::Join {
            left: inline_views(left, view_def, depth)?,
            right: inline_views(right, view_def, depth)?,
            on: on.clone(),
            join_type: *join_type,
        }
        .into_ref(),
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            input: inline_views(input, view_def, depth)?,
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        }
        .into_ref(),
    })
}

// ---------------------------------------------------------------------------
// Block normal form
// ---------------------------------------------------------------------------

/// One relation a block ranges over.
#[derive(Debug, Clone)]
enum Source {
    /// Base-table scan.
    Base(String),
    /// Nested aggregate subquery, normalized into its own block.
    Derived(Box<Block>),
}

/// Group-by + aggregate signature of an aggregate block.
#[derive(Debug, Clone)]
struct AggSig {
    /// (visible output name, resolved grouping expression).
    group_by: Vec<(String, Expr)>,
    /// (function, resolved input expression, output name).
    aggs: Vec<(AggFunc, Option<Expr>, String)>,
}

/// Raw normal form of one plan: sources plus the conjunctive constraint
/// soup, with every column reference rewritten to `§<source>:<column>`.
#[derive(Debug, Clone)]
struct Block {
    sources: Vec<Source>,
    /// `col = col` equalities (inner-join `on` pairs and filter atoms).
    unions: Vec<(String, String)>,
    /// `col ⋈ literal` atoms.
    ranges: Vec<(String, CmpOp, Value)>,
    /// Conjuncts outside the range/equality fragment.
    opaques: Vec<Expr>,
    /// Positional output (alias, resolved expression); empty for
    /// aggregate blocks, whose outputs live in `agg`.
    outputs: Vec<(String, Expr)>,
    agg: Option<AggSig>,
}

type Env = Vec<(String, Expr)>;

fn col_id(src: usize, key: &str) -> String {
    format!("\u{a7}{src}:{key}")
}

/// Split a `§src:key` id back into its parts.
fn parse_col_id(id: &str) -> Option<(usize, &str)> {
    let rest = id.strip_prefix('\u{a7}')?;
    let (src, key) = rest.split_once(':')?;
    src.parse().ok().map(|s| (s, key))
}

struct BlockBuilder {
    sources: Vec<Source>,
    unions: Vec<(String, String)>,
    ranges: Vec<(String, CmpOp, Value)>,
    opaques: Vec<Expr>,
}

impl BlockBuilder {
    fn new() -> BlockBuilder {
        BlockBuilder {
            sources: Vec::new(),
            unions: Vec::new(),
            ranges: Vec::new(),
            opaques: Vec::new(),
        }
    }

    /// Walk the SPJ region of `plan`, accumulating sources and constraints;
    /// returns the visible-name environment at this node.
    fn walk(&mut self, catalog: &Catalog, plan: &PlanRef) -> Result<Env, String> {
        match plan.as_ref() {
            PlanNode::TableScan { table, alias } => {
                if alias.is_empty() {
                    return Err(format!("unresolved view scan `{table}`"));
                }
                let t = catalog
                    .table(table)
                    .ok_or_else(|| format!("unknown table `{table}`"))?;
                let s = self.sources.len();
                self.sources.push(Source::Base(table.clone()));
                Ok(t.column_names
                    .iter()
                    .map(|c| (format!("{alias}.{c}"), Expr::Column(col_id(s, c))))
                    .collect())
            }
            PlanNode::Filter { input, predicate } => {
                let env = self.walk(catalog, input)?;
                self.add_predicate(predicate, &env)?;
                Ok(env)
            }
            PlanNode::Project { input, exprs } => {
                let env = self.walk(catalog, input)?;
                exprs
                    .iter()
                    .map(|p| Ok((p.alias.clone(), resolve_expr(&p.expr, &env)?)))
                    .collect()
            }
            PlanNode::Join {
                left,
                right,
                on,
                join_type,
            } => {
                if *join_type == JoinType::Left {
                    return Err("left join is outside the proved fragment".into());
                }
                let mut env = self.walk(catalog, left)?;
                env.extend(self.walk(catalog, right)?);
                for (l, r) in on {
                    let le = resolve_col(l, &env)?;
                    let re = resolve_col(r, &env)?;
                    match (le, re) {
                        (Expr::Column(a), Expr::Column(b)) => self.unions.push((a, b)),
                        (a, b) => self.opaques.push(Expr::Cmp {
                            op: CmpOp::Eq,
                            left: Box::new(a),
                            right: Box::new(b),
                        }),
                    }
                }
                Ok(env)
            }
            PlanNode::Aggregate {
                group_by, aggs, ..
            } => {
                // A nested aggregate becomes a derived source: its own block,
                // referenced positionally.
                let inner = normalize_plan(catalog, plan)?;
                let s = self.sources.len();
                self.sources.push(Source::Derived(Box::new(inner)));
                let names: Vec<String> = group_by
                    .iter()
                    .cloned()
                    .chain(aggs.iter().map(|a| a.output.clone()))
                    .collect();
                Ok(names
                    .into_iter()
                    .enumerate()
                    .map(|(i, n)| (n, Expr::Column(col_id(s, &format!("p{i}")))))
                    .collect())
            }
        }
    }

    /// Flatten a filter predicate into conjuncts and classify each one.
    fn add_predicate(&mut self, predicate: &Expr, env: &Env) -> Result<(), String> {
        let resolved = resolve_expr(predicate, env)?;
        let normalized = av_equiv::canon::normalize_expr(&resolved);
        let conjuncts = match normalized {
            Expr::And(parts) => parts,
            other => vec![other],
        };
        for atom in conjuncts {
            match &atom {
                Expr::Cmp { op, left, right } => match (op, left.as_ref(), right.as_ref()) {
                    (CmpOp::Eq, Expr::Column(a), Expr::Column(b)) => {
                        self.unions.push((a.clone(), b.clone()));
                    }
                    (_, Expr::Column(c), Expr::Literal(v)) => {
                        self.ranges.push((c.clone(), *op, v.clone()));
                    }
                    _ => self.opaques.push(atom),
                },
                _ => self.opaques.push(atom),
            }
        }
        Ok(())
    }
}

/// First-match name lookup, mirroring the schema verifier's binding rule.
fn resolve_col(name: &str, env: &Env) -> Result<Expr, String> {
    env.iter()
        .find(|(n, _)| n == name)
        .map(|(_, e)| e.clone())
        .ok_or_else(|| format!("unbound column `{name}`"))
}

fn resolve_expr(e: &Expr, env: &Env) -> Result<Expr, String> {
    Ok(match e {
        Expr::Column(c) => resolve_col(c, env)?,
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: Box::new(resolve_expr(left, env)?),
            right: Box::new(resolve_expr(right, env)?),
        },
        Expr::And(v) => Expr::And(
            v.iter()
                .map(|e| resolve_expr(e, env))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Or(v) => Expr::Or(
            v.iter()
                .map(|e| resolve_expr(e, env))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Not(inner) => Expr::Not(Box::new(resolve_expr(inner, env)?)),
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(resolve_expr(left, env)?),
            right: Box::new(resolve_expr(right, env)?),
        },
    })
}

fn normalize_plan(catalog: &Catalog, plan: &PlanRef) -> Result<Block, String> {
    match plan.as_ref() {
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut b = BlockBuilder::new();
            let env = b.walk(catalog, input)?;
            let gb = group_by
                .iter()
                .map(|g| Ok((g.clone(), resolve_col(g, &env)?)))
                .collect::<Result<Vec<_>, String>>()?;
            let agg_sig = aggs
                .iter()
                .map(|a| {
                    let input = match &a.input {
                        Some(c) => Some(resolve_col(c, &env)?),
                        None => None,
                    };
                    Ok((a.func, input, a.output.clone()))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Block {
                sources: b.sources,
                unions: b.unions,
                ranges: b.ranges,
                opaques: b.opaques,
                outputs: Vec::new(),
                agg: Some(AggSig {
                    group_by: gb,
                    aggs: agg_sig,
                }),
            })
        }
        _ => {
            let mut b = BlockBuilder::new();
            let env = b.walk(catalog, plan)?;
            Ok(Block {
                sources: b.sources,
                unions: b.unions,
                ranges: b.ranges,
                opaques: b.opaques,
                outputs: env,
                agg: None,
            })
        }
    }
}

/// Unwrap trivial wrapper blocks. A root `Aggregate` normalizes into an
/// aggregate block directly, but the same aggregate reached through a
/// rename-only `Project` (the shape view inlining produces when the matched
/// subtree is the whole query) becomes a wrapper block around one derived
/// source — structurally different, semantically identical. When the wrapper
/// adds no constraints and its outputs are the inner block's positional
/// outputs in order, replace it with the inner block, carrying the wrapper's
/// visible names onto the aggregate signature.
fn collapse_trivial(mut block: Block) -> Block {
    block.sources = block
        .sources
        .into_iter()
        .map(|s| match s {
            Source::Derived(inner) => Source::Derived(Box::new(collapse_trivial(*inner))),
            base => base,
        })
        .collect();
    if block.agg.is_some()
        || block.sources.len() != 1
        || !block.unions.is_empty()
        || !block.ranges.is_empty()
        || !block.opaques.is_empty()
    {
        return block;
    }
    let arity = match &block.sources[0] {
        Source::Derived(inner) => match &inner.agg {
            Some(sig) => sig.group_by.len() + sig.aggs.len(),
            None => return block,
        },
        Source::Base(_) => return block,
    };
    let identity = block.outputs.len() == arity
        && block.outputs.iter().enumerate().all(|(i, (_, e))| match e {
            Expr::Column(c) => parse_col_id(c).is_some_and(|(s, k)| s == 0 && k == format!("p{i}")),
            _ => false,
        });
    if !identity {
        return block;
    }
    let Some(Source::Derived(inner)) = block.sources.pop() else {
        unreachable!("checked above");
    };
    let mut inner = *inner;
    let sig = inner.agg.as_mut().expect("derived source is an aggregate");
    for (i, (name, _)) in block.outputs.iter().enumerate() {
        if i < sig.group_by.len() {
            sig.group_by[i].0 = name.clone();
        } else {
            let j = i - sig.group_by.len();
            sig.aggs[j].2 = name.clone();
        }
    }
    inner
}

// ---------------------------------------------------------------------------
// Predicate domains
// ---------------------------------------------------------------------------

fn veq(a: &Value, b: &Value) -> bool {
    a.total_cmp(b).is_eq()
}

/// Interval/point abstraction of the conjunctive `col ⋈ literal` atoms on
/// one equivalence class. `None` bounds are unconstrained; the `bool` marks
/// an inclusive bound.
#[derive(Debug, Clone, Default)]
struct Domain {
    eqs: Vec<Value>,
    nes: Vec<Value>,
    lo: Option<(Value, bool)>,
    hi: Option<(Value, bool)>,
}

impl Domain {
    fn add(&mut self, op: CmpOp, v: Value, int_class: bool) {
        // On provably integer columns, strict bounds close up (`< 5` ⇔
        // `≤ 4`) so syntactically different but equal constraints unify.
        let int_shift = |v: &Value, d: i64| match v {
            Value::Int(i) if int_class => Some(Value::Int(i + d)),
            _ => None,
        };
        match op {
            CmpOp::Eq => {
                if !self.eqs.iter().any(|e| veq(e, &v)) {
                    self.eqs.push(v);
                }
            }
            CmpOp::Ne => {
                if !self.nes.iter().any(|e| veq(e, &v)) {
                    self.nes.push(v);
                }
            }
            CmpOp::Lt => match int_shift(&v, -1) {
                Some(c) => self.tighten_hi(c, true),
                None => self.tighten_hi(v, false),
            },
            CmpOp::Le => self.tighten_hi(v, true),
            CmpOp::Gt => match int_shift(&v, 1) {
                Some(c) => self.tighten_lo(c, true),
                None => self.tighten_lo(v, false),
            },
            CmpOp::Ge => self.tighten_lo(v, true),
        }
    }

    fn tighten_lo(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.lo {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Less => false,
            },
        };
        if replace {
            self.lo = Some((v, inclusive));
        }
    }

    fn tighten_hi(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.hi {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Greater => false,
            },
        };
        if replace {
            self.hi = Some((v, inclusive));
        }
    }

    fn is_trivial(&self) -> bool {
        self.eqs.is_empty() && self.nes.is_empty() && self.lo.is_none() && self.hi.is_none()
    }

    /// Would a (non-null) value satisfy every atom folded into this domain?
    fn contains(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        if !self.eqs.iter().all(|e| veq(e, v)) {
            return false;
        }
        if self.nes.iter().any(|e| veq(e, v)) {
            return false;
        }
        if let Some((lo, inc)) = &self.lo {
            let ord = v.total_cmp(lo);
            if ord.is_lt() || (ord.is_eq() && !inc) {
                return false;
            }
        }
        if let Some((hi, inc)) = &self.hi {
            let ord = v.total_cmp(hi);
            if ord.is_gt() || (ord.is_eq() && !inc) {
                return false;
            }
        }
        true
    }

    /// The conjunction admits no value at all (e.g. two distinct `=` atoms).
    fn is_unsat(&self) -> bool {
        if let Some(e) = self.eqs.first() {
            return !self.contains(e);
        }
        if let (Some((lo, lo_inc)), Some((hi, hi_inc))) = (&self.lo, &self.hi) {
            let ord = lo.total_cmp(hi);
            if ord.is_gt() || (ord.is_eq() && !(*lo_inc && *hi_inc)) {
                return true;
            }
        }
        false
    }

    fn sorted(&self) -> Domain {
        let mut d = self.clone();
        d.eqs.sort_by(|a, b| a.total_cmp(b));
        d.nes.sort_by(|a, b| a.total_cmp(b));
        d
    }

    fn structurally_eq(&self, other: &Domain) -> bool {
        let (a, b) = (self.sorted(), other.sorted());
        let bound_eq = |x: &Option<(Value, bool)>, y: &Option<(Value, bool)>| match (x, y) {
            (None, None) => true,
            (Some((v, i)), Some((w, j))) => veq(v, w) && i == j,
            _ => false,
        };
        a.eqs.len() == b.eqs.len()
            && a.eqs.iter().zip(&b.eqs).all(|(x, y)| veq(x, y))
            && a.nes.len() == b.nes.len()
            && a.nes.iter().zip(&b.nes).all(|(x, y)| veq(x, y))
            && bound_eq(&a.lo, &b.lo)
            && bound_eq(&a.hi, &b.hi)
    }

    fn constants(&self) -> Vec<Value> {
        let mut out: Vec<Value> = self.eqs.iter().chain(&self.nes).cloned().collect();
        if let Some((v, _)) = &self.lo {
            out.push(v.clone());
        }
        if let Some((v, _)) = &self.hi {
            out.push(v.clone());
        }
        out
    }

    fn render(&self) -> String {
        let d = self.sorted();
        format!(
            "eq{:?} ne{:?} lo{:?} hi{:?}",
            d.eqs, d.nes, d.lo, d.hi
        )
    }
}

/// Candidate separating values for a pair of domains: the constants of both
/// plus, type-permitting, neighbours and midpoints. Fractional candidates
/// are only synthesized when the class is provably `Float` (a fractional
/// witness on an integer column would be unsound).
fn witness_candidates(a: &Domain, b: &Domain, ty: Option<ColumnType>) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::new();
    let mut push = |v: Value| {
        if !out.iter().any(|o| veq(o, &v)) {
            out.push(v);
        }
    };
    let consts: Vec<Value> = a.constants().into_iter().chain(b.constants()).collect();
    let float_ok = ty == Some(ColumnType::Float)
        || consts.iter().any(|v| matches!(v, Value::Float(_)));
    for c in &consts {
        push(c.clone());
        match c {
            Value::Int(i) => {
                push(Value::Int(i - 1));
                push(Value::Int(i + 1));
                if float_ok && ty != Some(ColumnType::Int) {
                    push(Value::Float(*i as f64 - 0.5));
                    push(Value::Float(*i as f64 + 0.5));
                }
            }
            Value::Float(f) => {
                push(Value::Float(f - 1.0));
                push(Value::Float(f + 1.0));
                push(Value::Float(f - 0.5));
                push(Value::Float(f + 0.5));
            }
            Value::Str(s) => {
                push(Value::Str(format!("{s}\u{1}")));
                if !s.is_empty() {
                    push(Value::Str(s[..s.len() - 1].to_string()));
                }
            }
            Value::Null => {}
        }
    }
    // Midpoints of adjacent numeric constants separate strict/non-strict
    // bound pairs like `> 5` vs `≥ 6` on float columns.
    if float_ok && ty != Some(ColumnType::Int) {
        let mut nums: Vec<f64> = consts.iter().filter_map(|v| v.as_f64()).collect();
        nums.sort_by(|x, y| x.total_cmp(y));
        for w in nums.windows(2) {
            push(Value::Float((w[0] + w[1]) / 2.0));
        }
    }
    out
}

/// Compare two domains on one class: `Ok(true)` equal, `Ok(false)` with a
/// witness impossible to find (undecided), `Err(witness)` provably
/// different.
fn compare_domains(
    a: &Domain,
    b: &Domain,
    ty: Option<ColumnType>,
) -> Result<bool, String> {
    if a.structurally_eq(b) {
        return Ok(true);
    }
    for v in witness_candidates(a, b, ty) {
        if a.contains(&v) != b.contains(&v) {
            return Err(format!("{v:?}"));
        }
    }
    Ok(false)
}

// ---------------------------------------------------------------------------
// Rendering: canonical source order + class roots
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RSource {
    Base(String),
    Derived(String, Block),
}

/// Output / grouping expression after class-root substitution: pure column
/// references compare by class (differences refute); anything else compares
/// syntactically (differences stay unknown).
#[derive(Debug, Clone, PartialEq, Eq)]
enum RExpr {
    Col(String),
    Other(String),
}

/// Rendered aggregate signature: class-rooted group-by expressions and
/// `(function, input, output name)` triples.
type RAgg = (Vec<(String, RExpr)>, Vec<(AggFunc, Option<RExpr>, String)>);

#[derive(Debug)]
struct Rendered {
    sources: Vec<RSource>,
    /// Equivalence classes with ≥ 2 members, each sorted, the set sorted.
    classes: Vec<Vec<String>>,
    /// Class root → non-trivial domain.
    domains: Vec<(String, Domain)>,
    class_types: BTreeMap<String, Option<ColumnType>>,
    opaques: Vec<String>,
    outputs: Vec<(String, RExpr)>,
    agg: Option<RAgg>,
}

struct UnionFind {
    parent: BTreeMap<String, String>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind {
            parent: BTreeMap::new(),
        }
    }

    fn find(&mut self, x: &str) -> String {
        let p = match self.parent.get(x) {
            Some(p) if p != x => p.clone(),
            _ => {
                self.parent.entry(x.to_string()).or_insert_with(|| x.to_string());
                return x.to_string();
            }
        };
        let root = self.find(&p);
        self.parent.insert(x.to_string(), root.clone());
        root
    }

    fn union(&mut self, a: &str, b: &str) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller string becomes the root.
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(drop, keep);
        }
    }

    fn classes(&mut self) -> BTreeMap<String, Vec<String>> {
        let keys: Vec<String> = self.parent.keys().cloned().collect();
        let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for k in keys {
            let r = self.find(&k);
            out.entry(r).or_default().push(k);
        }
        out
    }
}

/// Canonical key of a derived block, used to order and align sources.
fn block_key(catalog: &Catalog, b: &Block) -> Result<String, String> {
    let perm = stable_perm(catalog, b)?;
    let r = render_block(catalog, b, &perm)?;
    Ok(rendered_key(&r))
}

fn rendered_key(r: &Rendered) -> String {
    let srcs: Vec<String> = r
        .sources
        .iter()
        .map(|s| match s {
            RSource::Base(t) => format!("b:{t}"),
            RSource::Derived(k, _) => format!("d:{k}"),
        })
        .collect();
    let doms: Vec<String> = r
        .domains
        .iter()
        .map(|(root, d)| format!("{root}={}", d.render()))
        .collect();
    format!(
        "S{srcs:?} C{:?} D{doms:?} P{:?} O{:?} A{:?}",
        r.classes, r.opaques, r.outputs, r.agg
    )
}

/// Source sort keys for canonical ordering (stable: ties keep scan
/// pre-order, which both sides of a rewrite share).
fn source_keys(catalog: &Catalog, b: &Block) -> Result<Vec<String>, String> {
    b.sources
        .iter()
        .map(|s| match s {
            Source::Base(t) => Ok(format!("b:{t}")),
            Source::Derived(inner) => Ok(format!("d:{}", block_key(catalog, inner)?)),
        })
        .collect()
}

/// The stable canonical permutation: `perm[raw] = canonical position`.
fn stable_perm(catalog: &Catalog, b: &Block) -> Result<Vec<usize>, String> {
    let keys = source_keys(catalog, b)?;
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&x, &y| keys[x].cmp(&keys[y]).then(x.cmp(&y)));
    let mut perm = vec![0usize; keys.len()];
    for (canonical, raw) in order.iter().enumerate() {
        perm[*raw] = canonical;
    }
    Ok(perm)
}

/// All permutations that differ from the stable one only inside tie groups
/// (sources with identical sort keys), capped to keep the search tiny.
fn tie_perms(catalog: &Catalog, b: &Block) -> Result<Vec<Vec<usize>>, String> {
    let keys = source_keys(catalog, b)?;
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&x, &y| keys[x].cmp(&keys[y]).then(x.cmp(&y)));
    // Group canonical positions by key.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && keys[order[j]] == keys[order[i]] {
            j += 1;
        }
        groups.push((i..j).collect());
        i = j;
    }
    let mut perms: Vec<Vec<usize>> = vec![order.clone()];
    for g in &groups {
        if g.len() < 2 {
            continue;
        }
        let mut next = Vec::new();
        for p in &perms {
            for gp in permutations(g) {
                if next.len() >= 24 {
                    break;
                }
                let mut q = p.clone();
                for (slot, &pos) in g.iter().zip(&gp) {
                    q[*slot] = order[pos];
                }
                next.push(q);
            }
        }
        perms = next;
        if perms.len() >= 24 {
            perms.truncate(24);
            break;
        }
    }
    // Convert each ordering back to a raw→canonical permutation.
    Ok(perms
        .into_iter()
        .map(|ord| {
            let mut perm = vec![0usize; ord.len()];
            for (canonical, raw) in ord.iter().enumerate() {
                perm[*raw] = canonical;
            }
            perm
        })
        .collect())
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &first) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            let mut p = vec![first];
            p.append(&mut tail);
            out.push(p);
        }
    }
    out
}

fn remap_col(id: &str, perm: &[usize]) -> String {
    match parse_col_id(id) {
        Some((src, key)) if src < perm.len() => col_id(perm[src], key),
        _ => id.to_string(),
    }
}

fn remap_expr(e: &Expr, map: &dyn Fn(&str) -> String) -> Expr {
    match e {
        Expr::Column(c) => Expr::Column(map(c)),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: Box::new(remap_expr(left, map)),
            right: Box::new(remap_expr(right, map)),
        },
        Expr::And(v) => Expr::And(v.iter().map(|e| remap_expr(e, map)).collect()),
        Expr::Or(v) => Expr::Or(v.iter().map(|e| remap_expr(e, map)).collect()),
        Expr::Not(inner) => Expr::Not(Box::new(remap_expr(inner, map))),
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(remap_expr(left, map)),
            right: Box::new(remap_expr(right, map)),
        },
    }
}

/// Type of one `§src:key` column, via the catalog for base sources.
fn col_type(catalog: &Catalog, sources: &[&Source], id: &str) -> Option<ColumnType> {
    let (src, key) = parse_col_id(id)?;
    match sources.get(src)? {
        Source::Base(t) => {
            let table = catalog.table(t)?;
            let idx = table.column_names.iter().position(|c| c == key)?;
            table.column_types.get(idx).copied()
        }
        Source::Derived(_) => None,
    }
}

fn render_block(catalog: &Catalog, b: &Block, perm: &[usize]) -> Result<Rendered, String> {
    // Canonically reordered sources.
    let mut src_slots: Vec<Option<&Source>> = vec![None; b.sources.len()];
    for (raw, s) in b.sources.iter().enumerate() {
        src_slots[perm[raw]] = Some(s);
    }
    let sources_in_order: Vec<&Source> = src_slots
        .into_iter()
        .map(|s| s.expect("permutation is a bijection"))
        .collect();
    let sources = sources_in_order
        .iter()
        .map(|s| match s {
            Source::Base(t) => Ok(RSource::Base(t.clone())),
            Source::Derived(inner) => Ok(RSource::Derived(
                block_key(catalog, inner)?,
                (**inner).clone(),
            )),
        })
        .collect::<Result<Vec<_>, String>>()?;

    // Union-find over remapped ids.
    let mut uf = UnionFind::new();
    let touch = |uf: &mut UnionFind, id: &str| {
        uf.find(id);
    };
    for (a, c) in &b.unions {
        uf.union(&remap_col(a, perm), &remap_col(c, perm));
    }
    for (c, _, _) in &b.ranges {
        touch(&mut uf, &remap_col(c, perm));
    }
    let collect_cols = |e: &Expr, uf: &mut UnionFind| {
        let mapped = remap_expr(e, &|c| remap_col(c, perm));
        for c in mapped.referenced_columns() {
            uf.find(&c);
        }
        mapped
    };
    let opaque_mapped: Vec<Expr> = b
        .opaques
        .iter()
        .map(|e| collect_cols(e, &mut uf))
        .collect();
    let outputs_mapped: Vec<(String, Expr)> = b
        .outputs
        .iter()
        .map(|(a, e)| (a.clone(), collect_cols(e, &mut uf)))
        .collect();
    let agg_mapped = b.agg.as_ref().map(|sig| {
        let gb: Vec<(String, Expr)> = sig
            .group_by
            .iter()
            .map(|(a, e)| (a.clone(), collect_cols(e, &mut uf)))
            .collect();
        let aggs: Vec<(AggFunc, Option<Expr>, String)> = sig
            .aggs
            .iter()
            .map(|(f, i, o)| {
                (
                    *f,
                    i.as_ref().map(|e| collect_cols(e, &mut uf)),
                    o.clone(),
                )
            })
            .collect();
        (gb, aggs)
    });

    // Domains per class, with integer-closure when the class is provably Int.
    type DomainMaps = (BTreeMap<String, Domain>, BTreeMap<String, Option<ColumnType>>);
    let build_domains = |uf: &mut UnionFind| -> Result<DomainMaps, String> {
        let mut types: BTreeMap<String, Option<ColumnType>> = BTreeMap::new();
        for (root, members) in uf.classes() {
            let mut ty = None;
            for m in &members {
                if let Some(t) = col_type(catalog, &sources_in_order, m) {
                    ty = Some(t);
                    break;
                }
            }
            types.insert(root, ty);
        }
        let mut domains: BTreeMap<String, Domain> = BTreeMap::new();
        for (c, op, v) in &b.ranges {
            let root = uf.find(&remap_col(c, perm));
            let int_class = types.get(&root).copied().flatten() == Some(ColumnType::Int);
            domains
                .entry(root)
                .or_default()
                .add(*op, v.clone(), int_class);
        }
        for d in domains.values() {
            if d.is_unsat() {
                return Err("unsatisfiable conjunctive predicate".into());
            }
        }
        Ok((domains, types))
    };
    let (domains, _) = build_domains(&mut uf)?;

    // Constant saturation: classes pinned to the same single `=` constant
    // hold equal values on every surviving row, so merging them is sound —
    // it keeps `x = 5 ∧ y = 5` and `x = 5 ∧ y = 5 ∧ x = y` in one form.
    let mut by_const: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (root, d) in &domains {
        if d.eqs.len() == 1 {
            by_const
                .entry(format!("{:?}", d.eqs[0]))
                .or_default()
                .push(root.clone());
        }
    }
    for group in by_const.values() {
        for pair in group.windows(2) {
            uf.union(&pair[0], &pair[1]);
        }
    }
    let (domains, class_types) = build_domains(&mut uf)?;

    // Final class partition (only classes that actually tie columns) and a
    // pure root-lookup map for expression substitution.
    let class_map = uf.classes();
    let classes: Vec<Vec<String>> = class_map
        .values()
        .filter(|m| m.len() >= 2)
        .cloned()
        .collect();
    let mut root_map: BTreeMap<String, String> = BTreeMap::new();
    for (root, members) in &class_map {
        for m in members {
            root_map.insert(m.clone(), root.clone());
        }
    }
    let find = move |c: &str| root_map.get(c).cloned().unwrap_or_else(|| c.to_string());

    let root_of = |e: &Expr| remap_expr(e, &|c| find(c));
    let rexpr = |e: &Expr| -> RExpr {
        let rooted = av_equiv::canon::normalize_expr(&root_of(e));
        match &rooted {
            Expr::Column(c) => RExpr::Col(c.clone()),
            other => RExpr::Other(other.to_string()),
        }
    };

    let mut opaques: Vec<String> = opaque_mapped
        .iter()
        .map(|e| av_equiv::canon::normalize_expr(&root_of(e)).to_string())
        .collect();
    opaques.sort();
    let outputs: Vec<(String, RExpr)> = outputs_mapped
        .iter()
        .map(|(a, e)| (a.clone(), rexpr(e)))
        .collect();
    let agg = agg_mapped.map(|(gb, aggs)| {
        (
            gb.iter().map(|(a, e)| (a.clone(), rexpr(e))).collect(),
            aggs.iter()
                .map(|(f, i, o)| (*f, i.as_ref().map(&rexpr), o.clone()))
                .collect(),
        )
    });

    Ok(Rendered {
        sources,
        classes,
        domains: domains
            .into_iter()
            .filter(|(_, d)| !d.is_trivial())
            .collect(),
        class_types,
        opaques,
        outputs,
        agg,
    })
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

fn compare_blocks(catalog: &Catalog, a: &Block, b: &Block) -> Verdict {
    let pa = match stable_perm(catalog, a) {
        Ok(p) => p,
        Err(reason) => return Verdict::Unknown { reason },
    };
    let ra = match render_block(catalog, a, &pa) {
        Ok(r) => r,
        Err(reason) => return Verdict::Unknown { reason },
    };
    let perms = match tie_perms(catalog, b) {
        Ok(p) => p,
        Err(reason) => return Verdict::Unknown { reason },
    };
    let mut refuted = None;
    let mut unknown = None;
    for perm in perms {
        let rb = match render_block(catalog, b, &perm) {
            Ok(r) => r,
            Err(reason) => {
                unknown.get_or_insert(reason);
                continue;
            }
        };
        match compare_rendered(catalog, &ra, &rb) {
            Verdict::Proved => return Verdict::Proved,
            Verdict::Refuted { witness } => refuted.get_or_insert(witness),
            Verdict::Unknown { reason } => unknown.get_or_insert(reason),
        };
    }
    // A wrong tie permutation manufactures differences, so an Unknown under
    // any alignment outranks a Refuted under another.
    match (unknown, refuted) {
        (Some(reason), _) => Verdict::Unknown { reason },
        (None, Some(witness)) => Verdict::Refuted { witness },
        (None, None) => Verdict::Unknown {
            reason: "no source alignment compared".into(),
        },
    }
}

fn compare_rendered(catalog: &Catalog, a: &Rendered, b: &Rendered) -> Verdict {
    // 1. Sources, positionally in canonical order. A count mismatch between
    //    base-only FROM lists is conclusive under bag semantics, but once a
    //    derived sub-block is involved the block boundary itself is a
    //    normalization artifact, so the same mismatch is only inconclusive.
    if a.sources.len() != b.sources.len() {
        let any_derived = a
            .sources
            .iter()
            .chain(&b.sources)
            .any(|s| matches!(s, RSource::Derived(..)));
        if any_derived {
            return Verdict::Unknown {
                reason: format!(
                    "blocks nest differently: {} vs {} sources with derived sub-blocks",
                    a.sources.len(),
                    b.sources.len()
                ),
            };
        }
        return Verdict::Refuted {
            witness: format!(
                "source count differs: {} vs {} relations",
                a.sources.len(),
                b.sources.len()
            ),
        };
    }
    let derived_pairs: Vec<(&Block, &Block)> = {
        let mut pairs = Vec::new();
        for (i, (sa, sb)) in a.sources.iter().zip(&b.sources).enumerate() {
            match (sa, sb) {
                (RSource::Base(ta), RSource::Base(tb)) => {
                    if ta != tb {
                        return Verdict::Refuted {
                            witness: format!("source {i} scans `{ta}` vs `{tb}`"),
                        };
                    }
                }
                (RSource::Derived(ka, ba), RSource::Derived(kb, bb)) => {
                    if ka != kb {
                        pairs.push((ba, bb));
                    }
                }
                _ => {
                    return Verdict::Refuted {
                        witness: format!("source {i} is a base scan on one side only"),
                    }
                }
            }
        }
        pairs
    };
    // Derived sub-blocks whose keys differ get a recursive semantic
    // comparison. With several of them the positional pairing itself is
    // ambiguous, so a failed recursion is only conclusive when unique.
    let ambiguous = derived_pairs.len() > 1;
    for (ba, bb) in derived_pairs {
        match compare_blocks(catalog, ba, bb) {
            Verdict::Proved => {}
            Verdict::Refuted { witness } if !ambiguous => {
                return Verdict::Refuted {
                    witness: format!("nested aggregate differs: {witness}"),
                }
            }
            Verdict::Refuted { .. } | Verdict::Unknown { .. } => {
                return Verdict::Unknown {
                    reason: "nested aggregate sub-blocks differ".into(),
                }
            }
        }
    }

    // 2. Join equivalence classes.
    if a.classes != b.classes {
        let only = |x: &Rendered, y: &Rendered| -> Vec<String> {
            x.classes
                .iter()
                .filter(|c| !y.classes.contains(c))
                .map(|c| c.join("~"))
                .collect()
        };
        return Verdict::Refuted {
            witness: format!(
                "join equivalence classes differ: only original {:?}, only rewritten {:?}",
                only(a, b),
                only(b, a)
            ),
        };
    }

    // 3. Predicate domains per class root.
    let roots: Vec<&String> = a
        .domains
        .iter()
        .map(|(r, _)| r)
        .chain(b.domains.iter().map(|(r, _)| r))
        .collect();
    let empty = Domain::default();
    for root in roots {
        let da = a
            .domains
            .iter()
            .find(|(r, _)| r == root)
            .map(|(_, d)| d)
            .unwrap_or(&empty);
        let db = b
            .domains
            .iter()
            .find(|(r, _)| r == root)
            .map(|(_, d)| d)
            .unwrap_or(&empty);
        let ty = a
            .class_types
            .get(root)
            .or_else(|| b.class_types.get(root))
            .copied()
            .flatten();
        match compare_domains(da, db, ty) {
            Ok(true) => {}
            Ok(false) => {
                return Verdict::Unknown {
                    reason: format!(
                        "predicate domains on {root} differ without a separating value"
                    ),
                }
            }
            Err(witness) => {
                return Verdict::Refuted {
                    witness: format!(
                        "predicate on {root}: value {witness} satisfies one side only \
                         (original {}, rewritten {})",
                        da.render(),
                        db.render()
                    ),
                }
            }
        }
    }

    // 4. Opaque atoms: syntactic multiset equality only — a difference here
    //    could still be semantically equal, so it is never a refutation.
    if a.opaques != b.opaques {
        return Verdict::Unknown {
            reason: format!(
                "opaque predicate atoms differ: {:?} vs {:?}",
                a.opaques, b.opaques
            ),
        };
    }

    // 5. Aggregate signature.
    match (&a.agg, &b.agg) {
        (None, None) => {}
        (Some(_), None) | (None, Some(_)) => {
            return Verdict::Refuted {
                witness: "aggregate present on one side only".into(),
            }
        }
        (Some((gba, aggsa)), Some((gbb, aggsb))) => {
            if gba.len() != gbb.len() || aggsa.len() != aggsb.len() {
                return Verdict::Refuted {
                    witness: "aggregate arity differs".into(),
                };
            }
            for (i, ((na, ea), (nb, eb))) in gba.iter().zip(gbb).enumerate() {
                if na != nb {
                    return Verdict::Refuted {
                        witness: format!("group-by column {i} named `{na}` vs `{nb}`"),
                    };
                }
                match cmp_rexpr(ea, eb) {
                    ExprCmp::Equal => {}
                    ExprCmp::DifferentColumns => {
                        return Verdict::Refuted {
                            witness: format!(
                                "group-by column {i} (`{na}`) groups different equivalence classes"
                            ),
                        }
                    }
                    ExprCmp::Undecided => {
                        return Verdict::Unknown {
                            reason: format!("group-by expression {i} differs non-trivially"),
                        }
                    }
                }
            }
            for (i, ((fa, ia, oa), (fb, ib, ob))) in aggsa.iter().zip(aggsb).enumerate() {
                if fa != fb {
                    return Verdict::Refuted {
                        witness: format!(
                            "aggregate {i} applies {} vs {}",
                            fa.keyword(),
                            fb.keyword()
                        ),
                    };
                }
                if oa != ob {
                    return Verdict::Refuted {
                        witness: format!("aggregate {i} named `{oa}` vs `{ob}`"),
                    };
                }
                match (ia, ib) {
                    (None, None) => {}
                    (Some(_), None) | (None, Some(_)) => {
                        return Verdict::Refuted {
                            witness: format!(
                                "aggregate {i} ({}) counts rows on one side and a column \
                                 on the other (NULLs count differently)",
                                fa.keyword()
                            ),
                        }
                    }
                    (Some(ea), Some(eb)) => match cmp_rexpr(ea, eb) {
                        ExprCmp::Equal => {}
                        ExprCmp::DifferentColumns => {
                            return Verdict::Refuted {
                                witness: format!(
                                    "aggregate {i} ({}) reads different equivalence classes",
                                    fa.keyword()
                                ),
                            }
                        }
                        ExprCmp::Undecided => {
                            return Verdict::Unknown {
                                reason: format!("aggregate {i} input differs non-trivially"),
                            }
                        }
                    },
                }
            }
        }
    }

    // 6. Positional outputs (SPJ blocks; aggregate outputs were compared
    //    above as part of the signature).
    if a.agg.is_none() {
        if a.outputs.len() != b.outputs.len() {
            return Verdict::Refuted {
                witness: format!(
                    "output arity differs: {} vs {} columns",
                    a.outputs.len(),
                    b.outputs.len()
                ),
            };
        }
        for (i, ((na, ea), (nb, eb))) in a.outputs.iter().zip(&b.outputs).enumerate() {
            if na != nb {
                return Verdict::Refuted {
                    witness: format!("output column {i} named `{na}` vs `{nb}`"),
                };
            }
            match cmp_rexpr(ea, eb) {
                ExprCmp::Equal => {}
                ExprCmp::DifferentColumns => {
                    return Verdict::Refuted {
                        witness: format!(
                            "output column {i} (`{na}`) draws from different equivalence classes"
                        ),
                    }
                }
                ExprCmp::Undecided => {
                    return Verdict::Unknown {
                        reason: format!("output expression {i} (`{na}`) differs non-trivially"),
                    }
                }
            }
        }
    }

    Verdict::Proved
}

enum ExprCmp {
    Equal,
    /// Two plain columns from different classes: provably different values
    /// on some instance.
    DifferentColumns,
    /// At least one side is computed; a syntactic difference proves nothing.
    Undecided,
}

fn cmp_rexpr(a: &RExpr, b: &RExpr) -> ExprCmp {
    match (a, b) {
        (RExpr::Col(x), RExpr::Col(y)) => {
            if x == y {
                ExprCmp::Equal
            } else {
                ExprCmp::DifferentColumns
            }
        }
        (RExpr::Other(x), RExpr::Other(y)) if x == y => ExprCmp::Equal,
        _ => ExprCmp::Undecided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_engine::{Catalog, Column, Pricing, Table, ViewStore};
    use av_plan::{AggExpr, Expr, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "users",
                vec![
                    ("id", Column::Int((0..20).collect())),
                    ("score", Column::Float((0..20).map(|i| i as f64).collect())),
                    ("name", Column::str((0..20).map(|i| format!("u{i}")).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c.add_table(
            Table::new(
                "acts",
                vec![
                    ("uid", Column::Int((0..30).map(|i| i % 20).collect())),
                    ("kind", Column::str((0..30).map(|i| format!("k{}", i % 3)).collect())),
                    ("n", Column::Int((0..30).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c
    }

    fn no_views(_: &str) -> Option<PlanRef> {
        None
    }

    fn prove(cat: &Catalog, a: &PlanRef, b: &PlanRef) -> Verdict {
        prove_rewrite(cat, a, b, &no_views)
    }

    #[test]
    fn identical_plans_prove() {
        let cat = catalog();
        let p = PlanBuilder::scan("users", "u")
            .filter(Expr::col("u.id").cmp(CmpOp::Lt, Expr::int(5)))
            .build();
        assert_eq!(prove(&cat, &p, &p.clone()), Verdict::Proved);
    }

    #[test]
    fn alias_renames_prove() {
        let cat = catalog();
        let mk = |alias: &str| {
            PlanBuilder::scan("users", alias)
                .filter(Expr::col(format!("{alias}.id")).eq(Expr::int(3)))
                .project(&[(format!("{alias}.name").as_str(), "u.name")])
                .build()
        };
        // Different aliases AND different output names → not the fast path,
        // but the block form ignores aliases... output names still differ,
        // so rename one side's projection to match.
        let a = mk("u");
        let b = PlanBuilder::scan("users", "w")
            .filter(Expr::col("w.id").eq(Expr::int(3)))
            .project(&[("w.name", "u.name")])
            .build();
        assert_eq!(prove(&cat, &a, &b), Verdict::Proved);
    }

    #[test]
    fn predicate_literal_change_refuted() {
        let cat = catalog();
        let mk = |lit: i64| {
            PlanBuilder::scan("users", "u")
                .filter(Expr::col("u.id").eq(Expr::int(lit)))
                .build()
        };
        let v = prove(&cat, &mk(3), &mk(4));
        assert!(v.is_refuted(), "got {v}");
    }

    #[test]
    fn strict_vs_nonstrict_bound_refuted() {
        let cat = catalog();
        let mk = |op: CmpOp| {
            PlanBuilder::scan("users", "u")
                .filter(Expr::col("u.id").cmp(op, Expr::int(5)))
                .build()
        };
        let v = prove(&cat, &mk(CmpOp::Lt), &mk(CmpOp::Le));
        assert!(v.is_refuted(), "got {v}");
    }

    #[test]
    fn int_closure_unifies_equal_bounds() {
        // id < 5 on an Int column ⇔ id ≤ 4.
        let cat = catalog();
        let a = PlanBuilder::scan("users", "u")
            .filter(Expr::col("u.id").cmp(CmpOp::Lt, Expr::int(5)))
            .build();
        let b = PlanBuilder::scan("users", "u")
            .filter(Expr::col("u.id").cmp(CmpOp::Le, Expr::int(4)))
            .build();
        assert_eq!(prove(&cat, &a, &b), Verdict::Proved);
    }

    #[test]
    fn float_bound_gap_refuted() {
        // score > 5 vs score ≥ 6 admit different floats (e.g. 5.5).
        let cat = catalog();
        let a = PlanBuilder::scan("users", "u")
            .filter(Expr::col("u.score").cmp(CmpOp::Gt, Expr::int(5)))
            .build();
        let b = PlanBuilder::scan("users", "u")
            .filter(Expr::col("u.score").cmp(CmpOp::Ge, Expr::int(6)))
            .build();
        let v = prove(&cat, &a, &b);
        assert!(v.is_refuted(), "got {v}");
    }

    #[test]
    fn dropped_join_edge_refuted() {
        let cat = catalog();
        let mk = |on: &[(&str, &str)]| {
            PlanBuilder::scan("users", "u")
                .join(PlanBuilder::scan("acts", "a"), on)
                .build()
        };
        let a = mk(&[("u.id", "a.uid")]);
        let b = mk(&[("u.id", "a.n")]);
        let v = prove(&cat, &a, &b);
        assert!(v.is_refuted(), "got {v}");
    }

    #[test]
    fn swapped_aggregate_refuted() {
        let cat = catalog();
        let mk = |func: AggFunc| {
            PlanBuilder::scan("acts", "a")
                .aggregate(
                    &["a.kind"],
                    vec![AggExpr {
                        func,
                        input: Some("a.n".into()),
                        output: "x".into(),
                    }],
                )
                .build()
        };
        let v = prove(&cat, &mk(AggFunc::Min), &mk(AggFunc::Max));
        assert!(v.is_refuted(), "got {v}");
    }

    #[test]
    fn differing_disjunction_is_unknown_not_refuted() {
        let cat = catalog();
        let mk = |k: &str| {
            PlanBuilder::scan("acts", "a")
                .filter(Expr::Or(vec![
                    Expr::col("a.kind").eq(Expr::str(k)),
                    Expr::col("a.n").eq(Expr::int(1)),
                ]))
                .build()
        };
        let v = prove(&cat, &mk("k1"), &mk("k2"));
        assert!(
            matches!(v, Verdict::Unknown { .. }),
            "opaque differences must not refute, got {v}"
        );
    }

    #[test]
    fn unresolvable_view_scan_is_unknown() {
        let cat = catalog();
        let orig = PlanBuilder::scan("users", "u").build();
        let reww = PlanNode::TableScan {
            table: "__view_0".into(),
            alias: String::new(),
        }
        .into_ref();
        let v = prove(&cat, &orig, &reww);
        assert!(matches!(v, Verdict::Unknown { .. }), "got {v}");
    }

    #[test]
    fn real_view_rewrite_proves_through_resolver() {
        let mut cat = catalog();
        let mut store = ViewStore::new();
        let sub = PlanBuilder::scan("acts", "a")
            .filter(Expr::col("a.kind").eq(Expr::str("k1")))
            .project(&[("a.uid", "a.uid"), ("a.kind", "a.kind")])
            .build();
        let query = PlanBuilder::from_plan(sub.clone())
            .count_star(&["a.kind"], "cnt")
            .build();
        store
            .materialize(&mut cat, sub, Pricing::paper_defaults())
            .expect("materializes");
        let view = &store.views()[0];
        let (rewritten, n) = av_engine::rewrite_with_view(&query, view);
        assert_eq!(n, 1);
        let defs = |t: &str| {
            store
                .views()
                .iter()
                .find(|v| v.table_name == t)
                .map(|v| v.plan.clone())
        };
        assert_eq!(
            prove_rewrite(&cat, &query, &rewritten, &defs),
            Verdict::Proved
        );
    }

    #[test]
    fn cross_alias_rename_project_proves() {
        // The view was defined under alias `z`; the rewrite splices a
        // positional rename Project mapping the view's columns back to the
        // query's `a.*` names — the case whole-plan canonical fingerprints
        // cannot handle.
        let mut cat = catalog();
        let mut store = ViewStore::new();
        let view_def = PlanBuilder::scan("acts", "z")
            .filter(Expr::col("z.kind").eq(Expr::str("k1")))
            .project(&[("z.uid", "z.uid"), ("z.kind", "z.kind")])
            .build();
        store
            .materialize(&mut cat, view_def, Pricing::paper_defaults())
            .expect("materializes");
        let view = &store.views()[0];

        let sub = PlanBuilder::scan("acts", "a")
            .filter(Expr::col("a.kind").eq(Expr::str("k1")))
            .project(&[("a.uid", "a.uid"), ("a.kind", "a.kind")])
            .build();
        let query = PlanBuilder::from_plan(sub.clone())
            .count_star(&["a.kind"], "cnt")
            .build();
        let subtree_cols = vec!["a.uid".to_string(), "a.kind".to_string()];
        let view_cols = cat
            .table(&view.table_name)
            .expect("stored")
            .column_names
            .clone();
        let (rewritten, n) = av_engine::rewrite_subtree_with_view(
            &query,
            Fingerprint::of(&sub),
            view,
            &subtree_cols,
            &view_cols,
        );
        assert_eq!(n, 1);
        let defs = |t: &str| {
            store
                .views()
                .iter()
                .find(|v| v.table_name == t)
                .map(|v| v.plan.clone())
        };
        assert_eq!(
            prove_rewrite(&cat, &query, &rewritten, &defs),
            Verdict::Proved
        );
    }

    #[test]
    fn whole_query_aggregate_rewrite_proves() {
        // The matched subtree is the entire query, so the rewrite is a
        // rename-only Project over the view scan. After inlining, the
        // original normalizes as a root aggregate block while the rewrite
        // wraps the same aggregate in a derived source; collapse_trivial
        // must unify the two shapes. Regression: this pair used to come
        // back `Refuted { "source count differs: 2 vs 1 relations" }`.
        let mut cat = catalog();
        let mut store = ViewStore::new();
        let view_def = PlanBuilder::scan("users", "w")
            .join(PlanBuilder::scan("acts", "z"), &[("w.id", "z.uid")])
            .aggregate(
                &["z.kind"],
                vec![AggExpr {
                    func: AggFunc::Sum,
                    input: Some("z.n".into()),
                    output: "total".into(),
                }],
            )
            .build();
        store
            .materialize(&mut cat, view_def, Pricing::paper_defaults())
            .expect("materializes");
        let view = &store.views()[0];

        let query = PlanBuilder::scan("users", "u")
            .join(PlanBuilder::scan("acts", "a"), &[("u.id", "a.uid")])
            .aggregate(
                &["a.kind"],
                vec![AggExpr {
                    func: AggFunc::Sum,
                    input: Some("a.n".into()),
                    output: "total".into(),
                }],
            )
            .build();
        let subtree_cols = vec!["a.kind".to_string(), "total".to_string()];
        let view_cols = cat
            .table(&view.table_name)
            .expect("stored")
            .column_names
            .clone();
        let (rewritten, n) = av_engine::rewrite_subtree_with_view(
            &query,
            Fingerprint::of(&query),
            view,
            &subtree_cols,
            &view_cols,
        );
        assert_eq!(n, 1);
        let defs = |t: &str| {
            store
                .views()
                .iter()
                .find(|v| v.table_name == t)
                .map(|v| v.plan.clone())
        };
        assert_eq!(
            prove_rewrite(&cat, &query, &rewritten, &defs),
            Verdict::Proved
        );
    }

    #[test]
    fn constant_pinned_classes_unify() {
        // u.id = 3 ∧ a.uid = 3 is the same constraint set with or without
        // the redundant join edge u.id = a.uid.
        let cat = catalog();
        let base = || {
            PlanBuilder::scan("users", "u")
                .join(PlanBuilder::scan("acts", "a"), &[("u.id", "a.uid")])
                .filter(
                    Expr::col("u.id")
                        .eq(Expr::int(3))
                        .and(Expr::col("a.uid").eq(Expr::int(3))),
                )
                .build()
        };
        // Both sides share the join; one adds a redundant u.id = a.uid
        // filter atom that constant saturation must absorb.
        let a = base();
        let b = PlanBuilder::from_plan(base())
            .filter(Expr::col("u.id").eq(Expr::col("a.uid")))
            .build();
        assert_eq!(prove(&cat, &a, &b), Verdict::Proved);
    }
}
