//! Mutation suite for the semantic rewrite prover (ISSUE 8 satellite).
//!
//! Builds every view rewrite the equivalence analyzer induces over the
//! 226-query JOB workload, then checks two properties:
//!
//! 1. **Soundness on the real rewrites** — ≥95% statically `Proved`,
//!    the remainder `Unknown`, and none `Refuted` (the acceptance bar
//!    from ISSUE 8).
//! 2. **Sensitivity under mutation** — systematically perturbing the
//!    rewritten side (literal shifts, strict/non-strict bound swaps,
//!    dropped join edges, swapped aggregate functions) must never yield
//!    `Proved`. A mutant may be `Refuted` or `Unknown`, but a prover
//!    that blesses a semantically different plan is broken.

use av_analyze::{prove_rewrite, Verdict};
use av_engine::{rewrite_subtree_with_view, Catalog, Pricing, ViewStore};
use av_plan::{AggExpr, CmpOp, Expr, Fingerprint, JoinType, PlanNode, PlanRef, Value};
use std::sync::Arc;

fn find_subtree(plan: &PlanRef, fp: Fingerprint) -> Option<PlanRef> {
    if Fingerprint::of(plan) == fp {
        return Some(plan.clone());
    }
    plan.children().iter().find_map(|c| find_subtree(c, fp))
}

/// Every (original, rewritten) pair the analyzer induces on JOB, plus the
/// view store needed to resolve `__view_N` scans.
fn job_rewrites() -> (Catalog, ViewStore, Vec<(PlanRef, PlanRef)>) {
    let w = av_workload::job::job_workload(0.01, 7);
    let mut catalog: Catalog = w.catalog.clone();
    let plans = w.plans();
    assert_eq!(plans.len(), 226, "JOB workload should have 226 queries");

    let analysis = av_equiv::analyze_workload(&plans);
    let mut views = ViewStore::new();
    for cand in &analysis.candidates {
        views
            .materialize(&mut catalog, cand.plan.clone(), Pricing::paper_defaults())
            .expect("candidate materializes");
    }

    let mut pairs = Vec::new();
    for (i, matches) in analysis.query_matches.iter().enumerate() {
        for m in matches {
            let Some(view) = views.view(av_engine::ViewId(m.candidate)) else {
                continue;
            };
            let Some(subtree) = find_subtree(&plans[i], m.subtree_fp) else {
                continue;
            };
            let cat_cols = |t: &str| catalog.table_columns(t);
            let subtree_cols = subtree.output_columns(&cat_cols);
            let Some(view_cols) = catalog.table(&view.table_name).map(|t| t.column_names.clone())
            else {
                continue;
            };
            if subtree_cols.len() != view_cols.len() {
                continue;
            }
            let (rewritten, n) = rewrite_subtree_with_view(
                &plans[i],
                m.subtree_fp,
                view,
                &subtree_cols,
                &view_cols,
            );
            if n == 0 {
                continue;
            }
            pairs.push((plans[i].clone(), rewritten));
        }
    }
    (catalog, views, pairs)
}

fn resolver(views: &ViewStore) -> impl Fn(&str) -> Option<PlanRef> + '_ {
    move |t: &str| {
        views
            .views()
            .iter()
            .find(|v| v.table_name == t)
            .map(|v| v.plan.clone())
    }
}

// ---------------------------------------------------------------------------
// Mutators: rewrite the plan tree, returning None when the mutation point
// does not occur in this plan.
// ---------------------------------------------------------------------------

/// Apply `f` to every node (bottom-up rebuild); `hit` records whether any
/// node was actually changed.
fn map_plan(plan: &PlanRef, f: &dyn Fn(PlanNode) -> PlanNode) -> PlanRef {
    let node = match plan.as_ref() {
        PlanNode::TableScan { table, alias } => PlanNode::TableScan {
            table: table.clone(),
            alias: alias.clone(),
        },
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: map_plan(input, f),
            predicate: predicate.clone(),
        },
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: map_plan(input, f),
            exprs: exprs.clone(),
        },
        PlanNode::Join {
            left,
            right,
            on,
            join_type,
        } => PlanNode::Join {
            left: map_plan(left, f),
            right: map_plan(right, f),
            on: on.clone(),
            join_type: *join_type,
        },
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            input: map_plan(input, f),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
    };
    Arc::new(f(node))
}

fn map_expr(e: &Expr, f: &dyn Fn(&Expr) -> Option<Expr>) -> Expr {
    if let Some(replaced) = f(e) {
        return replaced;
    }
    match e {
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: Box::new(map_expr(left, f)),
            right: Box::new(map_expr(right, f)),
        },
        Expr::And(parts) => Expr::And(parts.iter().map(|p| map_expr(p, f)).collect()),
        Expr::Or(parts) => Expr::Or(parts.iter().map(|p| map_expr(p, f)).collect()),
        Expr::Not(inner) => Expr::Not(Box::new(map_expr(inner, f))),
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(map_expr(left, f)),
            right: Box::new(map_expr(right, f)),
        },
        other => other.clone(),
    }
}

fn mutate_predicates(plan: &PlanRef, f: &dyn Fn(&Expr) -> Option<Expr>) -> PlanRef {
    map_plan(plan, &|node| match node {
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input,
            predicate: map_expr(&predicate, f),
        },
        other => other,
    })
}

/// Shift the first integer literal in a comparison by +1 (weaken/strengthen
/// depending on the operator — either way, a different predicate).
fn mutate_literal(plan: &PlanRef) -> Option<PlanRef> {
    let hit = std::cell::Cell::new(false);
    let out = mutate_predicates(plan, &|e| match e {
        Expr::Cmp { op, left, right } if !hit.get() => match right.as_ref() {
            Expr::Literal(Value::Int(n)) => {
                hit.set(true);
                Some(Expr::Cmp {
                    op: *op,
                    left: left.clone(),
                    right: Box::new(Expr::Literal(Value::Int(n + 1))),
                })
            }
            _ => None,
        },
        _ => None,
    });
    hit.get().then_some(out)
}

/// Swap the first strict bound for its non-strict twin (`<` → `<=`).
fn mutate_bound(plan: &PlanRef) -> Option<PlanRef> {
    let hit = std::cell::Cell::new(false);
    let out = mutate_predicates(plan, &|e| match e {
        Expr::Cmp { op, left, right } if !hit.get() => {
            let flipped = match op {
                CmpOp::Lt => Some(CmpOp::Le),
                CmpOp::Gt => Some(CmpOp::Ge),
                _ => None,
            }?;
            hit.set(true);
            Some(Expr::Cmp {
                op: flipped,
                left: left.clone(),
                right: right.clone(),
            })
        }
        _ => None,
    });
    hit.get().then_some(out)
}

/// Drop the first join's equality conditions entirely (cross join).
fn mutate_drop_join_edge(plan: &PlanRef) -> Option<PlanRef> {
    let hit = std::cell::Cell::new(false);
    let out = map_plan(plan, &|node| match node {
        PlanNode::Join {
            left,
            right,
            on,
            join_type: JoinType::Inner,
        } if !hit.get() && !on.is_empty() => {
            hit.set(true);
            PlanNode::Join {
                left,
                right,
                on: Vec::new(),
                join_type: JoinType::Inner,
            }
        }
        other => other,
    });
    hit.get().then_some(out)
}

/// Swap the first aggregate function (Min↔Max, Sum→Count, Count→Sum...).
fn mutate_agg(plan: &PlanRef) -> Option<PlanRef> {
    use av_plan::AggFunc;
    let hit = std::cell::Cell::new(false);
    let out = map_plan(plan, &|node| match node {
        PlanNode::Aggregate {
            input,
            group_by,
            mut aggs,
        } if !hit.get() && !aggs.is_empty() => {
            hit.set(true);
            let AggExpr { func, input: ai, output } = aggs[0].clone();
            let swapped = match func {
                AggFunc::Min => AggFunc::Max,
                AggFunc::Max => AggFunc::Min,
                AggFunc::Sum => AggFunc::Avg,
                AggFunc::Avg => AggFunc::Sum,
                AggFunc::Count => AggFunc::Min,
            };
            aggs[0] = AggExpr {
                func: swapped,
                input: ai,
                output,
            };
            PlanNode::Aggregate {
                input,
                group_by,
                aggs,
            }
        }
        other => other,
    });
    hit.get().then_some(out)
}

// ---------------------------------------------------------------------------
// The suite.
// ---------------------------------------------------------------------------

#[test]
fn job_rewrites_prove_statically() {
    let (catalog, views, pairs) = job_rewrites();
    assert!(!pairs.is_empty(), "JOB should induce view rewrites");
    let resolve = resolver(&views);

    let (mut proved, mut unknown, mut refuted) = (0usize, 0usize, 0usize);
    for (orig, rewritten) in &pairs {
        match prove_rewrite(&catalog, orig, rewritten, &resolve) {
            Verdict::Proved => proved += 1,
            Verdict::Unknown { .. } => unknown += 1,
            Verdict::Refuted { witness } => {
                refuted += 1;
                eprintln!("REFUTED real rewrite: {witness}");
            }
        }
    }
    let total = pairs.len();
    eprintln!("job rewrites: {proved} proved / {unknown} unknown / {refuted} refuted of {total}");
    assert_eq!(refuted, 0, "a real rewrite must never be refuted");
    assert!(
        proved * 100 >= total * 95,
        "expected ≥95% proved, got {proved}/{total}"
    );
}

#[test]
fn mutants_are_never_proved() {
    let (catalog, views, pairs) = job_rewrites();
    let resolve = resolver(&views);

    type Mutator<'a> = &'a dyn Fn(&PlanRef) -> Option<PlanRef>;
    let mutators: &[(&str, Mutator)] = &[
        ("literal+1", &mutate_literal),
        ("strict→nonstrict", &mutate_bound),
        ("drop-join-edge", &mutate_drop_join_edge),
        ("swap-agg", &mutate_agg),
    ];

    let mut mutants = 0usize;
    let mut rejected = 0usize;
    for (orig, rewritten) in &pairs {
        for (name, m) in mutators {
            let Some(mutant) = m(rewritten) else { continue };
            mutants += 1;
            match prove_rewrite(&catalog, orig, &mutant, &resolve) {
                Verdict::Proved => {
                    panic!("mutant `{name}` was PROVED — prover is unsound")
                }
                Verdict::Refuted { .. } | Verdict::Unknown { .. } => rejected += 1,
            }
        }
    }
    eprintln!("mutants: {rejected}/{mutants} rejected");
    assert!(mutants > 0, "mutators should apply to some rewrites");
    assert_eq!(mutants, rejected);
}

#[test]
fn mutants_on_originals_are_never_proved() {
    // Mutating the *original* (so the rewritten side claims more than the
    // query asks) must equally never be blessed in the other direction:
    // prove_rewrite(original_mutant, rewritten) — the rewritten plan now
    // disagrees with the query it claims to implement.
    let (catalog, views, pairs) = job_rewrites();
    let resolve = resolver(&views);

    let mut mutants = 0usize;
    for (orig, rewritten) in pairs.iter().take(50) {
        let Some(mutant) = mutate_literal(orig) else {
            continue;
        };
        mutants += 1;
        if prove_rewrite(&catalog, &mutant, rewritten, &resolve) == Verdict::Proved {
            panic!("original-side mutant was PROVED");
        }
    }
    assert!(mutants > 0);
}
