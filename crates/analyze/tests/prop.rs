//! Property tests for the plan verifier:
//!
//! (a) every plan the builder can produce over a known catalog verifies,
//!     and the inferred schema agrees exactly (names and types) with what
//!     the executor actually returns;
//! (b) mutation-corrupted plans — renamed column, swapped literal type,
//!     dropped join key — are rejected with the right diagnostic;
//! (c) the full JOB workload, its candidates, and every rewrite they
//!     produce verify clean.

use av_analyze::{verify_plan, verify_rewrite};
use av_engine::{
    rewrite_subtree_with_view, Catalog, Column, ColumnType, Executor, Pricing, Table, ViewStore,
};
use av_plan::{AggExpr, AggFunc, CmpOp, Expr, Fingerprint, PlanBuilder, PlanRef};
use proptest::prelude::*;

/// `ta(k Int, v Int, s Str)` and `tb(k Int, w Float)`, with enough rows to
/// exercise joins.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        Table::new(
            "ta",
            vec![
                ("k", Column::Int((0..24).map(|i| i % 6).collect())),
                ("v", Column::Int((0..24).map(|i| i * 3 - 7).collect())),
                ("s", Column::str((0..24).map(|i| format!("s{}", i % 4)).collect())),
            ],
        )
        .expect("rectangular"),
    )
    .expect("fresh");
    c.add_table(
        Table::new(
            "tb",
            vec![
                ("k", Column::Int((0..18).map(|i| i % 6).collect())),
                ("w", Column::Float((0..18).map(|i| i as f64 / 2.0).collect())),
            ],
        )
        .expect("rectangular"),
    )
    .expect("fresh");
    c
}

/// A random well-typed plan: scan → optional filter → optional join →
/// optional aggregate. Always valid by construction.
fn valid_plan(threshold: i64, with_filter: bool, with_join: bool, agg: u8) -> PlanRef {
    let mut b = PlanBuilder::scan("ta", "a");
    if with_filter {
        b = b.filter(Expr::col("a.v").cmp(CmpOp::Gt, Expr::int(threshold)));
    }
    if with_join {
        b = b.join(PlanBuilder::scan("tb", "b"), &[("a.k", "b.k")]);
    }
    match agg % 3 {
        0 => b.build(),
        1 => b.count_star(&["a.s"], "n").build(),
        _ => b
            .aggregate(
                &["a.k"],
                vec![AggExpr {
                    func: AggFunc::Sum,
                    input: Some("a.v".into()),
                    output: "sv".into(),
                }],
            )
            .build(),
    }
}

fn column_type(c: &Column) -> ColumnType {
    match c {
        Column::Int(_) => ColumnType::Int,
        Column::Float(_) => ColumnType::Float,
        Column::Str(_) => ColumnType::Str,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a) Builder plans verify, and the inferred schema is exactly the
    /// executed batch's column names and types.
    #[test]
    fn builder_plans_verify_and_schema_matches_execution(
        threshold in -10i64..80,
        with_filter in any::<bool>(),
        with_join in any::<bool>(),
        agg in 0u8..3,
    ) {
        let cat = catalog();
        let plan = valid_plan(threshold, with_filter, with_join, agg);
        let schema = verify_plan(&cat, &plan).expect("builder plan verifies");
        let result = Executor::new(&cat, Pricing::paper_defaults())
            .run(&plan)
            .expect("verified plan executes");
        let names: Vec<&str> = schema.iter().map(|(n, _)| n.as_str()).collect();
        let got: Vec<&str> = result.batch.names.iter().map(String::as_str).collect();
        prop_assert_eq!(names, got, "schema names must match execution");
        for ((name, ty), col) in schema.iter().zip(&result.batch.columns) {
            prop_assert_eq!(
                *ty,
                column_type(col),
                "column {} type must match execution", name
            );
        }
    }

    /// (b1) Renaming a referenced column makes the plan fail with
    /// `unbound-column`, and the diagnostic names the missing column.
    #[test]
    fn renamed_column_is_rejected(
        threshold in -10i64..80,
        with_join in any::<bool>(),
    ) {
        let cat = catalog();
        let mut b = PlanBuilder::scan("ta", "a")
            .filter(Expr::col("a.bogus").cmp(CmpOp::Gt, Expr::int(threshold)));
        if with_join {
            b = b.join(PlanBuilder::scan("tb", "b"), &[("a.k", "b.k")]);
        }
        let err = verify_plan(&cat, &b.build()).expect_err("must reject");
        prop_assert_eq!(err.code(), "unbound-column");
        prop_assert!(err.to_string().contains("a.bogus"));
    }

    /// (b2) Swapping an int literal for a string literal in a numeric
    /// comparison fails with `type-mismatch`.
    #[test]
    fn swapped_literal_type_is_rejected(s in "[a-z]{1,6}") {
        let cat = catalog();
        let plan = PlanBuilder::scan("ta", "a")
            .filter(Expr::col("a.v").cmp(CmpOp::Gt, Expr::str(&s)))
            .build();
        let err = verify_plan(&cat, &plan).expect_err("must reject");
        prop_assert_eq!(err.code(), "type-mismatch");
    }

    /// (b3) A join key that does not exist on the right side fails with
    /// `unbound-column`; a key of the wrong type fails with
    /// `type-mismatch`.
    #[test]
    fn bad_join_keys_are_rejected(drop_key in any::<bool>()) {
        let cat = catalog();
        let right_key = if drop_key { "b.gone" } else { "b.w" };
        let left = if drop_key { "a.k" } else { "a.s" };
        let plan = PlanBuilder::scan("ta", "a")
            .join(PlanBuilder::scan("tb", "b"), &[(left, right_key)])
            .build();
        let err = verify_plan(&cat, &plan).expect_err("must reject");
        let want = if drop_key { "unbound-column" } else { "type-mismatch" };
        prop_assert_eq!(err.code(), want);
    }

    /// The verifier is sound w.r.t. the engine on corrupted plans too:
    /// whenever verification rejects a mutated plan, the engine either
    /// errors or (for type confusions it tolerates via runtime coercion
    /// rules) still runs — but a verifier *pass* always implies the engine
    /// runs cleanly.
    #[test]
    fn verifier_pass_implies_engine_runs(
        threshold in -10i64..80,
        with_filter in any::<bool>(),
        with_join in any::<bool>(),
        agg in 0u8..3,
    ) {
        let cat = catalog();
        let plan = valid_plan(threshold, with_filter, with_join, agg);
        if verify_plan(&cat, &plan).is_ok() {
            prop_assert!(
                Executor::new(&cat, Pricing::paper_defaults()).run(&plan).is_ok(),
                "verified plans must execute"
            );
        }
    }
}

fn find_subtree(plan: &PlanRef, fp: Fingerprint) -> Option<PlanRef> {
    if Fingerprint::of(plan) == fp {
        return Some(plan.clone());
    }
    plan.children().iter().find_map(|c| find_subtree(c, fp))
}

/// (c) Full JOB workload: all queries, all candidates, and every rewrite
/// verify clean. Mirrors the `av-analyze` binary at a smaller scale.
#[test]
fn job_workload_and_rewrites_verify_clean() {
    let w = av_workload::job::job_workload(0.02, 7);
    let mut cat = w.catalog.clone();
    let plans = w.plans();
    assert_eq!(plans.len(), 226, "JOB has 113 templates × 2");

    for (i, p) in plans.iter().enumerate() {
        let schema = verify_plan(&cat, p).unwrap_or_else(|e| panic!("query {i}: {e}"));
        assert!(!schema.is_empty());
    }

    let analysis = av_equiv::analyze_workload(&plans);
    assert!(!analysis.candidates.is_empty());
    for cand in &analysis.candidates {
        verify_plan(&cat, &cand.plan).unwrap_or_else(|e| panic!("candidate {}: {e}", cand.id));
    }

    let mut views = ViewStore::new();
    for cand in &analysis.candidates {
        views
            .materialize(&mut cat, cand.plan.clone(), Pricing::paper_defaults())
            .unwrap_or_else(|e| panic!("candidate {} materializes: {e}", cand.id));
    }
    let mut rewrites = 0usize;
    for (i, matches) in analysis.query_matches.iter().enumerate() {
        for m in matches {
            let Some(view) = views.view(av_engine::ViewId(m.candidate)) else {
                continue;
            };
            let Some(subtree) = find_subtree(&plans[i], m.subtree_fp) else {
                continue;
            };
            let cat_cols = |t: &str| cat.table_columns(t);
            let subtree_cols = subtree.output_columns(&cat_cols);
            let view_cols = cat
                .table(&view.table_name)
                .map(|t| t.column_names.clone())
                .expect("view table registered");
            if subtree_cols.len() != view_cols.len() {
                continue;
            }
            let (rewritten, n) =
                rewrite_subtree_with_view(&plans[i], m.subtree_fp, view, &subtree_cols, &view_cols);
            if n == 0 {
                continue;
            }
            verify_rewrite(&cat, &plans[i], &rewritten)
                .unwrap_or_else(|e| panic!("rewrite of query {i} via candidate {}: {e}", m.candidate));
            rewrites += 1;
        }
    }
    assert!(rewrites > 0, "JOB workload must produce verifiable rewrites");
}
