//! # av-core — the end-to-end AutoView system
//!
//! The system of the paper's Fig. 3, wired from the substrate crates:
//!
//! 1. **Pre-process** ([`truth::preprocess_and_measure`]): parse/extract
//!    subqueries, detect equivalences, cluster, pick least-overhead
//!    candidates, measure raw query costs and candidate overheads.
//! 2. **Offline training** ([`truth::collect_pair_truth`] + the estimators):
//!    execute rewritten queries to collect `(q, v) → A(q|v)` ground truth
//!    into the metadata database, train the Wide-Deep cost model.
//! 3. **Online recommendation** ([`system::AutoViewSystem`]): estimate the
//!    benefit matrix, run a view selector (RLView/BigSub/greedy), pick the
//!    views to materialize.
//! 4. **Deploy & execute**: materialize the chosen views, rewrite the
//!    workload, execute it, and report the end-to-end numbers of Table V.

#![forbid(unsafe_code)]

pub mod config;
pub mod metadata;
pub mod system;
pub mod truth;

pub use config::{table2_defaults, Table2Defaults, WorkloadKind};
pub use metadata::MetadataDb;
pub use system::{
    AutoViewConfig, AutoViewSystem, EndToEndReport, EstimatorKind, OnlineSystem,
    OnlineSystemConfig, SelectorKind,
};
pub use truth::{collect_pair_truth, preprocess_and_measure, PairTruth, Preprocessed};
