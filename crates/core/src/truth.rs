//! Ground-truth collection: measure raw costs, materialize candidates,
//! execute rewritten queries (paper Fig. 3 offline-training data path).

use av_cost::{FeatureInput, PairSample};
use av_engine::{
    rewrite_subtree_with_view, Catalog, EngineError, ExecCache, Pricing, ViewStore,
};
use av_equiv::{Analyzer, WorkloadAnalysis};
use av_plan::PlanRef;
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Output of the pre-process + measurement stage.
pub struct Preprocessed {
    /// Equivalence clustering, candidates and overlaps.
    pub analysis: WorkloadAnalysis,
    /// Every candidate materialized (table `__view_j` in the catalog).
    pub views: ViewStore,
    /// `O_j` for each candidate (Definition 3).
    pub overheads: Vec<f64>,
    /// Measured `A(q_i)` per query.
    pub query_costs: Vec<f64>,
    /// Measured latency (seconds) per query.
    pub query_latencies: Vec<f64>,
    /// Measured cost of scanning each candidate's materialized table.
    pub view_scan_costs: Vec<f64>,
    /// Fingerprint-keyed result cache shared by every later measurement
    /// (pair truth, selection deployment). Execution is deterministic and
    /// the catalog epoch keys out staleness, so reuse is exact.
    pub cache: ExecCache,
}

/// Run the pre-process pipeline and measure everything the later stages
/// need. Materializes every candidate into `catalog` (their overhead is the
/// measured materialization cost — Definition 3's `A_α(v) + A_{β,γ}(s)`).
pub fn preprocess_and_measure(
    catalog: &mut Catalog,
    queries: &[PlanRef],
    pricing: Pricing,
) -> Result<Preprocessed, EngineError> {
    preprocess_and_measure_traced(catalog, queries, pricing, &av_trace::Tracer::disabled())
}

/// [`preprocess_and_measure`] with observability: `core.analyze`,
/// `core.measure_queries` and `core.materialize` sub-spans, and an
/// execution cache that records per-operator spans and `engine.cache_*`
/// counters into the same tracer (as does every later stage that reuses
/// the returned cache).
pub fn preprocess_and_measure_traced(
    catalog: &mut Catalog,
    queries: &[PlanRef],
    pricing: Pricing,
    tracer: &av_trace::Tracer,
) -> Result<Preprocessed, EngineError> {
    let analysis = tracer.time("core.analyze", || {
        let mut analyzer = Analyzer::new();
        analyzer.min_query_frequency = 2;
        analyzer.analyze(queries)
    });

    let cache = ExecCache::new(pricing).with_tracer(tracer.clone());
    let mut query_costs = Vec::with_capacity(queries.len());
    let mut query_latencies = Vec::with_capacity(queries.len());
    {
        let span = tracer.span("core.measure_queries");
        span.record_num("queries", queries.len() as f64);
        for q in queries {
            let r = cache.run(catalog, q)?;
            query_costs.push(r.report.cost_dollars);
            query_latencies.push(r.report.usage.latency_seconds);
        }
    }

    let mut views = ViewStore::new();
    let mut overheads = Vec::with_capacity(analysis.candidates.len());
    let mut view_scan_costs = Vec::with_capacity(analysis.candidates.len());
    {
        let span = tracer.span("core.materialize");
        span.record_num("candidates", analysis.candidates.len() as f64);
        for cand in &analysis.candidates {
            let id = views.materialize(catalog, cand.plan.clone(), pricing)?;
            let view = views.view(id).expect("just materialized");
            overheads.push(view.total_overhead());
            let scan_plan = av_plan::PlanNode::TableScan {
                table: view.table_name.clone(),
                alias: String::new(),
            }
            .into_ref();
            let scan_cost = cache.cost(catalog, &scan_plan)?;
            view_scan_costs.push(scan_cost);
        }
    }

    Ok(Preprocessed {
        analysis,
        views,
        overheads,
        query_costs,
        query_latencies,
        view_scan_costs,
        cache,
    })
}

/// One measured (query, candidate) pair.
pub struct PairTruth {
    pub query: usize,
    pub candidate: usize,
    /// The labelled sample for estimator training/evaluation.
    pub sample: PairSample,
    /// Actual benefit `B = A(q) − A(q|v)` (may be negative).
    pub actual_benefit: f64,
}

/// Rewrite one query with one candidate's view, returning the rewritten
/// plan (None if the match no longer applies).
pub fn rewrite_pair(
    catalog: &Catalog,
    pre: &Preprocessed,
    query_plan: &PlanRef,
    query: usize,
    candidate: usize,
) -> Option<PlanRef> {
    let m = pre.analysis.query_matches[query]
        .iter()
        .find(|m| m.candidate == candidate)?;
    let view = pre.views.view(av_engine::ViewId(candidate))?;
    // The matched subtree's output names (query-local aliases).
    let subtree = find_subtree(query_plan, m.subtree_fp)?;
    let cat_cols = |t: &str| catalog.table_columns(t);
    let subtree_cols = subtree.output_columns(&cat_cols);
    let view_cols = catalog.table(&view.table_name)?.column_names.clone();
    if subtree_cols.len() != view_cols.len() {
        return None; // defensive: arity mismatch means the match is stale
    }
    let (rewritten, n) =
        rewrite_subtree_with_view(query_plan, m.subtree_fp, view, &subtree_cols, &view_cols);
    if n == 0 {
        return None;
    }
    // Debug builds gate every rewrite: the semantic prover first (a
    // `Refuted` rewrite is a hard bug — the view does not contain the
    // query), falling back to the schema check only on `Unknown`.
    #[cfg(debug_assertions)]
    {
        let resolve = |t: &str| {
            pre.views
                .views()
                .iter()
                .find(|v| v.table_name == t)
                .map(|v| v.plan.clone())
        };
        match av_analyze::prove_rewrite(catalog, query_plan, &rewritten, &resolve) {
            av_analyze::Verdict::Proved => {}
            av_analyze::Verdict::Refuted { witness } => {
                panic!(
                    "rewrite of query {query} with candidate {candidate} refuted: {witness}"
                );
            }
            av_analyze::Verdict::Unknown { .. } => {
                if let Err(e) = av_analyze::verify_rewrite(catalog, query_plan, &rewritten) {
                    panic!(
                        "rewrite of query {query} with candidate {candidate} fails verification: {e}"
                    );
                }
            }
        }
    }
    Some(rewritten)
}

fn find_subtree(plan: &PlanRef, fp: av_plan::Fingerprint) -> Option<PlanRef> {
    if av_plan::Fingerprint::of(plan) == fp {
        return Some(plan.clone());
    }
    for c in plan.children() {
        if let Some(found) = find_subtree(c, fp) {
            return Some(found);
        }
    }
    None
}

// `tables_meta` lives in `av-cost::features` (it is feature extraction and
// the online subsystem needs it without depending on this crate); re-exported
// here for the original call sites.
pub use av_cost::tables_meta;

/// Execute rewritten queries for (up to `limit`) usable (query, candidate)
/// pairs, producing labelled samples and actual benefits. Pairs are
/// subsampled deterministically when the workload exceeds the limit.
/// Execution goes through `pre.cache` (which carries the measurement
/// pricing), so repeated rewritten shapes cost one run.
pub fn collect_pair_truth(
    catalog: &Catalog,
    pre: &Preprocessed,
    queries: &[PlanRef],
    limit: usize,
    seed: u64,
) -> Result<Vec<PairTruth>, EngineError> {
    let mut all_pairs: Vec<(usize, usize)> = Vec::new();
    for (i, ms) in pre.analysis.query_matches.iter().enumerate() {
        for m in ms {
            all_pairs.push((i, m.candidate));
        }
    }
    if all_pairs.len() > limit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        all_pairs.shuffle(&mut rng);
        all_pairs.truncate(limit);
        all_pairs.sort_unstable();
    }

    let mut out = Vec::with_capacity(all_pairs.len());
    for (i, j) in all_pairs {
        let Some(rewritten) = rewrite_pair(catalog, pre, &queries[i], i, j) else {
            continue;
        };
        // Different queries often rewrite to the same plan shape; the
        // shared cache collapses those repeats into one execution.
        let cost_qv = pre.cache.cost(catalog, &rewritten)?;
        let cand = &pre.analysis.candidates[j];
        let view = pre.views.view(av_engine::ViewId(j)).expect("materialized");
        let sample = PairSample {
            input: FeatureInput {
                query: queries[i].clone(),
                view: cand.plan.clone(),
                tables: tables_meta(catalog, &queries[i], &cand.plan),
            },
            cost_qv,
            cost_q: pre.query_costs[i],
            cost_s: view.compute_overhead,
            cost_vscan: pre.view_scan_costs[j],
        };
        out.push(PairTruth {
            query: i,
            candidate: j,
            actual_benefit: pre.query_costs[i] - cost_qv,
            sample,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_workload::cloud::mini;

    #[test]
    fn preprocess_measures_everything() {
        let w = mini(40);
        let mut catalog = w.catalog.clone();
        let plans = w.plans();
        let pre = preprocess_and_measure(&mut catalog, &plans, Pricing::paper_defaults())
            .expect("preprocess");
        assert_eq!(pre.query_costs.len(), plans.len());
        assert!(pre.query_costs.iter().all(|&c| c > 0.0));
        assert_eq!(pre.overheads.len(), pre.analysis.candidates.len());
        assert!(pre.overheads.iter().all(|&o| o > 0.0));
        assert_eq!(pre.views.len(), pre.analysis.candidates.len());
        // Scanning a view is cheaper than computing its subquery.
        for (j, &scan) in pre.view_scan_costs.iter().enumerate() {
            assert!(
                scan <= pre.views.views()[j].compute_overhead + 1e-12,
                "view {j}: scan {scan} vs compute {}",
                pre.views.views()[j].compute_overhead
            );
        }
    }

    #[test]
    fn pair_truth_samples_are_consistent() {
        let w = mini(41);
        let mut catalog = w.catalog.clone();
        let plans = w.plans();
        let pre = preprocess_and_measure(&mut catalog, &plans, Pricing::paper_defaults())
            .expect("preprocess");
        let pairs = collect_pair_truth(&catalog, &pre, &plans, 50, 1)
            .expect("pairs");
        assert!(!pairs.is_empty(), "mini workload must have usable pairs");
        for p in &pairs {
            // A rewrite can reduce a query to a bare scan of an empty view,
            // which costs exactly zero — but never negative.
            assert!(p.sample.cost_qv >= 0.0);
            assert!(
                (p.actual_benefit - (p.sample.cost_q - p.sample.cost_qv)).abs() < 1e-12,
                "benefit must equal cost delta"
            );
            assert!(!p.sample.input.tables.is_empty());
        }
    }

    #[test]
    fn rewritten_pair_preserves_results() {
        let w = mini(42);
        let mut catalog = w.catalog.clone();
        let plans = w.plans();
        let pre = preprocess_and_measure(&mut catalog, &plans, Pricing::paper_defaults())
            .expect("preprocess");
        let exec = av_engine::Executor::new(&catalog, Pricing::paper_defaults());
        let mut checked = 0;
        for (i, ms) in pre.analysis.query_matches.iter().enumerate() {
            for m in ms.iter().take(1) {
                let Some(rw) = rewrite_pair(&catalog, &pre, &plans[i], i, m.candidate) else {
                    continue;
                };
                let orig = exec.run(&plans[i]).expect("runs");
                let new = exec.run(&rw).expect("rewritten runs");
                assert_eq!(orig.batch, new.batch, "query {i} view {}", m.candidate);
                checked += 1;
                if checked >= 5 {
                    return;
                }
            }
        }
        assert!(checked > 0, "at least one rewrite must be validated");
    }

    #[test]
    fn limit_caps_pair_collection() {
        let w = mini(43);
        let mut catalog = w.catalog.clone();
        let plans = w.plans();
        let pre = preprocess_and_measure(&mut catalog, &plans, Pricing::paper_defaults())
            .expect("preprocess");
        let pairs = collect_pair_truth(&catalog, &pre, &plans, 3, 1)
            .expect("pairs");
        assert!(pairs.len() <= 3);
    }
}
