//! The metadata database (paper Fig. 3, offline-training side): measured
//! costs, training pairs and experiment outputs, persisted as JSON.

use av_cost::PairSample;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Persistent store of everything the offline trainers consume.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetadataDb {
    /// Measured raw query costs `A(q_i)` in query order.
    pub query_costs: Vec<f64>,
    /// Measured raw query latencies (seconds).
    pub query_latencies: Vec<f64>,
    /// Candidate overheads `O_j` in candidate order.
    pub candidate_overheads: Vec<f64>,
    /// Labelled `(q, v)` pairs with measured rewritten costs.
    pub pair_samples: Vec<PairSample>,
    /// `(query, candidate)` index of each pair sample.
    pub pair_index: Vec<(usize, usize)>,
}

impl MetadataDb {
    /// Empty store.
    pub fn new() -> MetadataDb {
        MetadataDb::default()
    }

    /// Number of stored training pairs.
    pub fn num_pairs(&self) -> usize {
        self.pair_samples.len()
    }

    /// Total raw workload cost `Σ A(q)`.
    pub fn total_query_cost(&self) -> f64 {
        self.query_costs.iter().sum()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metadata serializes")
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read back from a file.
    pub fn load(path: &Path) -> io::Result<MetadataDb> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_cost::{FeatureInput, TableMeta};
    use av_plan::{Expr, PlanBuilder};

    fn sample_db() -> MetadataDb {
        let view = PlanBuilder::scan("t", "a")
            .filter(Expr::col("a.k").eq(Expr::int(1)))
            .project(&[("a.v", "v")])
            .build();
        let query = PlanBuilder::from_plan(view.clone())
            .count_star(&["v"], "n")
            .build();
        MetadataDb {
            query_costs: vec![0.5, 0.7],
            query_latencies: vec![1.0, 1.4],
            candidate_overheads: vec![0.1],
            pair_samples: vec![PairSample {
                input: FeatureInput {
                    query,
                    view,
                    tables: vec![TableMeta {
                        name: "t".into(),
                        rows: 10.0,
                        columns: 2.0,
                        bytes: 160.0,
                        avg_distinct_ratio: 1.0,
                        column_names: vec!["k".into(), "v".into()],
                        column_types: vec!["Int".into(), "Int".into()],
                    }],
                },
                cost_qv: 0.3,
                cost_q: 0.5,
                cost_s: 0.2,
                cost_vscan: 0.05,
            }],
            pair_index: vec![(0, 0)],
        }
    }

    #[test]
    fn json_round_trip() {
        let db = sample_db();
        let json = db.to_json();
        let back: MetadataDb = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.num_pairs(), 1);
        assert_eq!(back.query_costs, db.query_costs);
        assert_eq!(back.pair_samples[0].cost_qv, 0.3);
        assert_eq!(
            av_plan::Fingerprint::of(&back.pair_samples[0].input.query),
            av_plan::Fingerprint::of(&db.pair_samples[0].input.query)
        );
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("av_core_meta_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("meta.json");
        db.save(&path).expect("saves");
        let back = MetadataDb::load(&path).expect("loads");
        assert_eq!(back.total_query_cost(), 1.2);
        std::fs::remove_file(&path).ok();
    }
}
