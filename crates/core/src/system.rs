//! The end-to-end AutoView system and the Table V experiment loop.

use crate::metadata::MetadataDb;
use crate::truth::{
    collect_pair_truth, preprocess_and_measure, preprocess_and_measure_traced, rewrite_pair,
    tables_meta, Preprocessed,
};
use av_cost::{
    CostEstimator, FeatureInput, OptimizerEstimator, WideDeep, WideDeepConfig,
};
use av_engine::{Catalog, EngineError, Pricing};
use av_ilp::MvsInstance;
use av_online::CandidateView;
use av_plan::{Fingerprint, PlanRef};
use av_select::{
    greedy_best, BigSub, BigSubConfig, GreedyRank, IterView, IterViewConfig, RlView,
    RlViewConfig, SelectionResult,
};
use av_serve::{ReoptSummary, ServeConfig, ServeError, ViewServer};
use av_trace::Tracer;

/// Which cost estimator drives the benefit matrix.
#[derive(Debug, Clone)]
pub enum EstimatorKind {
    /// The paper's Wide-Deep model (`W` in Table V's W&B / W&R).
    WideDeep(WideDeepConfig),
    /// The analytical optimizer baseline (`O` in O&B / O&R).
    Optimizer,
}

impl EstimatorKind {
    /// Short display name (`W` / `O`).
    pub fn short_name(&self) -> &'static str {
        match self {
            EstimatorKind::WideDeep(_) => "W",
            EstimatorKind::Optimizer => "O",
        }
    }
}

/// Which view selector consumes the benefit matrix.
#[derive(Debug, Clone)]
pub enum SelectorKind {
    RlView(RlViewConfig),
    BigSub(BigSubConfig),
    IterView(IterViewConfig),
    /// A greedy ranking with its best `k` found by sweeping.
    Greedy(GreedyRank),
}

impl SelectorKind {
    /// Short display name (`R` / `B` / `I` / rank name).
    pub fn short_name(&self) -> &'static str {
        match self {
            SelectorKind::RlView(_) => "R",
            SelectorKind::BigSub(_) => "B",
            SelectorKind::IterView(_) => "I",
            SelectorKind::Greedy(r) => r.name(),
        }
    }

    /// Run the selector on an instance.
    pub fn run(&self, instance: &MvsInstance) -> SelectionResult {
        self.run_traced(instance, &Tracer::disabled())
    }

    /// Run the selector with telemetry: RLView and IterView record episode
    /// and iteration spans/metrics into `tracer`; the other selectors run
    /// untraced (the caller's phase span still times them).
    pub fn run_traced(&self, instance: &MvsInstance, tracer: &Tracer) -> SelectionResult {
        match self {
            SelectorKind::RlView(cfg) => RlView::run_traced(instance, cfg.clone(), tracer),
            SelectorKind::BigSub(cfg) => BigSub::run(instance, cfg.clone()),
            SelectorKind::IterView(cfg) => {
                IterView::new(instance, cfg.clone()).run_traced(tracer)
            }
            SelectorKind::Greedy(rank) => greedy_best(instance, *rank).1,
        }
    }
}

/// End-to-end configuration.
#[derive(Debug, Clone)]
pub struct AutoViewConfig {
    pub pricing: Pricing,
    pub estimator: EstimatorKind,
    pub selector: SelectorKind,
    /// Cap on executed training pairs (ground-truth collection cost).
    pub max_training_pairs: usize,
    pub seed: u64,
}

impl Default for AutoViewConfig {
    fn default() -> Self {
        AutoViewConfig {
            pricing: Pricing::paper_defaults(),
            estimator: EstimatorKind::WideDeep(WideDeepConfig::default()),
            selector: SelectorKind::RlView(RlViewConfig::default()),
            max_training_pairs: 500,
            seed: 42,
        }
    }
}

/// The end-to-end numbers of the paper's Table V, for one method combo.
#[derive(Debug, Clone)]
pub struct EndToEndReport {
    /// `E&S` label, e.g. `W&R`.
    pub method: String,
    /// Raw workload: query count, total cost (`c_q`, $), total latency (s).
    pub num_queries: usize,
    pub raw_cost: f64,
    pub raw_latency: f64,
    /// Materialized views: count (`#m`) and total overhead (`o_m`, $).
    pub num_views: usize,
    pub view_overhead: f64,
    /// Rewritten queries: count (`#(q|v)`) and actual total benefit
    /// (`b_{q|v}`, $).
    pub num_rewritten: usize,
    pub benefit: f64,
    /// Latency of the rewritten workload (s).
    pub rewritten_latency: f64,
    /// Saved-cost ratio `r_c = (b_{q|v} − o_m) / c_q`, in percent.
    pub saved_ratio_percent: f64,
    /// Utility claimed by the selector on the *estimated* benefit matrix
    /// (diagnostic: estimation error is the gap to `benefit − overhead`).
    pub estimated_utility: f64,
}

/// The assembled system (paper Fig. 3).
pub struct AutoViewSystem {
    pub catalog: Catalog,
    pub queries: Vec<PlanRef>,
    pub config: AutoViewConfig,
    pub metadata: MetadataDb,
    tracer: Tracer,
    /// The catalog as it was before preprocessing materialized candidate
    /// tables into it; serving snapshots are built from this base so the
    /// server's own view store starts from a clean namespace.
    serving_base: Option<Catalog>,
    /// Views chosen by the last [`AutoViewSystem::run`], in the shape the
    /// serving layer admits.
    selected: Vec<CandidateView>,
}

impl AutoViewSystem {
    /// Build a system over a catalog and workload.
    ///
    /// Debug builds install the `av-analyze` plan verifier as the engine's
    /// preflight gate: every plan the pipeline executes is schema-checked
    /// before touching data. Release builds skip the gate.
    ///
    /// Tracing is off by default; attach a live tracer with
    /// [`AutoViewSystem::with_tracer`] to record the pipeline's span tree
    /// (phases `pipeline.*`, operators `exec.*`) and metrics.
    pub fn new(catalog: Catalog, queries: Vec<PlanRef>, config: AutoViewConfig) -> AutoViewSystem {
        if cfg!(debug_assertions) {
            av_analyze::install_engine_gate();
        }
        AutoViewSystem {
            catalog,
            queries,
            config,
            metadata: MetadataDb::new(),
            tracer: Tracer::disabled(),
            serving_base: None,
            selected: Vec::new(),
        }
    }

    /// Attach an observability tracer; every stage of [`AutoViewSystem::run`]
    /// records into it.
    pub fn with_tracer(mut self, tracer: Tracer) -> AutoViewSystem {
        self.tracer = tracer;
        self
    }

    /// The system's tracer (disabled unless one was attached).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Run the full pipeline: pre-process → offline training → online
    /// recommendation → deploy → execute. Returns the Table V row.
    ///
    /// With a tracer attached, the run produces a span tree with one root
    /// phase per stage: `pipeline.preprocess`, `pipeline.truth`,
    /// `pipeline.train`, `pipeline.select`, `pipeline.deploy`.
    pub fn run(&mut self) -> Result<EndToEndReport, EngineError> {
        let pricing = self.config.pricing;
        let tracer = self.tracer.clone();
        // Preprocessing materializes every candidate into `self.catalog`
        // (tables `__view_*`); keep a copy-on-write snapshot of the clean
        // catalog so `publish` can hand the serving layer an unpolluted
        // namespace. The clone shares table data via `Arc`, so this is a
        // pointer copy, not a data copy.
        self.serving_base = Some(self.catalog.clone());
        let pre = tracer.time("pipeline.preprocess", || {
            preprocess_and_measure_traced(&mut self.catalog, &self.queries, pricing, &tracer)
        })?;

        // ---- offline: ground truth + estimator training ------------------
        let pairs = tracer.time("pipeline.truth", || {
            collect_pair_truth(
                &self.catalog,
                &pre,
                &self.queries,
                self.config.max_training_pairs,
                self.config.seed,
            )
        })?;
        self.metadata.query_costs = pre.query_costs.clone();
        self.metadata.query_latencies = pre.query_latencies.clone();
        self.metadata.candidate_overheads = pre.overheads.clone();
        self.metadata.pair_index = pairs.iter().map(|p| (p.query, p.candidate)).collect();
        self.metadata.pair_samples = pairs.iter().map(|p| p.sample.clone()).collect();

        let estimator: Box<dyn CostEstimator> = tracer.time("pipeline.train", || {
            match &self.config.estimator {
                EstimatorKind::Optimizer => {
                    Box::new(OptimizerEstimator::default()) as Box<dyn CostEstimator>
                }
                EstimatorKind::WideDeep(cfg) => {
                    let train: Vec<(FeatureInput, f64)> = pairs
                        .iter()
                        .map(|p| (p.sample.input.clone(), p.sample.cost_qv))
                        .collect();
                    let model = WideDeep::fit_with_tracer(&train, cfg.clone(), &tracer)
                        .0
                        .with_tracer(tracer.clone());
                    Box::new(model)
                }
            }
        });

        // ---- online: benefit matrix + selection --------------------------
        let (instance, selection) = tracer.time("pipeline.select", || {
            let instance = self.build_instance(&pre, estimator.as_ref());
            let selection = self.config.selector.run_traced(&instance, &tracer);
            (instance, selection)
        });
        self.selected = Self::selection_to_candidates(&pre, &instance, &selection);

        // ---- deploy & execute ---------------------------------------------
        let report = tracer.time("pipeline.deploy", || self.execute_selection(&pre, &selection))?;
        Ok(report)
    }

    /// Estimate the benefit matrix with a trained estimator and assemble
    /// the MVS instance.
    pub fn build_instance(
        &self,
        pre: &Preprocessed,
        estimator: &dyn CostEstimator,
    ) -> MvsInstance {
        let nc = pre.analysis.candidates.len();
        let mut benefits = vec![vec![0.0; nc]; self.queries.len()];
        // Collect every (query, candidate) pair first and score them in one
        // estimator_batch call: a batched estimator (Wide-Deep) then encodes
        // each distinct plan once instead of once per pair.
        let mut pairs_ix: Vec<(usize, usize)> = Vec::new();
        let mut inputs: Vec<FeatureInput> = Vec::new();
        for (i, ms) in pre.analysis.query_matches.iter().enumerate() {
            for m in ms {
                let cand = &pre.analysis.candidates[m.candidate];
                pairs_ix.push((i, m.candidate));
                inputs.push(FeatureInput {
                    query: self.queries[i].clone(),
                    view: cand.plan.clone(),
                    tables: tables_meta(&self.catalog, &self.queries[i], &cand.plan),
                });
            }
        }
        let estimates = estimator.estimate_batch(&inputs);
        for (&(i, cand), est_qv) in pairs_ix.iter().zip(estimates) {
            benefits[i][cand] = pre.query_costs[i] - est_qv;
        }
        MvsInstance {
            benefits,
            overheads: pre.overheads.clone(),
            overlaps: pre.analysis.overlap_pairs.clone(),
        }
    }

    /// Deploy a selection: rewrite the workload with the chosen views,
    /// execute it, and assemble the Table V row.
    pub fn execute_selection(
        &self,
        pre: &Preprocessed,
        selection: &SelectionResult,
    ) -> Result<EndToEndReport, EngineError> {
        let num_views = selection.num_materialized();
        let view_overhead: f64 = selection
            .z
            .iter()
            .zip(&pre.overheads)
            .map(|(&z, &o)| if z { o } else { 0.0 })
            .sum();

        let mut num_rewritten = 0usize;
        let mut benefit = 0.0;
        let mut rewritten_latency = 0.0;
        for (i, q) in self.queries.iter().enumerate() {
            let mut plan = q.clone();
            let mut used_any = false;
            for (j, &use_view) in selection.y[i].iter().enumerate() {
                if !use_view {
                    continue;
                }
                if let Some(next) = rewrite_pair(&self.catalog, pre, &plan, i, j) {
                    plan = next;
                    used_any = true;
                }
            }
            if used_any {
                // Training-pair collection likely already executed this
                // rewritten shape; the shared cache makes deployment free.
                let r = pre.cache.run(&self.catalog, &plan)?;
                num_rewritten += 1;
                benefit += pre.query_costs[i] - r.report.cost_dollars;
                rewritten_latency += r.report.usage.latency_seconds;
            } else {
                rewritten_latency += pre.query_latencies[i];
            }
        }

        let raw_cost: f64 = pre.query_costs.iter().sum();
        let raw_latency: f64 = pre.query_latencies.iter().sum();
        Ok(EndToEndReport {
            method: format!(
                "{}&{}",
                self.config.estimator.short_name(),
                self.config.selector.short_name()
            ),
            num_queries: self.queries.len(),
            raw_cost,
            raw_latency,
            num_views,
            view_overhead,
            num_rewritten,
            benefit,
            rewritten_latency,
            saved_ratio_percent: if raw_cost > 0.0 {
                100.0 * (benefit - view_overhead) / raw_cost
            } else {
                0.0
            },
            estimated_utility: selection.utility,
        })
    }

    /// Convert a selection over the benefit matrix into the serving layer's
    /// admission shape: one [`CandidateView`] per materialized candidate,
    /// with `expected_benefit = Σᵢ benefits[i][j]·y[i][j]`.
    fn selection_to_candidates(
        pre: &Preprocessed,
        instance: &MvsInstance,
        selection: &SelectionResult,
    ) -> Vec<CandidateView> {
        let mut out = Vec::new();
        for (j, &z) in selection.z.iter().enumerate() {
            if !z {
                continue;
            }
            let cand = &pre.analysis.candidates[j];
            let expected_benefit: f64 = selection
                .y
                .iter()
                .zip(&instance.benefits)
                .map(|(yi, bi)| if yi[j] { bi[j] } else { 0.0 })
                .sum();
            out.push(CandidateView {
                plan: cand.plan.clone(),
                canonical_fp: Fingerprint::of(&cand.canonical),
                expected_benefit,
                overhead: instance.overheads[j],
            });
        }
        out
    }

    /// Views chosen by the last [`AutoViewSystem::run`] (empty before a run).
    pub fn selected_views(&self) -> &[CandidateView] {
        &self.selected
    }

    /// Stand up a serving snapshot from the last run's selection: builds an
    /// `av-serve` [`ViewServer`] over the *pre-preprocessing* catalog (the
    /// pipeline materializes every candidate as `__view_*` scratch tables;
    /// serving starts from the clean base instead), admits the selected
    /// views under `owner`'s byte budget, preflights the deployment against
    /// the workload, and atomically publishes epoch 1.
    ///
    /// The server's own re-optimization path uses the analytical optimizer
    /// estimator; the offline selection being published already encodes
    /// whatever estimator [`AutoViewConfig::estimator`] chose.
    pub fn publish(
        &self,
        config: ServeConfig,
        owner: Option<&str>,
    ) -> Result<(ViewServer, ReoptSummary), ServeError> {
        let base = self
            .serving_base
            .clone()
            .unwrap_or_else(|| self.catalog.clone());
        let server = ViewServer::with_tracer(
            base,
            Box::new(OptimizerEstimator::default()),
            config,
            self.tracer.clone(),
        );
        let summary = server.publish(&self.selected, owner, &self.queries)?;
        Ok((server, summary))
    }
}

/// Configuration for the streaming (online) system.
#[derive(Debug, Clone)]
pub struct OnlineSystemConfig {
    /// The online engine's knobs (window, drift, lifecycle, selector).
    pub online: av_online::OnlineConfig,
    /// Estimator powering the benefit matrix at each re-optimization.
    pub estimator: EstimatorKind,
    /// Cap on executed training pairs for Wide-Deep warmup.
    pub max_training_pairs: usize,
    pub seed: u64,
}

impl Default for OnlineSystemConfig {
    fn default() -> Self {
        OnlineSystemConfig {
            online: av_online::OnlineConfig::default(),
            estimator: EstimatorKind::Optimizer,
            max_training_pairs: 200,
            seed: 42,
        }
    }
}

/// The streaming counterpart of [`AutoViewSystem`]: queries arrive one at a
/// time, and the view set adapts as the workload drifts (see `av-online`).
///
/// The Wide-Deep estimator needs labelled pairs before it can predict, so
/// construction optionally takes a *warmup* workload: ground truth is
/// collected on a scratch copy of the catalog (exactly the batch pipeline's
/// offline stage) and the model is trained once, up front. With
/// [`EstimatorKind::Optimizer`] (or an empty warmup) no training happens.
pub struct OnlineSystem {
    engine: av_online::OnlineEngine,
}

impl OnlineSystem {
    pub fn new(
        catalog: Catalog,
        warmup_queries: &[PlanRef],
        config: OnlineSystemConfig,
    ) -> Result<OnlineSystem, EngineError> {
        if cfg!(debug_assertions) {
            av_analyze::install_engine_gate();
        }
        let estimator = Self::build_estimator(&catalog, warmup_queries, &config)?;
        Ok(OnlineSystem {
            engine: av_online::OnlineEngine::new(catalog, estimator, config.online),
        })
    }

    fn build_estimator(
        catalog: &Catalog,
        warmup_queries: &[PlanRef],
        config: &OnlineSystemConfig,
    ) -> Result<Box<dyn CostEstimator>, EngineError> {
        let EstimatorKind::WideDeep(wd_cfg) = &config.estimator else {
            return Ok(Box::new(OptimizerEstimator::default()));
        };
        if warmup_queries.is_empty() {
            // Nothing to train on: degrade to the analytical baseline.
            return Ok(Box::new(OptimizerEstimator::default()));
        }
        // Offline stage on a scratch catalog — warmup materializations must
        // not leak into the live catalog.
        let mut scratch = catalog.clone();
        let pricing = config.online.pricing;
        let pre = preprocess_and_measure(&mut scratch, warmup_queries, pricing)?;
        let pairs = collect_pair_truth(
            &scratch,
            &pre,
            warmup_queries,
            config.max_training_pairs,
            config.seed,
        )?;
        if pairs.is_empty() {
            return Ok(Box::new(OptimizerEstimator::default()));
        }
        let train: Vec<(FeatureInput, f64)> = pairs
            .iter()
            .map(|p| (p.sample.input.clone(), p.sample.cost_qv))
            .collect();
        Ok(Box::new(WideDeep::fit(&train, wd_cfg.clone())))
    }

    /// Process one arriving query (route → measure → adapt).
    pub fn ingest(&mut self, plan: &PlanRef) -> Result<av_online::QueryOutcome, EngineError> {
        self.engine.ingest(plan)
    }

    /// Cumulative cost accounting.
    pub fn report(&self) -> av_online::OnlineReport {
        self.engine.report()
    }

    /// JSON snapshot of the online metrics registry.
    pub fn metrics_json(&self) -> String {
        self.engine.metrics_json()
    }

    /// The underlying engine, for inspection.
    pub fn engine(&self) -> &av_online::OnlineEngine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_workload::cloud::mini;

    fn quick_wd() -> WideDeepConfig {
        WideDeepConfig {
            epochs: 4,
            embed_dim: 8,
            lstm1_hidden: 8,
            lstm2_hidden: 8,
            ..WideDeepConfig::default()
        }
    }

    fn quick_rl() -> RlViewConfig {
        RlViewConfig {
            n1: 5,
            n2: 6,
            memory_size: 10,
            max_steps_per_epoch: 25,
            ..RlViewConfig::default()
        }
    }

    #[test]
    fn online_system_adapts_and_saves() {
        let w = mini(60);
        let plans = w.plans();
        let mut sys = OnlineSystem::new(
            w.catalog.clone(),
            &[],
            OnlineSystemConfig {
                online: av_online::OnlineConfig {
                    window_size: plans.len(),
                    check_every: 8,
                    lifecycle: av_online::LifecycleConfig {
                        byte_budget: usize::MAX,
                        min_benefit_per_byte: 0.0,
                        tenant_byte_budget: usize::MAX,
                    },
                    ..av_online::OnlineConfig::default()
                },
                estimator: EstimatorKind::Optimizer,
                ..OnlineSystemConfig::default()
            },
        )
        .expect("constructs");
        for _ in 0..2 {
            for p in &plans {
                sys.ingest(p).expect("ingests");
            }
        }
        let report = sys.report();
        assert_eq!(report.queries, 2 * plans.len() as u64);
        assert!(report.live_views > 0, "bootstrap selection admits views");
        assert!(
            report.actual_cost < report.baseline_cost,
            "repeat queries must route through views"
        );
        assert!(sys.metrics_json().contains("views_admitted"));
    }

    #[test]
    fn online_system_trains_widedeep_on_warmup() {
        let w = mini(61);
        let plans = w.plans();
        let mut sys = OnlineSystem::new(
            w.catalog.clone(),
            &plans,
            OnlineSystemConfig {
                online: av_online::OnlineConfig {
                    window_size: plans.len(),
                    ..av_online::OnlineConfig::default()
                },
                estimator: EstimatorKind::WideDeep(quick_wd()),
                max_training_pairs: 40,
                ..OnlineSystemConfig::default()
            },
        )
        .expect("constructs with trained estimator");
        // The warmup ran on a scratch catalog: no view tables leaked.
        assert!(sys
            .engine()
            .catalog()
            .table_names()
            .all(|t| !t.starts_with("__view_")));
        for p in &plans {
            sys.ingest(p).expect("ingests");
        }
        assert!(sys.report().queries == plans.len() as u64);
    }

    #[test]
    fn end_to_end_wd_rlview_saves_cost() {
        let w = mini(50);
        let mut sys = AutoViewSystem::new(
            w.catalog.clone(),
            w.plans(),
            AutoViewConfig {
                estimator: EstimatorKind::WideDeep(quick_wd()),
                selector: SelectorKind::RlView(quick_rl()),
                max_training_pairs: 60,
                ..AutoViewConfig::default()
            },
        );
        let r = sys.run().expect("pipeline runs");
        assert_eq!(r.method, "W&R");
        assert_eq!(r.num_queries, 40);
        assert!(r.raw_cost > 0.0);
        assert!(r.num_views > 0, "mini workload has profitable views");
        assert!(r.num_rewritten > 0);
        assert!(
            r.benefit > 0.0,
            "rewritten queries must be cheaper in aggregate: {r:?}"
        );
        assert!(sys.metadata.num_pairs() > 0, "metadata collected");
    }

    #[test]
    fn published_snapshot_serves_selection() {
        use av_engine::Executor;

        let w = mini(52);
        let plans = w.plans();
        let mut sys = AutoViewSystem::new(
            w.catalog.clone(),
            plans.clone(),
            AutoViewConfig {
                estimator: EstimatorKind::Optimizer,
                selector: SelectorKind::RlView(quick_rl()),
                max_training_pairs: 30,
                ..AutoViewConfig::default()
            },
        );
        assert!(sys.selected_views().is_empty(), "no selection before run");
        let report = sys.run().expect("pipeline runs");
        assert!(report.num_views > 0, "mini workload has profitable views");
        assert_eq!(
            sys.selected_views().len(),
            report.num_views,
            "stashed candidates mirror the Table V `#m` column"
        );

        let serve_cfg = av_serve::ServeConfig {
            lifecycle: av_online::LifecycleConfig {
                byte_budget: usize::MAX,
                min_benefit_per_byte: 0.0,
                tenant_byte_budget: usize::MAX,
            },
            ..av_serve::ServeConfig::default()
        };
        // The lifecycle re-screens admissions: a selected view that earned
        // no positive assignment in the benefit matrix is turned away.
        let positive = sys
            .selected_views()
            .iter()
            .filter(|c| c.expected_benefit > 0.0)
            .count();
        let (server, summary) = sys.publish(serve_cfg, Some("tenant0")).expect("publishes");
        assert_eq!(summary.epoch, 1, "publication swaps epoch 0 -> 1");
        assert_eq!(server.epoch(), 1);
        assert_eq!(summary.admitted, positive, "positive-benefit views admitted");
        assert_eq!(
            summary.admitted + summary.rejected,
            report.num_views,
            "every selected view was screened"
        );
        assert!(summary.admitted > 0, "selection admits views: {summary:?}");

        // The serving catalog holds exactly the admitted views' tables — the
        // pipeline's per-candidate scratch tables stay out of the snapshot.
        let deployed = server.current();
        let scratch = deployed
            .catalog()
            .table_names()
            .filter(|t| t.starts_with("__view_"))
            .count();
        assert_eq!(scratch, summary.admitted);

        // Serving answers match raw execution, and the views actually route.
        let exec = Executor::new(&w.catalog, Pricing::paper_defaults());
        let mut hits = 0usize;
        for p in &plans {
            let resp = server.execute("tenant0", p).expect("serves");
            assert_eq!(resp.batch, exec.run(p).expect("raw run").batch);
            hits += resp.rewrite_hits;
        }
        assert!(hits > 0, "published views rewrite the workload");
    }

    #[test]
    fn traced_run_produces_phase_tree_and_chrome_trace() {
        let w = mini(55);
        let tracer = Tracer::new();
        let mut sys = AutoViewSystem::new(
            w.catalog.clone(),
            w.plans(),
            AutoViewConfig {
                estimator: EstimatorKind::WideDeep(quick_wd()),
                selector: SelectorKind::RlView(quick_rl()),
                max_training_pairs: 30,
                ..AutoViewConfig::default()
            },
        )
        .with_tracer(tracer.clone());
        sys.run().expect("pipeline runs");

        let snap = tracer.snapshot();
        // Root spans are the pipeline phases — the acceptance bar is >= 4.
        let phases = snap.phase_names();
        assert!(
            phases.len() >= 4,
            "expected >= 4 pipeline phases, got {phases:?}"
        );
        for expect in [
            "pipeline.preprocess",
            "pipeline.truth",
            "pipeline.train",
            "pipeline.select",
            "pipeline.deploy",
        ] {
            assert!(phases.iter().any(|p| p == expect), "missing {expect}");
        }
        // Per-operator executor spans from the truth-collection executions.
        assert!(
            snap.spans.iter().any(|s| s.name == "exec.scan"),
            "executor operator spans recorded"
        );
        // Training and RL telemetry landed in the registry.
        assert!(snap.metrics.histograms.contains_key("cost.epoch_loss"));
        assert!(snap.metrics.gauges.contains_key("select.epsilon"));
        assert!(snap.metrics.counters.contains_key("engine.cache_miss"));

        // The chrome-trace export is valid JSON with one event per span.
        let text = av_trace::chrome_trace(&snap);
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid chrome trace");
        let events = doc
            .as_obj()
            .and_then(|o| o.iter().find(|(k, _)| k == "traceEvents"))
            .and_then(|(_, v)| v.as_arr().map(|a| a.len()))
            .expect("traceEvents array");
        assert_eq!(events, snap.spans.len());
    }

    #[test]
    fn end_to_end_optimizer_bigsub_runs() {
        let w = mini(51);
        let mut sys = AutoViewSystem::new(
            w.catalog.clone(),
            w.plans(),
            AutoViewConfig {
                estimator: EstimatorKind::Optimizer,
                selector: SelectorKind::BigSub(BigSubConfig {
                    iterations: 20,
                    ..BigSubConfig::default()
                }),
                max_training_pairs: 30,
                ..AutoViewConfig::default()
            },
        );
        let r = sys.run().expect("pipeline runs");
        assert_eq!(r.method, "O&B");
        assert!(r.raw_latency > 0.0);
        assert!(r.rewritten_latency > 0.0);
    }

    #[test]
    fn greedy_selector_end_to_end() {
        let w = mini(52);
        let mut sys = AutoViewSystem::new(
            w.catalog.clone(),
            w.plans(),
            AutoViewConfig {
                estimator: EstimatorKind::Optimizer,
                selector: SelectorKind::Greedy(GreedyRank::TopkNorm),
                max_training_pairs: 30,
                ..AutoViewConfig::default()
            },
        );
        let r = sys.run().expect("pipeline runs");
        assert_eq!(r.method, "O&TopkNorm");
        // Greedy picked its best k on estimated utility; the measured ratio
        // is whatever it is, but the accounting identity must hold.
        assert!(
            (r.saved_ratio_percent
                - 100.0 * (r.benefit - r.view_overhead) / r.raw_cost)
                .abs()
                < 1e-9
        );
    }
}
