//! Default hyper-parameters — the single source of truth for the paper's
//! Table II.

use av_cost::WideDeepConfig;
use av_engine::Pricing;
use av_select::RlViewConfig;

/// Which of the paper's three workloads a configuration targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    Job,
    Wk1,
    Wk2,
}

/// The Table II defaults for one workload.
#[derive(Debug, Clone)]
pub struct Table2Defaults {
    /// Pricing constants (α, β, γ) — shared by all workloads.
    pub pricing: Pricing,
    /// Wide-Deep training epochs `I`.
    pub epochs: usize,
    /// Wide-Deep learning rate `lr`.
    pub lr: f64,
    /// Wide-Deep batch size `b_s`.
    pub batch_size: usize,
    /// RLView warm-start iterations `n₁`.
    pub n1: usize,
    /// RLView epochs `n₂`.
    pub n2: usize,
    /// RLView replay-memory threshold `n_m`.
    pub memory_size: usize,
    /// Reward decay rate γ.
    pub gamma: f64,
}

/// Table II, verbatim.
pub fn table2_defaults(kind: WorkloadKind) -> Table2Defaults {
    let pricing = Pricing::paper_defaults();
    match kind {
        WorkloadKind::Job => Table2Defaults {
            pricing,
            epochs: 50,
            lr: 0.01,
            batch_size: 8,
            n1: 10,
            n2: 90,
            memory_size: 20,
            gamma: 0.9,
        },
        WorkloadKind::Wk1 => Table2Defaults {
            pricing,
            epochs: 20,
            lr: 0.005,
            batch_size: 128,
            n1: 10,
            n2: 990,
            memory_size: 3000,
            gamma: 0.9,
        },
        WorkloadKind::Wk2 => Table2Defaults {
            pricing,
            epochs: 20,
            lr: 0.005,
            batch_size: 128,
            n1: 10,
            n2: 490,
            memory_size: 3000,
            gamma: 0.9,
        },
    }
}

impl Table2Defaults {
    /// Wide-Deep configuration with these defaults. `scale` shrinks the
    /// epoch count for scaled-down benchmark runs (1.0 = paper values).
    pub fn widedeep(&self, seed: u64, scale: f64) -> WideDeepConfig {
        WideDeepConfig {
            epochs: ((self.epochs as f64 * scale) as usize).max(2),
            lr: self.lr as f32,
            batch_size: self.batch_size,
            seed,
            ..WideDeepConfig::default()
        }
    }

    /// RLView configuration with these defaults. `scale` shrinks the
    /// epoch count and memory threshold for scaled-down runs.
    pub fn rlview(&self, seed: u64, scale: f64) -> RlViewConfig {
        RlViewConfig {
            n1: self.n1,
            n2: ((self.n2 as f64 * scale) as usize).max(5),
            memory_size: ((self.memory_size as f64 * scale) as usize).max(10),
            gamma: self.gamma,
            // Amortize DQN fine-tuning: one minibatch every other step keeps
            // wall-clock linear in |Z| on the WK-scale instances.
            train_every: 2,
            seed,
            ..RlViewConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_matches_table_ii() {
        let d = table2_defaults(WorkloadKind::Job);
        assert_eq!(d.epochs, 50);
        assert_eq!(d.lr, 0.01);
        assert_eq!(d.batch_size, 8);
        assert_eq!((d.n1, d.n2, d.memory_size), (10, 90, 20));
        assert_eq!(d.gamma, 0.9);
        assert_eq!(d.pricing.alpha, 1.67e-5);
    }

    #[test]
    fn wk_presets_match_table_ii() {
        let w1 = table2_defaults(WorkloadKind::Wk1);
        let w2 = table2_defaults(WorkloadKind::Wk2);
        assert_eq!((w1.epochs, w1.batch_size), (20, 128));
        assert_eq!(w1.n2, 990);
        assert_eq!(w2.n2, 490);
        assert_eq!(w1.memory_size, 3000);
    }

    #[test]
    fn scaling_respects_floors() {
        let d = table2_defaults(WorkloadKind::Job);
        let wd = d.widedeep(1, 0.0);
        assert_eq!(wd.epochs, 2);
        let rl = d.rlview(1, 0.0);
        assert_eq!(rl.n2, 5);
        assert_eq!(rl.memory_size, 10);
    }
}
