//! # autoview — umbrella crate
//!
//! Re-exports the public API of every AutoView subsystem so examples and
//! downstream users can depend on a single crate.

#![forbid(unsafe_code)]

pub use av_core as core;
pub use av_cost as cost;
pub use av_engine as engine;
pub use av_equiv as equiv;
pub use av_ilp as ilp;
pub use av_nn as nn;
pub use av_plan as plan;
pub use av_select as select;
pub use av_workload as workload;
