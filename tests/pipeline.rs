//! Workspace-spanning integration tests: the full Fig. 3 pipeline, the
//! accounting identities behind the Table V metrics, and failure injection.

use autoview::core::{
    collect_pair_truth, preprocess_and_measure, AutoViewConfig, AutoViewSystem,
    EstimatorKind, SelectorKind,
};
use autoview::cost::{CostEstimator, FeatureInput, WideDeepConfig};
use autoview::engine::{Executor, Pricing};
use autoview::ilp::MvsInstance;
use autoview::select::{GreedyRank, RlViewConfig, SelectionResult};
use autoview::workload::cloud::mini;

fn quick_config() -> AutoViewConfig {
    AutoViewConfig {
        estimator: EstimatorKind::WideDeep(WideDeepConfig {
            epochs: 4,
            embed_dim: 8,
            lstm1_hidden: 8,
            lstm2_hidden: 8,
            ..WideDeepConfig::default()
        }),
        selector: SelectorKind::RlView(RlViewConfig {
            n1: 5,
            n2: 6,
            memory_size: 10,
            max_steps_per_epoch: 25,
            ..RlViewConfig::default()
        }),
        max_training_pairs: 60,
        ..AutoViewConfig::default()
    }
}

#[test]
fn full_pipeline_reduces_workload_cost() {
    let w = mini(100);
    let mut sys = AutoViewSystem::new(w.catalog.clone(), w.plans(), quick_config());
    let r = sys.run().expect("pipeline");
    // The headline property: recommended views save net cost.
    assert!(
        r.benefit > r.view_overhead,
        "net savings expected: benefit {} vs overhead {}",
        r.benefit,
        r.view_overhead
    );
    assert!(r.saved_ratio_percent > 0.0);
    // Latency must also drop (the rewritten workload skips shared work).
    assert!(r.rewritten_latency < r.raw_latency);
}

#[test]
fn rewritten_workload_preserves_every_query_result() {
    let w = mini(101);
    let pricing = Pricing::paper_defaults();
    let mut catalog = w.catalog.clone();
    let plans = w.plans();
    let pre = preprocess_and_measure(&mut catalog, &plans, pricing).expect("preprocess");
    let exec = Executor::new(&catalog, pricing);

    // Use every candidate for every matching query: results must be intact
    // regardless of which subset a selector would choose.
    for (i, ms) in pre.analysis.query_matches.iter().enumerate() {
        for m in ms {
            let Some(rw) =
                autoview::core::truth::rewrite_pair(&catalog, &pre, &plans[i], i, m.candidate)
            else {
                continue;
            };
            let orig = exec.run(&plans[i]).expect("raw");
            let new = exec.run(&rw).expect("rewritten");
            assert_eq!(
                orig.batch, new.batch,
                "query {i} rewritten with candidate {} changed results",
                m.candidate
            );
        }
    }
}

#[test]
fn selection_utility_accounting_is_consistent_across_selectors() {
    let w = mini(102);
    let pricing = Pricing::paper_defaults();
    let mut catalog = w.catalog.clone();
    let plans = w.plans();
    let pre = preprocess_and_measure(&mut catalog, &plans, pricing).expect("preprocess");
    let pairs =
        collect_pair_truth(&catalog, &pre, &plans, usize::MAX, 7).expect("pairs");

    let nc = pre.analysis.candidates.len();
    let mut benefits = vec![vec![0.0; nc]; plans.len()];
    for p in &pairs {
        benefits[p.query][p.candidate] = p.actual_benefit;
    }
    let instance = MvsInstance {
        benefits,
        overheads: pre.overheads.clone(),
        overlaps: pre.analysis.overlap_pairs.clone(),
    };

    let check = |r: &SelectionResult| {
        assert!(
            (instance.utility(&r.z, &r.y) - r.utility).abs() < 1e-9,
            "reported utility must match recomputation"
        );
        // y respects z and overlap constraints by construction.
        for row in &r.y {
            for (j, &used) in row.iter().enumerate() {
                if used {
                    assert!(r.z[j], "y ≤ z violated");
                }
            }
            for &(a, b) in &instance.overlaps {
                assert!(!(row[a] && row[b]), "overlap constraint violated");
            }
        }
    };
    for rank in GreedyRank::ALL {
        let (_, r) = autoview::select::greedy_best(&instance, rank);
        check(&r);
    }
    let (opt, _) = instance.solve_exact(200_000);
    assert!(
        GreedyRank::ALL
            .iter()
            .all(|&rk| autoview::select::greedy_best(&instance, rk).1.utility
                <= opt.utility + 1e-9),
        "OPT dominates every greedy method"
    );
}

#[test]
fn adversarial_estimator_does_not_break_the_system() {
    // A cost model that answers garbage must degrade utility, never crash,
    // and the deployment accounting must stay truthful (measured numbers).
    struct Liar;
    impl CostEstimator for Liar {
        fn estimate(&self, _input: &FeatureInput) -> f64 {
            -1e9 // absurd: claims every rewrite has huge negative cost
        }
        fn name(&self) -> &'static str {
            "Liar"
        }
    }

    let w = mini(103);
    let pricing = Pricing::paper_defaults();
    let mut catalog = w.catalog.clone();
    let plans = w.plans();
    let pre = preprocess_and_measure(&mut catalog, &plans, pricing).expect("preprocess");

    let sys = AutoViewSystem::new(catalog.clone(), plans.clone(), quick_config());
    let instance = sys.build_instance(&pre, &Liar);
    // The liar inflates every benefit; selection will materialize far too
    // much — but execution must still succeed and report honest numbers.
    let selection = SelectorKind::Greedy(GreedyRank::TopkBen).run(&instance);
    let r = sys.execute_selection(&pre, &selection).expect("executes");
    assert!(r.num_views > 0);
    assert!(r.benefit.is_finite());
    assert!(
        r.estimated_utility > r.benefit,
        "the lie shows up as estimated ≫ measured"
    );
}

#[test]
fn degenerate_workloads_produce_sane_selections() {
    // All-distinct queries (no sharing): candidates may exist only from
    // chance collisions; selection must never claim negative-utility wins.
    let w = autoview::workload::gen::generate(&autoview::workload::GeneratorConfig {
        name: "degenerate".into(),
        seed: 1,
        share_probability: 0.0,
        pool_per_table: 1,
        tables: 4,
        queries: 12,
        rows_range: (30, 60),
        ..autoview::workload::GeneratorConfig::default()
    });
    let pricing = Pricing::paper_defaults();
    let mut catalog = w.catalog.clone();
    let plans = w.plans();
    let pre = preprocess_and_measure(&mut catalog, &plans, pricing).expect("preprocess");
    let pairs =
        collect_pair_truth(&catalog, &pre, &plans, usize::MAX, 2).expect("pairs");
    let nc = pre.analysis.candidates.len();
    let mut benefits = vec![vec![0.0; nc]; plans.len()];
    for p in &pairs {
        benefits[p.query][p.candidate] = p.actual_benefit;
    }
    let instance = MvsInstance {
        benefits,
        overheads: pre.overheads.clone(),
        overlaps: pre.analysis.overlap_pairs.clone(),
    };
    let (opt, _) = instance.solve_exact(100_000);
    assert!(opt.utility >= 0.0, "empty selection is always available");
}

#[test]
fn metadata_db_round_trips_through_json() {
    let w = mini(104);
    let mut sys = AutoViewSystem::new(w.catalog.clone(), w.plans(), quick_config());
    sys.run().expect("pipeline");
    let json = sys.metadata.to_json();
    let back: autoview::core::MetadataDb = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.num_pairs(), sys.metadata.num_pairs());
    assert_eq!(back.query_costs.len(), 40);
}
